//! Minimal binary serialization for simulator checkpoints.
//!
//! The checkpoint format (DESIGN.md §13) is a small in-tree codec — no
//! external serialization crates — built from three pieces:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian primitive codecs
//!   over a plain byte vector. Every multi-byte integer is written
//!   little-endian; `f64` travels as its IEEE-754 bit pattern, so
//!   round-trips are bit-exact (NaN payloads included).
//! * [`Fnv64`] — an incremental FNV-1a hasher, used both for the
//!   container checksum and for config fingerprints.
//! * [`seal`] / [`open`] — the versioned container: a fixed magic, a
//!   format version, a caller-supplied fingerprint identifying *what*
//!   was serialized, the payload, and a trailing FNV-1a checksum over
//!   everything before it. `open` rejects truncation, corruption,
//!   version skew and fingerprint mismatches with distinct
//!   [`CodecError`] variants.
//!
//! Determinism contract: the byte stream a given simulator state
//! serializes to is a pure function of that state, and decoding
//! reconstructs the state bit-exactly (the checkpoint round-trip tests
//! replay the determinism goldens across a save/resume boundary).

use std::fmt;

/// Magic prefix of every checkpoint container.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CATNAPCK";

/// Errors produced while decoding checkpoint bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended before the value being read was complete.
    UnexpectedEof,
    /// The container does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The container was written by a different format version.
    UnsupportedVersion {
        /// Version found in the container.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The trailing checksum does not match the container contents.
    ChecksumMismatch,
    /// The container's fingerprint does not match the caller's.
    FingerprintMismatch {
        /// Fingerprint found in the container.
        found: u64,
        /// Fingerprint the caller expected.
        expected: u64,
    },
    /// A decoded value violates a structural invariant.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            CodecError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CodecError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported checkpoint version {found} (expected {expected})")
            }
            CodecError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch (corrupted)"),
            CodecError::FingerprintMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint fingerprint {found:#018x} does not match expected {expected:#018x}"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Incremental FNV-1a 64-bit hasher.
///
/// The same algorithm `SimRng::stream` uses to fold stream names into
/// seeds; exposed as a struct here so fingerprints and checksums can be
/// built incrementally over heterogeneous fields.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    h: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 {
            h: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a `u64` (little-endian bytes) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u32` into the hash.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` bit pattern into the hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Folds a UTF-8 string (length-prefixed) into the hash.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Little-endian binary encoder over a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` (as `u64`, so the format is word-size independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Little-endian binary decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("size checked")))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("size checked")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("size checked")))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::Invalid("usize out of range"))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads length-prefixed bytes written by [`ByteWriter::put_bytes`].
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }
}

/// Wraps `payload` in the versioned checkpoint container:
/// magic, `version`, `fingerprint`, payload, FNV-1a checksum over all
/// preceding bytes.
pub fn seal(version: u32, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Validates a container produced by [`seal`] and returns its payload.
///
/// Checks, in order: length and magic, checksum (so corruption anywhere
/// is caught first), version, then fingerprint.
///
/// # Errors
///
/// [`CodecError::BadMagic`], [`CodecError::UnexpectedEof`],
/// [`CodecError::ChecksumMismatch`], [`CodecError::UnsupportedVersion`]
/// or [`CodecError::FingerprintMismatch`].
pub fn open(bytes: &[u8], version: u32, fingerprint: u64) -> Result<&[u8], CodecError> {
    const HEADER: usize = 8 + 4 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(CodecError::UnexpectedEof);
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let (body, checksum) = bytes.split_at(bytes.len() - 8);
    let mut h = Fnv64::new();
    h.write(body);
    if h.finish().to_le_bytes() != checksum {
        return Err(CodecError::ChecksumMismatch);
    }
    let found_version = u32::from_le_bytes(body[8..12].try_into().expect("size checked"));
    if found_version != version {
        return Err(CodecError::UnsupportedVersion {
            found: found_version,
            expected: version,
        });
    }
    let found_fp = u64::from_le_bytes(body[12..20].try_into().expect("size checked"));
    if found_fp != fingerprint {
        return Err(CodecError::FingerprintMismatch {
            found: found_fp,
            expected: fingerprint,
        });
    }
    Ok(&body[HEADER..])
}

/// Reads the fingerprint field of a sealed container without
/// validating the payload (magic and length are still checked).
///
/// # Errors
///
/// [`CodecError::BadMagic`] or [`CodecError::UnexpectedEof`].
pub fn peek_fingerprint(bytes: &[u8]) -> Result<u64, CodecError> {
    if bytes.len() < 28 {
        return Err(CodecError::UnexpectedEof);
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CodecError::BadMagic);
    }
    Ok(u64::from_le_bytes(bytes[12..20].try_into().expect("size checked")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_usize(77);
        w.put_f64(-0.625);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(b"abc");
        w.put_str("catnap");
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_usize().unwrap(), 77);
        assert_eq!(r.get_f64().unwrap(), -0.625);
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "catnap");
        assert!(r.is_empty());
    }

    #[test]
    fn eof_and_bad_tags_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEof));
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.get_bool(), Err(CodecError::Invalid("bool tag")));
        let mut r = ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x61]);
        assert_eq!(r.get_bytes(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference: "" -> offset basis, "a" -> af63dc4c8601ec8c.
        assert_eq!(Fnv64::new().finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn container_round_trips() {
        let sealed = seal(3, 0xF00D, b"payload");
        assert_eq!(open(&sealed, 3, 0xF00D).unwrap(), b"payload");
        assert_eq!(peek_fingerprint(&sealed).unwrap(), 0xF00D);
    }

    #[test]
    fn container_rejects_corruption() {
        let sealed = seal(1, 42, b"some payload bytes");
        // Flip one bit anywhere: checksum must catch it.
        for i in 0..sealed.len() - 8 {
            let mut bad = sealed.clone();
            bad[i] ^= 0x10;
            let err = open(&bad, 1, 42).unwrap_err();
            assert!(
                matches!(err, CodecError::ChecksumMismatch | CodecError::BadMagic),
                "byte {i}: unexpected error {err:?}"
            );
        }
        // Truncation.
        assert_eq!(open(&sealed[..10], 1, 42), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn container_rejects_version_and_fingerprint_skew() {
        let sealed = seal(2, 42, b"x");
        assert_eq!(
            open(&sealed, 1, 42),
            Err(CodecError::UnsupportedVersion { found: 2, expected: 1 })
        );
        assert_eq!(
            open(&sealed, 2, 43),
            Err(CodecError::FingerprintMismatch {
                found: 42,
                expected: 43
            })
        );
    }

    #[test]
    fn errors_display() {
        let e = CodecError::UnsupportedVersion { found: 9, expected: 1 };
        assert!(e.to_string().contains("version 9"));
        assert!(CodecError::ChecksumMismatch.to_string().contains("corrupted"));
    }
}
