//! A bounded Chase–Lev work-stealing deque over `std` atomics, keeping
//! the workspace's hermetic zero-dependency policy.
//!
//! One thread owns the [`Worker`] end and pushes/pops at the *bottom* in
//! LIFO order (hot cache, no contention in the common case); any number
//! of other threads hold [`Stealer`] clones and take from the *top* in
//! FIFO order. The only synchronised point is the race for the last
//! element, resolved by a compare-and-swap on `top`.
//!
//! The deque is **bounded**: [`Worker::push`] hands the value back as
//! `Err` when the ring is full instead of growing (the classic dynamic
//! Chase–Lev array swap needs deferred reclamation, which `std` alone
//! cannot express safely). Callers overflow into a shared injector queue
//! — exactly what [`crate::pool`] does.
//!
//! The memory-ordering protocol follows Chase & Lev, "Dynamic Circular
//! Work-Stealing Deque" (SPAA '05) as corrected for weak memory models
//! by Lê et al. (PPoPP '13): the owner's `pop` publishes its claimed
//! `bottom` with a `SeqCst` fence before re-reading `top`, and stealers
//! fence between reading `top` and `bottom`, so owner and thief can
//! never both keep the same slot.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};
use std::sync::Arc;

/// Result of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying may
    /// succeed.
    Retry,
    /// Took one element from the top.
    Success(T),
}

impl<T> Steal<T> {
    /// Unwraps `Success`, mapping `Empty`/`Retry` to `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

struct Inner<T> {
    /// Next index stolen from. Monotonically increasing.
    top: AtomicIsize,
    /// Next index the owner pushes at. Only the owner writes it.
    bottom: AtomicIsize,
    /// Ring storage; capacity is a power of two, `mask = capacity - 1`.
    mask: isize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the protocol guarantees a slot is read by exactly one thread
// (the CAS on `top` arbitrates), so sharing `Inner` across threads only
// ever moves `T` values, never aliases them. `T: Send` is all we need.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    /// # Safety
    /// The caller must hold exclusive logical ownership of index `i`
    /// (owner between push and pop, or a stealer that will CAS-claim it).
    unsafe fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.slots[(i & self.mask) as usize].get()
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Unique access: drop everything still enqueued.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            // SAFETY: indices in [top, bottom) hold initialised values
            // nobody else can reach any more.
            unsafe { (*self.slot(i)).assume_init_drop() };
        }
    }
}

/// The owner end of the deque: push and pop at the bottom. Not `Sync` —
/// exactly one thread may use it.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

/// A thief end of the deque: take from the top. Cloneable and shareable.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Creates a deque holding at most `capacity` elements (rounded up to a
/// power of two, minimum 2).
pub fn deque<T>(capacity: usize) -> (Worker<T>, Stealer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        mask: cap as isize - 1,
        slots,
    });
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl<T> Worker<T> {
    /// Pushes at the bottom. Returns the value back when the ring is
    /// full (the caller overflows elsewhere; nothing was enqueued).
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        if b - t > inner.mask {
            return Err(value);
        }
        // SAFETY: slot `b` is outside [top, bottom), so no stealer can
        // touch it until the Release store below publishes it.
        unsafe { (*inner.slot(b)).write(value) };
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops from the bottom (LIFO). `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: we claimed index `b` by publishing the decremented
        // bottom before the fence; a stealer targeting `b` must win the
        // CAS below to keep it.
        let value = unsafe { (*inner.slot(b)).assume_init_read() };
        if t == b {
            // Last element: race the stealers for it via `top`.
            let won = inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            inner.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                // A stealer took it; it owns the value now.
                std::mem::forget(value);
                return None;
            }
        }
        Some(value)
    }

    /// Number of enqueued elements as seen by the owner.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Whether the deque is empty as seen by the owner.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to take one element from the top (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: speculative read; the CAS below decides whether we
        // keep the value. On failure we forget the copy untouched.
        let value = unsafe { (*inner.slot(t)).assume_init_read() };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value);
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Whether the deque appears empty (racy; for back-off heuristics).
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        t >= b
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let (w, s) = deque::<u32>(8);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0), "stealers take the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full_ring() {
        let (w, _s) = deque::<u32>(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(w.push(3), Err(3));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop(), Some(2));
        w.push(3).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (w, _s) = deque::<u8>(5);
        for i in 0..8 {
            w.push(i).unwrap();
        }
        assert_eq!(w.push(8), Err(8));
    }

    #[test]
    fn drop_releases_undequeued_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (w, s) = deque::<D>(8);
        for _ in 0..5 {
            w.push(D).unwrap();
        }
        drop(w.pop()); // 1 drop
        drop(s.steal().success()); // 1 drop
        drop(w);
        drop(s); // remaining 3 dropped with the ring
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_steal_loses_nothing() {
        const PER_ROUND: usize = 128;
        const ROUNDS: usize = 64;
        let (w, s) = deque::<usize>(PER_ROUND * 2);
        let taken = AtomicUsize::new(0);
        let stop = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = s.clone();
                let taken = &taken;
                let stop = &stop;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            taken.fetch_add(1, Ordering::SeqCst);
                        }
                        _ => {
                            if stop.load(Ordering::SeqCst) == 1 && s.is_empty() {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for r in 0..ROUNDS {
                for i in 0..PER_ROUND {
                    let mut v = r * PER_ROUND + i;
                    // Spin until the ring has room (stealers drain it).
                    loop {
                        match w.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                // Owner pops about half of each round itself.
                for _ in 0..PER_ROUND / 2 {
                    if w.pop().is_some() {
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            while w.pop().is_some() {
                taken.fetch_add(1, Ordering::SeqCst);
            }
            stop.store(1, Ordering::SeqCst);
        });
        // Stragglers the stealers grabbed after the owner's final drain.
        assert_eq!(
            taken.load(Ordering::SeqCst),
            PER_ROUND * ROUNDS,
            "every element taken exactly once"
        );
    }
}
