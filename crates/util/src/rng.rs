//! Seedable pseudo-random number generation for the simulator.
//!
//! [`SimRng`] is a xoshiro256\*\* generator (Blackman & Vigna) seeded
//! through SplitMix64, the standard pairing: SplitMix64 diffuses even
//! adjacent integer seeds (0, 1, 2, …) into well-separated 256-bit
//! states, and xoshiro256\*\* passes BigCrush while needing only four
//! `u64` words of state.
//!
//! Determinism contract: given the same seed, a `SimRng` produces the
//! same sequence on every platform and build. The simulator's
//! determinism fingerprints (`tests/determinism.rs`) pin exact outputs
//! of pipelines driven by this generator, so any change to the
//! algorithm below is a breaking change that must re-pin those goldens
//! (see DESIGN.md, "Re-pinning determinism goldens").
//!
//! Independent streams: components that must not share randomness
//! (per-node traffic, per-core address streams, the selector policy)
//! derive their own generator via [`SimRng::stream`], which folds a
//! stream name into the seed so streams are decorrelated even when the
//! user-facing seed is identical.

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string (used to fold stream names into seeds).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A seedable xoshiro256\*\* pseudo-random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Alias for [`SimRng::seed_from_u64`].
    pub fn new(seed: u64) -> Self {
        SimRng::seed_from_u64(seed)
    }

    /// Creates an independent named stream for `seed`: streams with
    /// different names are decorrelated even under the same seed, and
    /// the same `(seed, name)` pair always yields the same stream.
    pub fn stream(seed: u64, name: &str) -> Self {
        SimRng::seed_from_u64(seed ^ fnv1a(name.as_bytes()))
    }

    /// Forks an independent child generator, advancing `self`.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`SimRng::from_state`] resumes the stream exactly where it
    /// left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`SimRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256\*\* core).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform value of type `T` (`f64` in `[0, 1)`, integer over the
    /// full domain, or a fair `bool`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `n` without modulo bias (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Largest multiple of n that fits in u64; values at or above it
        // are rejected so every residue is equally likely.
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.u64_below(items.len() as u64) as usize]
    }
}

/// Types producible uniformly from a [`SimRng`] via [`SimRng::gen`].
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut SimRng) -> Self;
}

impl FromRng for f64 {
    fn from_rng(rng: &mut SimRng) -> f64 {
        rng.gen_f64()
    }
}

impl FromRng for u64 {
    fn from_rng(rng: &mut SimRng) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut SimRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut SimRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`SimRng::gen_range`] bounds.
pub trait SampleUniform: Copy {
    /// Widens to `u64` for uniform sampling.
    fn to_u64(self) -> u64;
    /// Narrows back (the sampled value is `<` the range span, so this
    /// never truncates).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges samplable by [`SimRng::gen_range`].
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draws a uniform element of the range.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for std::ops::Range<T> {
    type Output = T;
    #[inline]
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range");
        T::from_u64(lo + rng.u64_below(hi - lo))
    }
}

impl<T: SampleUniform> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    #[inline]
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.u64_below(hi - lo + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SimRng::seed_from_u64(8);
        assert_ne!(va, (0..64).map(|_| c.next_u64()).collect::<Vec<u64>>());
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // Golden outputs: seed 0 through SplitMix64 into xoshiro256**.
        // If these change, every determinism fingerprint in the
        // workspace must be re-pinned (see DESIGN.md).
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn adjacent_seeds_are_decorrelated() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..1000).filter(|_| (a.next_u64() ^ b.next_u64()).count_ones() < 16).count();
        assert_eq!(same, 0, "adjacent seeds must not share bit patterns");
    }

    #[test]
    fn f64_is_unit_interval_and_covers_it() {
        let mut r = SimRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SimRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 3];
        for _ in 0..100 {
            let v = r.gen_range(1u32..=3);
            assert!((1..=3).contains(&v));
            seen_incl[v as usize - 1] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
        // u16 bound, as used by traffic patterns.
        for _ in 0..100 {
            assert!(r.gen_range(0u16..64) < 64);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_100..2_900).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50 elements should not stay in place");
    }

    #[test]
    fn named_streams_are_independent_and_stable() {
        let mut a = SimRng::stream(9, "traffic");
        let mut b = SimRng::stream(9, "selector");
        let mut a2 = SimRng::stream(9, "traffic");
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_eq!(va, (0..32).map(|_| a2.next_u64()).collect::<Vec<u64>>());
        assert_ne!(va, (0..32).map(|_| b.next_u64()).collect::<Vec<u64>>());
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SimRng::seed_from_u64(10);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut r = SimRng::seed_from_u64(11);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &v = r.choose(&items);
            seen[items.iter().position(|&i| i == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
