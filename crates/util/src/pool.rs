//! A scoped work-stealing thread pool built on `std` only, keeping the
//! workspace's hermetic zero-dependency policy.
//!
//! The pool runs batches of closures that may borrow from the caller's
//! stack (like `std::thread::scope`, but with persistent workers so the
//! per-batch cost is a queue push + condvar wake rather than thread
//! creation). [`ThreadPool::run`] returns results **in job-submission
//! order** regardless of which worker finished first, so parallel fan-out
//! is deterministic for the caller. The submitting thread participates in
//! draining the work, which means a pool built with parallelism 1 (or
//! the `CATNAP_THREADS=1` serial fallback) executes every job inline, in
//! order, on the caller — the exact serial semantics, through the same
//! code path.
//!
//! Scheduling is work-stealing, not static chunking: each worker owns a
//! bounded [`crate::deque`] Chase–Lev deque and idle workers steal from
//! busy ones, so one long job on a lane does not strand the short jobs
//! queued behind it. External submitters feed a shared FIFO injector;
//! **pool workers may call [`ThreadPool::run`] re-entrantly** — nested
//! batches go to the worker's own deque (popped LIFO, so the innermost
//! batch drains first) and are stealable by idle peers. This is what
//! lets subnet-stepping jobs fan out into per-shard jobs on the same
//! pool without a second thread team.
//!
//! Worker panics are caught, the batch still completes, and the first
//! panic payload is re-raised on the submitting thread; the pool remains
//! usable afterwards.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::deque::{self, Steal};

/// Name of the environment variable overriding worker parallelism
/// (`1` forces the serial path; unset or unparsable falls back to the
/// caller's default, typically [`std::thread::available_parallelism`]).
pub const THREADS_ENV: &str = "CATNAP_THREADS";

/// Capacity of each worker's private deque; overflow spills to the
/// shared injector, so this only bounds the uncontended fast path.
const LANE_QUEUE: usize = 256;

/// Parses a `CATNAP_THREADS`-style override. Returns `None` for absent,
/// empty, unparsable, or zero values (zero threads cannot run anything,
/// so it is treated as "no override" rather than a deadlock).
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Reads the [`THREADS_ENV`] override from the process environment.
pub fn env_threads() -> Option<usize> {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Effective parallelism for a job that can use up to `max_useful`
/// lanes: the env override if set, else the machine parallelism, capped
/// at `max_useful` and floored at 1.
pub fn effective_parallelism(max_useful: usize) -> usize {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    env_threads().unwrap_or(machine).min(max_useful).max(1)
}

/// A job queued for the workers, with the accounting of the batch it
/// belongs to. The `'static` bound is produced by [`ThreadPool::run`]
/// erasing the scope lifetime; safety rests on `run` never returning
/// (normally or by unwind) before every job of its batch has finished.
struct Job {
    work: Box<dyn FnOnce() + Send + 'static>,
    batch: Arc<Batch>,
}

impl Job {
    fn execute(self) {
        let result = catch_unwind(AssertUnwindSafe(self.work));
        self.batch.complete(result.err());
    }
}

/// Completion tracking for one `run` call.
struct Batch {
    state: Mutex<BatchState>,
    done_cv: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: jobs,
                panic: None,
            }),
            done_cv: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every job of the batch has run, then re-raises the
    /// first recorded panic, if any.
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done_cv.wait(st).unwrap();
        }
        let panic = st.panic.take();
        drop(st);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Cumulative scheduler telemetry, drained as a [`PoolStats`] snapshot
/// via [`ThreadPool::stats`]. Every executed job is acquired from
/// exactly one of a worker's own deque, the shared injector, or a steal,
/// so `jobs_run == lane_pops + injector_pops + steals` holds at rest.
/// The serial fast path in [`ThreadPool::run`] (single job, or a pool
/// with no workers) bypasses the queues and leaves every counter
/// untouched. All increments are relaxed: the counters feed scheduling
/// heuristics and diagnostics, never correctness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed through the queues (serial fast path excluded).
    pub jobs_run: u64,
    /// Successful steals from another lane's deque.
    pub steals: u64,
    /// Steal scans that found every other lane empty.
    pub failed_steals: u64,
    /// Jobs popped from the shared FIFO injector.
    pub injector_pops: u64,
    /// Jobs a worker popped from its own deque (nested batches).
    pub lane_pops: u64,
    /// Times a lane parked on the condvar for lack of visible work.
    pub park_waits: u64,
}

#[derive(Default)]
struct Counters {
    jobs_run: AtomicU64,
    steals: AtomicU64,
    failed_steals: AtomicU64,
    injector_pops: AtomicU64,
    lane_pops: AtomicU64,
    park_waits: AtomicU64,
}

impl Counters {
    #[inline]
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PoolStats {
        PoolStats {
            jobs_run: self.jobs_run.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            failed_steals: self.failed_steals.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            lane_pops: self.lane_pops.load(Ordering::Relaxed),
            park_waits: self.park_waits.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    /// FIFO overflow/entry queue for external submitters; its mutex also
    /// guards the sleep protocol (push-then-notify under the lock pairs
    /// with the workers' scan-then-wait under the lock).
    injector: Mutex<Queue>,
    work_cv: Condvar,
    /// One stealer per worker lane, in lane order.
    stealers: Vec<deque::Stealer<Job>>,
    /// Scheduler counters (see [`PoolStats`]).
    stats: Counters,
}

impl Shared {
    fn pop_injector(&self) -> Option<Job> {
        let job = self.injector.lock().unwrap().jobs.pop_front();
        if job.is_some() {
            Counters::bump(&self.stats.injector_pops);
        }
        job
    }

    /// Pops the caller's own deque, counting the hit.
    fn pop_own(&self, own: &deque::Worker<Job>) -> Option<Job> {
        let job = own.pop();
        if job.is_some() {
            Counters::bump(&self.stats.lane_pops);
        }
        job
    }

    /// Steals one job from any lane other than `skip` (pass a
    /// out-of-range value for "no own lane"). Scan order starts after
    /// `skip` so victims rotate instead of piling onto lane 0.
    fn try_steal(&self, skip: usize) -> Option<Job> {
        let n = self.stealers.len();
        if n == 0 {
            return None;
        }
        for k in 0..n {
            let i = skip.wrapping_add(1).wrapping_add(k) % n;
            if i == skip {
                continue;
            }
            loop {
                match self.stealers[i].steal() {
                    Steal::Success(job) => {
                        Counters::bump(&self.stats.steals);
                        return Some(job);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            }
        }
        Counters::bump(&self.stats.failed_steals);
        None
    }

    /// [`Job::execute`] with the run counted.
    fn execute(&self, job: Job) {
        Counters::bump(&self.stats.jobs_run);
        job.execute();
    }
}

/// This thread's lane in a pool, recorded thread-locally by
/// `worker_loop` so a nested [`ThreadPool::run`] from inside a job can
/// recognise its own pool and push to its own deque.
#[derive(Clone, Copy)]
struct LaneTls {
    shared: *const Shared,
    lane: usize,
    deque: *const deque::Worker<Job>,
}

thread_local! {
    static LANE: Cell<Option<LaneTls>> = const { Cell::new(None) };
}

/// A persistent scoped work-stealing thread pool (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("parallelism", &self.parallelism()).finish()
    }
}

impl ThreadPool {
    /// Creates a pool with the given total parallelism: `parallelism - 1`
    /// worker threads are spawned and the thread calling [`ThreadPool::run`]
    /// acts as the final lane. `parallelism <= 1` spawns no workers at
    /// all — every job then runs inline on the caller (serial fallback).
    pub fn new(parallelism: usize) -> Self {
        let lanes = parallelism.max(1) - 1;
        let mut owners = Vec::with_capacity(lanes);
        let mut stealers = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (w, s) = deque::deque(LANE_QUEUE);
            owners.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            injector: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            stealers,
            stats: Counters::default(),
        });
        let workers = owners
            .into_iter()
            .enumerate()
            .map(|(lane, own)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("catnap-pool-{}", lane + 1))
                    .spawn(move || worker_loop(&shared, lane, own))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Total parallel lanes (workers plus the submitting thread).
    pub fn parallelism(&self) -> usize {
        self.workers.len() + 1
    }

    /// Snapshot of the cumulative scheduler counters (see
    /// [`PoolStats`]). Cheap (six relaxed loads) and monotone between
    /// snapshots; safe to call concurrently with running batches, in
    /// which case the individual counters may be mutually skewed by
    /// in-flight jobs.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats.snapshot()
    }

    /// The calling thread's lane record, if it is a worker of *this*
    /// pool (a worker of some other pool counts as external here).
    fn own_lane(&self) -> Option<LaneTls> {
        LANE.with(|t| t.get())
            .filter(|tls| std::ptr::eq(tls.shared, Arc::as_ptr(&self.shared)))
    }

    /// Runs every closure (possibly in parallel) and returns their
    /// results **in submission order**. Blocks until all jobs finished;
    /// if any job panicked, the first panic is re-raised here after the
    /// whole batch has completed (so borrowed data is never observed by
    /// a still-running job past this call).
    ///
    /// Callable from inside a pool job: the nested batch is pushed onto
    /// the worker's own deque (LIFO, drained before outer work) and
    /// idle peers steal from it, so recursive fan-out load-balances
    /// through the same worker team without deadlock.
    pub fn run<'scope, T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers.is_empty() {
            // Serial fast path: identical semantics, no queue round-trip.
            return jobs.into_iter().map(|f| f()).collect();
        }
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        let batch = Batch::new(n);
        let mut queued: Vec<Job> = Vec::with_capacity(n);
        for (i, f) in jobs.into_iter().enumerate() {
            let results = &results;
            let work: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let value = f();
                results.lock().unwrap()[i] = Some(value);
            });
            // SAFETY: `Batch::wait` below does not return — normally
            // or by unwinding — until `remaining == 0`, i.e. until
            // every closure (and its borrows of `results`/caller
            // state) has finished running. Erasing the lifetime is
            // therefore sound: no job outlives this stack frame.
            let work: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(work) };
            queued.push(Job {
                work,
                batch: Arc::clone(&batch),
            });
        }
        let lane = self.own_lane();
        match lane {
            Some(tls) => {
                // Nested submission from one of our own workers: the
                // fast path is the worker's private deque; a full ring
                // spills to the injector.
                // SAFETY: `tls.deque` points into the live
                // `worker_loop` frame of *this* thread (we are inside
                // a job that frame is executing), so the reference is
                // valid and uniquely owned by this thread.
                let own = unsafe { &*tls.deque };
                let mut overflow = VecDeque::new();
                for job in queued {
                    if let Err(job) = own.push(job) {
                        overflow.push_back(job);
                    }
                }
                let mut q = self.shared.injector.lock().unwrap();
                q.jobs.append(&mut overflow);
                self.shared.work_cv.notify_all();
            }
            None => {
                let mut q = self.shared.injector.lock().unwrap();
                q.jobs.extend(queued);
                self.shared.work_cv.notify_all();
            }
        }
        // The caller is a worker too: help drain until no runnable job
        // is in sight, then block on batch completion (stolen stragglers
        // finish on other lanes).
        loop {
            let job = match lane {
                Some(tls) => {
                    // SAFETY: as above — own `worker_loop` frame.
                    let own = unsafe { &*tls.deque };
                    self.shared
                        .pop_own(own)
                        .or_else(|| self.shared.pop_injector())
                        .or_else(|| self.shared.try_steal(tls.lane))
                }
                None => self.shared.pop_injector().or_else(|| self.shared.try_steal(usize::MAX)),
            };
            match job {
                Some(job) => self.shared.execute(job),
                None => break,
            }
        }
        batch.wait();
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every pool job stores its result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.injector.lock().unwrap();
            q.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker that panicked outside `catch_unwind` (impossible
            // for queued jobs) would surface here; ignore the result so
            // drop never panics.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, lane: usize, own: deque::Worker<Job>) {
    LANE.with(|t| {
        t.set(Some(LaneTls {
            shared: Arc::as_ptr(shared),
            lane,
            deque: &own,
        }))
    });
    loop {
        // Fast path: own deque (nested batches), then injector, then
        // steal a straggler from a busy peer.
        if let Some(job) = shared
            .pop_own(&own)
            .or_else(|| shared.pop_injector())
            .or_else(|| shared.try_steal(lane))
        {
            shared.execute(job);
            continue;
        }
        // Nothing visible: re-scan under the injector lock before
        // sleeping. Submitters publish work *before* taking the lock
        // and notify while holding it, so a job enqueued concurrently
        // is either seen by this scan or wakes the wait below — no
        // lost-wakeup window.
        let job = {
            let mut q = shared.injector.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    Counters::bump(&shared.stats.injector_pops);
                    break job;
                }
                if q.shutdown {
                    LANE.with(|t| t.set(None));
                    return;
                }
                if let Some(job) = shared.try_steal(lane) {
                    break job;
                }
                Counters::bump(&shared.stats.park_waits);
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        shared.execute(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Earlier jobs spin longer, so completion order is
                    // roughly reversed — results must still be ordered.
                    let mut acc = 0u64;
                    for k in 0..(64 - i) * 500 {
                        acc = acc.wrapping_add(k as u64);
                    }
                    std::hint::black_box(acc);
                    i * i
                }
            })
            .collect();
        let got = pool.run(jobs);
        let want: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn borrows_mutable_slices_disjointly() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 16];
        let jobs: Vec<_> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| move || *slot = i as u64 + 1)
            .collect();
        pool.run(jobs);
        assert_eq!(data, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let got = pool.run(jobs);
        assert_eq!(got, (0..8).collect::<Vec<usize>>());
        assert_eq!(
            *order.lock().unwrap(),
            (0..8).collect::<Vec<usize>>(),
            "serial path preserves submission order exactly"
        );
    }

    #[test]
    fn panic_in_worker_propagates_after_batch_completes() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let completed = &completed;
                let job: Box<dyn FnOnce() -> usize + Send> = if i == 3 {
                    Box::new(|| panic!("job 3 exploded"))
                } else {
                    Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                };
                job
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)))
            .expect_err("panic must propagate to the submitter");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 3 exploded");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "non-panicking jobs all ran");
        // Pool stays healthy after a panic.
        let again = pool.run(vec![|| 41usize, || 1]);
        assert_eq!(again, vec![41, 1]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2);
        let got: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn nested_run_from_worker_jobs_completes() {
        // Subnet jobs fan out into shard jobs on the same pool; the
        // nested batches must drain without deadlock and in order.
        let pool = Arc::new(ThreadPool::new(4));
        let outer: Vec<_> = (0..6usize)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..8usize).map(|j| move || (i * 100 + j) as u64).collect();
                    pool.run(inner).into_iter().sum::<u64>()
                }
            })
            .collect();
        let got = pool.run(outer);
        let want: Vec<u64> = (0..6u64).map(|i| (0..8u64).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_run_three_levels_deep() {
        let pool = Arc::new(ThreadPool::new(3));
        let p1 = Arc::clone(&pool);
        let total: u64 = pool
            .run(
                (0..4u64)
                    .map(|a| {
                        let p2 = Arc::clone(&p1);
                        move || {
                            let p3 = Arc::clone(&p2);
                            p2.run(
                                (0..4u64)
                                    .map(|b| {
                                        let p4 = Arc::clone(&p3);
                                        move || {
                                            p4.run((0..4u64).map(|c| move || a + b + c).collect())
                                                .into_iter()
                                                .sum::<u64>()
                                        }
                                    })
                                    .collect(),
                            )
                            .into_iter()
                            .sum::<u64>()
                        }
                    })
                    .collect(),
            )
            .into_iter()
            .sum();
        let want: u64 = (0..4u64)
            .flat_map(|a| (0..4u64).flat_map(move |b| (0..4u64).map(move |c| a + b + c)))
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn imbalanced_batch_spreads_across_lanes() {
        // One huge job plus many tiny ones: with stealing, the tiny
        // jobs must not all queue behind the huge one. We can't assert
        // timing portably, but we can assert more than one thread ran
        // jobs when parallelism allows it (skip on 1-core hosts).
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2 {
            return;
        }
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(std::collections::HashSet::new());
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..64usize)
            .map(|i| {
                let seen = &seen;
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                });
                job
            })
            .collect();
        pool.run(jobs);
        assert!(seen.lock().unwrap().len() >= 2, "work spread over at least two lanes");
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(
            parse_threads(Some("0")),
            None,
            "zero lanes would deadlock; treated as unset"
        );
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn effective_parallelism_is_capped_and_floored() {
        // Independent of the machine: capping at 1 always yields 1.
        assert_eq!(effective_parallelism(1), 1);
        assert!(effective_parallelism(4) >= 1);
        assert!(effective_parallelism(4) <= 4);
    }

    #[test]
    fn stats_stay_zero_under_the_serial_fallback() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.stats(), PoolStats::default());
        let got = pool.run((0..16usize).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<usize>>());
        assert_eq!(
            pool.stats(),
            PoolStats::default(),
            "serial fallback bypasses the queues"
        );
        // A single job on a parallel pool also runs inline.
        let pool = ThreadPool::new(4);
        pool.run(vec![|| 7usize]);
        assert_eq!(pool.stats().jobs_run, 0, "single-job fast path bypasses the queues");
    }

    #[test]
    fn stats_count_queued_jobs_and_stay_consistent() {
        let pool = ThreadPool::new(4);
        // Idle workers may already have parked or scanned before the
        // first batch; only the job-flow counters start at zero.
        let base = pool.stats();
        assert_eq!(base.jobs_run, 0);
        pool.run((0..64usize).map(|i| move || std::hint::black_box(i)).collect::<Vec<_>>());
        let after = pool.stats();
        assert_eq!(after.jobs_run, 64, "every queued job is counted exactly once");
        assert_eq!(
            after.jobs_run,
            after.lane_pops + after.injector_pops + after.steals,
            "each job is acquired from exactly one source"
        );
        // Nested batches route through the worker deques; the balance
        // equation must keep holding.
        let pool2 = Arc::new(ThreadPool::new(4));
        let p = Arc::clone(&pool2);
        pool2.run(
            (0..4usize)
                .map(|i| {
                    let p = Arc::clone(&p);
                    move || p.run((0..8usize).map(|j| move || i + j).collect::<Vec<_>>()).len()
                })
                .collect::<Vec<_>>(),
        );
        let st = pool2.stats();
        assert_eq!(st.jobs_run, 4 + 4 * 8);
        assert_eq!(st.jobs_run, st.lane_pops + st.injector_pops + st.steals);
    }

    #[test]
    fn stats_are_monotone_across_batches() {
        let pool = ThreadPool::new(3);
        let mut prev = pool.stats();
        for round in 0..4 {
            pool.run((0..24usize).map(|i| move || i + round).collect::<Vec<_>>());
            let now = pool.stats();
            assert!(
                now.jobs_run >= prev.jobs_run + 24,
                "jobs_run is monotone by the batch size"
            );
            assert!(now.steals >= prev.steals);
            assert!(now.failed_steals >= prev.failed_steals);
            assert!(now.injector_pops >= prev.injector_pops);
            assert!(now.lane_pops >= prev.lane_pops);
            assert!(now.park_waits >= prev.park_waits);
            prev = now;
        }
    }
}
