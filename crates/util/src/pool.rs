//! A scoped thread pool built on `std` only, keeping the workspace's
//! hermetic zero-dependency policy.
//!
//! The pool runs batches of closures that may borrow from the caller's
//! stack (like `std::thread::scope`, but with persistent workers so the
//! per-batch cost is a queue push + condvar wake rather than thread
//! creation). [`ThreadPool::run`] returns results **in job-submission
//! order** regardless of which worker finished first, so parallel fan-out
//! is deterministic for the caller. The submitting thread participates in
//! draining the queue, which means a pool built with parallelism 1 (or
//! the `CATNAP_THREADS=1` serial fallback) executes every job inline, in
//! order, on the caller — the exact serial semantics, through the same
//! code path.
//!
//! Worker panics are caught, the batch still completes, and the first
//! panic payload is re-raised on the submitting thread; the pool remains
//! usable afterwards.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Name of the environment variable overriding worker parallelism
/// (`1` forces the serial path; unset or unparsable falls back to the
/// caller's default, typically [`std::thread::available_parallelism`]).
pub const THREADS_ENV: &str = "CATNAP_THREADS";

/// Parses a `CATNAP_THREADS`-style override. Returns `None` for absent,
/// empty, unparsable, or zero values (zero threads cannot run anything,
/// so it is treated as "no override" rather than a deadlock).
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Reads the [`THREADS_ENV`] override from the process environment.
pub fn env_threads() -> Option<usize> {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Effective parallelism for a job that can use up to `max_useful`
/// lanes: the env override if set, else the machine parallelism, capped
/// at `max_useful` and floored at 1.
pub fn effective_parallelism(max_useful: usize) -> usize {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    env_threads().unwrap_or(machine).min(max_useful).max(1)
}

/// A job queued for the workers, with the accounting of the batch it
/// belongs to. The `'static` bound is produced by [`ThreadPool::run`]
/// erasing the scope lifetime; safety rests on `run` never returning
/// (normally or by unwind) before every job of its batch has finished.
struct Job {
    work: Box<dyn FnOnce() + Send + 'static>,
    batch: Arc<Batch>,
}

impl Job {
    fn execute(self) {
        let result = catch_unwind(AssertUnwindSafe(self.work));
        self.batch.complete(result.err());
    }
}

/// Completion tracking for one `run` call.
struct Batch {
    state: Mutex<BatchState>,
    done_cv: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: jobs,
                panic: None,
            }),
            done_cv: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every job of the batch has run, then re-raises the
    /// first recorded panic, if any.
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done_cv.wait(st).unwrap();
        }
        let panic = st.panic.take();
        drop(st);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
}

/// A persistent scoped thread pool (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("parallelism", &self.parallelism()).finish()
    }
}

impl ThreadPool {
    /// Creates a pool with the given total parallelism: `parallelism - 1`
    /// worker threads are spawned and the thread calling [`ThreadPool::run`]
    /// acts as the final lane. `parallelism <= 1` spawns no workers at
    /// all — every job then runs inline on the caller (serial fallback).
    pub fn new(parallelism: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let workers = (1..parallelism.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("catnap-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Total parallel lanes (workers plus the submitting thread).
    pub fn parallelism(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs every closure (possibly in parallel) and returns their
    /// results **in submission order**. Blocks until all jobs finished;
    /// if any job panicked, the first panic is re-raised here after the
    /// whole batch has completed (so borrowed data is never observed by
    /// a still-running job past this call).
    pub fn run<'scope, T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers.is_empty() {
            // Serial fast path: identical semantics, no queue round-trip.
            return jobs.into_iter().map(|f| f()).collect();
        }
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        let batch = Batch::new(n);
        {
            let mut q = self.shared.queue.lock().unwrap();
            for (i, f) in jobs.into_iter().enumerate() {
                let results = &results;
                let work: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let value = f();
                    results.lock().unwrap()[i] = Some(value);
                });
                // SAFETY: `Batch::wait` below does not return — normally
                // or by unwinding — until `remaining == 0`, i.e. until
                // every closure (and its borrows of `results`/caller
                // state) has finished running. Erasing the lifetime is
                // therefore sound: no job outlives this stack frame.
                let work: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(work) };
                q.jobs.push_back(Job {
                    work,
                    batch: Arc::clone(&batch),
                });
            }
            self.shared.work_cv.notify_all();
        }
        // The caller is a worker too: drain the queue before blocking so
        // small batches complete with no context switch at all.
        loop {
            let job = self.shared.queue.lock().unwrap().jobs.pop_front();
            match job {
                Some(job) => job.execute(),
                None => break,
            }
        }
        batch.wait();
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every pool job stores its result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker that panicked outside `catch_unwind` (impossible
            // for queued jobs) would surface here; ignore the result so
            // drop never panics.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        job.execute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Earlier jobs spin longer, so completion order is
                    // roughly reversed — results must still be ordered.
                    let mut acc = 0u64;
                    for k in 0..(64 - i) * 500 {
                        acc = acc.wrapping_add(k as u64);
                    }
                    std::hint::black_box(acc);
                    i * i
                }
            })
            .collect();
        let got = pool.run(jobs);
        let want: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn borrows_mutable_slices_disjointly() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 16];
        let jobs: Vec<_> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| move || *slot = i as u64 + 1)
            .collect();
        pool.run(jobs);
        assert_eq!(data, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let got = pool.run(jobs);
        assert_eq!(got, (0..8).collect::<Vec<usize>>());
        assert_eq!(
            *order.lock().unwrap(),
            (0..8).collect::<Vec<usize>>(),
            "serial path preserves submission order exactly"
        );
    }

    #[test]
    fn panic_in_worker_propagates_after_batch_completes() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let completed = &completed;
                let job: Box<dyn FnOnce() -> usize + Send> = if i == 3 {
                    Box::new(|| panic!("job 3 exploded"))
                } else {
                    Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                };
                job
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)))
            .expect_err("panic must propagate to the submitter");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 3 exploded");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "non-panicking jobs all ran");
        // Pool stays healthy after a panic.
        let again = pool.run(vec![|| 41usize, || 1]);
        assert_eq!(again, vec![41, 1]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2);
        let got: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(
            parse_threads(Some("0")),
            None,
            "zero lanes would deadlock; treated as unset"
        );
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn effective_parallelism_is_capped_and_floored() {
        // Independent of the machine: capping at 1 always yields 1.
        assert_eq!(effective_parallelism(1), 1);
        assert!(effective_parallelism(4) >= 1);
        assert!(effective_parallelism(4) <= 4);
    }
}
