//! Minimal JSON: a value type, serializer, parser, and conversion
//! traits.
//!
//! This replaces `serde`/`serde_json` for the two places the workspace
//! actually serializes data: the JSON-lines packet-trace format
//! (`catnap-traffic`) and the `bench_out/*.json` figure series
//! (`catnap-bench`). It intentionally supports exactly the JSON subset
//! those formats need: objects (insertion-ordered), arrays, strings
//! with escape sequences, booleans, null, and numbers split into
//! integer ([`Json::Int`]) and floating ([`Json::Num`]) variants so
//! `u64` counters survive round trips exactly and
//! serialize→parse→serialize is a string-level fixed point.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source text).
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on serialization.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including the byte offset for parse
    /// errors.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (String, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `i64` (only [`Json::Int`]).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative [`Json::Int`]).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object keys in insertion order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation, matching the
    /// layout `serde_json::to_string_pretty` used for `bench_out`
    /// files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, depth| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth);
                });
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error and
    /// its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing data at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Writes an `f64` so it re-parses as [`Json::Num`]: always with a
/// decimal point or exponent, keeping serialize∘parse idempotent.
fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
        return;
    }
    let s = format!("{n}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::new("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                        }
                        _ => return Err(JsonError::new(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: find the char
                    // boundary and push the whole character.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let s =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| JsonError::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number at byte {start}")))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to JSON.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value has the wrong shape.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_i64().ok_or_else(|| JsonError::new("expected integer"))?;
                <$t>::try_from(v).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, usize, i32, i64);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Counters beyond i64::MAX cannot occur in practice; saturate
        // rather than wrap if they somehow do.
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_u64().ok_or_else(|| JsonError::new("expected unsigned integer"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str().map(str::to_string).ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<K: AsRef<str>, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_json())).collect())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Implements [`ToJson`] for a struct as an object with one key per
/// listed field, in order:
///
/// ```
/// use catnap_util::{impl_to_json_struct, json::ToJson};
/// struct Point { x: f64, y: f64 }
/// impl_to_json_struct!(Point { x, y });
/// assert_eq!(Point { x: 1.0, y: 2.0 }.to_json().keys(), vec!["x", "y"]);
/// ```
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).trim_end_matches('_').to_string(), self.$field.to_json()),)+
                ])
            }
        }
    };
}

/// Implements [`FromJson`] for a struct from an object with one key
/// per listed field (trailing-underscore field names map to the
/// underscore-less key, matching [`impl_to_json_struct`]).
#[macro_export]
macro_rules! impl_from_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(
                        j.get(stringify!($field).trim_end_matches('_')).ok_or_else(|| {
                            $crate::json::JsonError {
                                msg: format!("missing field '{}'", stringify!($field)),
                            }
                        })?,
                    )?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Num(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let j = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.keys(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] extra",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}é";
        let j = Json::Str(s.to_string());
        let text = j.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
        // Surrogate-pair escapes parse too.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn serialize_parse_serialize_is_fixed_point() {
        let j = Json::obj(vec![
            ("count".to_string(), Json::Int(3)),
            ("rate".to_string(), Json::Num(0.25)),
            ("whole".to_string(), Json::Num(2.0)),
            ("name".to_string(), Json::Str("catnap".to_string())),
            ("flags".to_string(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        for text in [j.to_compact_string(), j.to_pretty_string()] {
            let once = Json::parse(&text).unwrap();
            assert_eq!(once, j, "value round trip");
            let twice = Json::parse(&once.to_compact_string()).unwrap();
            assert_eq!(
                once.to_compact_string(),
                twice.to_compact_string(),
                "string fixed point"
            );
        }
    }

    #[test]
    fn integral_floats_keep_their_floatness() {
        // 2.0 must not collapse into the integer 2 across a round trip.
        let text = Json::Num(2.0).to_compact_string();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn large_u64_counters_survive() {
        let v = (1u64 << 53) + 1; // would lose precision as f64
        let j = v.to_json();
        assert_eq!(
            u64::from_json(&Json::parse(&j.to_compact_string()).unwrap()).unwrap(),
            v
        );
    }

    #[test]
    fn pretty_matches_serde_style() {
        let j = Json::obj(vec![
            ("a".to_string(), Json::Int(1)),
            ("b".to_string(), Json::Arr(vec![Json::Int(2)])),
        ]);
        assert_eq!(j.to_pretty_string(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
        assert_eq!(Json::Arr(vec![]).to_pretty_string(), "[]");
    }

    #[test]
    fn struct_macros_round_trip() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            name: String,
            count: u64,
            static_: f64,
        }
        impl_to_json_struct!(Sample { name, count, static_ });
        impl_from_json_struct!(Sample { name, count, static_ });
        let s = Sample {
            name: "x".to_string(),
            count: 9,
            static_: 1.5,
        };
        let j = s.to_json();
        // Trailing underscore (raw-keyword style) is stripped in keys.
        assert_eq!(j.keys(), vec!["name", "count", "static"]);
        assert_eq!(Sample::from_json(&j).unwrap(), s);
        assert!(Sample::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
    }
}
