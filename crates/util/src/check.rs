//! A mini property-testing runner.
//!
//! Replaces `proptest` for the workspace's invariant suites: a
//! property is a generator (a closure drawing an arbitrary input from
//! a [`SimRng`]) plus a predicate over that input. The runner executes
//! N seeded cases; each case derives its own sub-seed from the run
//! seed and the case index, so a failure report names the exact
//! sub-seed that reproduces it in isolation:
//!
//! ```text
//! property 'conservation' failed at case 17/24 (case seed 0x1b2…)
//! rerun just this input with CATNAP_CHECK_SEED=0x1b2… cargo test …
//! ```
//!
//! Setting `CATNAP_CHECK_SEED` replays only that one case. When a
//! shrinker is supplied ([`Checker::run_shrink`]), the runner greedily
//! applies shrink candidates (e.g. [`shrink_halves`] for vectors)
//! until no candidate fails, and reports the minimized input.

use crate::rng::SimRng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 32;

/// Default run seed (stable across runs for reproducible CI).
pub const DEFAULT_SEED: u64 = 0xCA7_0000_0001;

/// Configures and runs one property.
#[derive(Clone, Debug)]
pub struct Checker {
    name: String,
    cases: u32,
    seed: u64,
}

/// Outcome of one case evaluation.
type CaseResult = Result<(), String>;

impl Checker {
    /// A checker named for its property (used in failure reports).
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
        }
    }

    /// Sets the case budget.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the run seed (each case still derives its own sub-seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the property: `gen` draws an input, `prop` checks it,
    /// returning `Err(reason)` (or panicking) on violation.
    ///
    /// # Panics
    ///
    /// Panics with a reproduction seed if any case fails.
    pub fn run<T, G, P>(&self, gen: G, prop: P)
    where
        T: Debug,
        G: Fn(&mut SimRng) -> T,
        P: Fn(&T) -> CaseResult,
    {
        self.run_impl(gen, prop, None::<fn(&T) -> Vec<T>>);
    }

    /// Like [`Checker::run`], with a shrinker: on failure, `shrink`
    /// proposes smaller candidate inputs (tried in order; the first
    /// still-failing candidate recurses) so the report shows a
    /// minimized counterexample.
    pub fn run_shrink<T, G, P, S>(&self, gen: G, prop: P, shrink: S)
    where
        T: Debug,
        G: Fn(&mut SimRng) -> T,
        P: Fn(&T) -> CaseResult,
        S: Fn(&T) -> Vec<T>,
    {
        self.run_impl(gen, prop, Some(shrink));
    }

    fn run_impl<T, G, P, S>(&self, gen: G, prop: P, shrink: Option<S>)
    where
        T: Debug,
        G: Fn(&mut SimRng) -> T,
        P: Fn(&T) -> CaseResult,
        S: Fn(&T) -> Vec<T>,
    {
        // Replay mode: a single case from an explicit sub-seed.
        if let Some(seed) = replay_seed() {
            let input = gen(&mut SimRng::seed_from_u64(seed));
            if let Err(reason) = eval(&prop, &input) {
                panic!(
                    "property '{}' failed replaying case seed {seed:#x}\n  reason: {reason}\n  input: {input:?}",
                    self.name
                );
            }
            return;
        }
        for case in 0..self.cases {
            let case_seed = derive_case_seed(self.seed, case);
            let input = gen(&mut SimRng::seed_from_u64(case_seed));
            let Err(reason) = eval(&prop, &input) else { continue };
            let (input, reason) = match &shrink {
                Some(s) => minimize(&prop, s, input, reason),
                None => (input, reason),
            };
            panic!(
                "property '{}' failed at case {}/{} (case seed {case_seed:#x})\n  \
                 reason: {reason}\n  input: {input:?}\n  \
                 rerun just this input with CATNAP_CHECK_SEED={case_seed:#x}",
                self.name,
                case + 1,
                self.cases,
            );
        }
    }
}

/// The sub-seed of `case` under run seed `seed` (SplitMix64-style
/// mixing so consecutive cases get unrelated generators).
pub fn derive_case_seed(seed: u64, case: u32) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn replay_seed() -> Option<u64> {
    let raw = std::env::var("CATNAP_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = raw
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| raw.parse());
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => {
            eprintln!("warning: ignoring unparsable CATNAP_CHECK_SEED={raw:?}");
            None
        }
    }
}

/// Evaluates the property, converting panics into `Err`.
fn eval<T, P: Fn(&T) -> CaseResult>(prop: &P, input: &T) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Greedy shrink: repeatedly replace the failing input with the first
/// shrink candidate that still fails, until none do.
fn minimize<T, P, S>(prop: &P, shrink: &S, mut input: T, mut reason: String) -> (T, String)
where
    P: Fn(&T) -> CaseResult,
    S: Fn(&T) -> Vec<T>,
{
    // Bounded passes as a safety net against non-decreasing shrinkers.
    for _ in 0..64 {
        let mut advanced = false;
        for candidate in shrink(&input) {
            if let Err(r) = eval(prop, &candidate) {
                input = candidate;
                reason = r;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    (input, reason)
}

/// Shrink-by-halving candidates for a vector input: first half, second
/// half, and the vector minus each of up to 8 evenly spaced elements.
pub fn shrink_halves<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let n = v.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut out = vec![v[..n / 2].to_vec(), v[n / 2..].to_vec()];
    let step = (n / 8).max(1);
    for i in (0..n).step_by(step) {
        let mut smaller = v.to_vec();
        smaller.remove(i);
        out.push(smaller);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Checker::new("tautology").cases(24).run(
            |rng| rng.gen_range(0u32..100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 24);
    }

    #[test]
    fn failing_property_reports_case_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("always-false")
                .cases(8)
                .run(|rng| rng.gen_range(0u32..10), |_| Err("nope".to_string()));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always-false"), "{msg}");
        assert!(msg.contains("CATNAP_CHECK_SEED=0x"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("panicky").cases(4).run(
                |rng| rng.gen_range(0u32..10),
                |_| -> CaseResult { panic!("boom {}", 1 + 1) },
            );
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("boom 2"), "{msg}");
    }

    #[test]
    fn reported_seed_reproduces_the_input() {
        // Fail on a specific predicate, then regenerate from the
        // derived case seed and check the same input comes back.
        let mut failing_input = None;
        let gen = |rng: &mut SimRng| rng.gen_range(0u64..1000);
        for case in 0..DEFAULT_CASES {
            let seed = derive_case_seed(DEFAULT_SEED, case);
            let v = gen(&mut SimRng::seed_from_u64(seed));
            if v % 7 == 0 {
                failing_input = Some((seed, v));
                break;
            }
        }
        let (seed, v) = failing_input.expect("some case hits a multiple of 7");
        assert_eq!(gen(&mut SimRng::seed_from_u64(seed)), v);
    }

    #[test]
    fn shrinking_minimizes_vector_counterexamples() {
        // Property: no element is >= 50. Failing inputs shrink toward a
        // single offending element.
        let err = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("small-elements").cases(16).run_shrink(
                |rng| {
                    let n = rng.gen_range(1usize..40);
                    (0..n).map(|_| rng.gen_range(0u32..100)).collect::<Vec<u32>>()
                },
                |v| {
                    if v.iter().all(|&x| x < 50) {
                        Ok(())
                    } else {
                        Err("element out of bounds".to_string())
                    }
                },
                |v| shrink_halves(v),
            );
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        // The minimized input is a single-element vector.
        assert!(msg.contains("input: ["), "{msg}");
        let inside = msg.split("input: [").nth(1).unwrap().split(']').next().unwrap();
        assert!(!inside.contains(','), "shrunk to one element: {msg}");
    }

    #[test]
    fn shrink_halves_produces_strictly_smaller_candidates() {
        let v: Vec<u32> = (0..10).collect();
        let cands = shrink_halves(&v);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.len() < v.len()));
        assert!(shrink_halves(&[1u32]).is_empty());
    }

    #[test]
    fn case_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..100).map(|c| derive_case_seed(1, c)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 100);
    }
}
