#![warn(missing_docs)]

//! # catnap-util
//!
//! Zero-dependency support library for the Catnap reproduction. The
//! whole workspace builds offline from a cold cargo cache: everything
//! the simulator previously pulled from crates.io (`rand`, `serde`,
//! `serde_json`, `proptest`, `criterion`) is replaced by the three
//! small modules here.
//!
//! * [`rng`] — [`SimRng`](rng::SimRng), a seedable xoshiro256\*\*
//!   generator with SplitMix64 seeding, uniform ranges, shuffling, and
//!   independent named streams for decorrelated simulation components.
//! * [`json`] — a minimal JSON value type with a serializer, a parser,
//!   and [`ToJson`](json::ToJson)/[`FromJson`](json::FromJson) traits
//!   used by the trace format and the benchmark output files.
//! * [`check`] — a mini property-testing runner: N seeded cases over
//!   `SimRng`-driven generators, failing-seed reporting, and
//!   shrink-by-halving.
//! * [`pool`] — a scoped work-stealing thread pool with persistent
//!   workers, deterministic result ordering, and a serial fallback, used
//!   to step subnet shards and fan out benchmark sweep points.
//! * [`deque`] — the bounded Chase–Lev work-stealing deque the pool's
//!   workers balance load with.
//! * [`codec`] — the checkpoint binary format: little-endian
//!   [`ByteWriter`](codec::ByteWriter)/[`ByteReader`](codec::ByteReader)
//!   primitives, an incremental FNV-1a hasher, and the versioned
//!   magic + fingerprint + checksum container (`seal`/`open`).

pub mod check;
pub mod codec;
pub mod deque;
pub mod json;
pub mod pool;
pub mod rng;

pub use check::Checker;
pub use codec::{ByteReader, ByteWriter, CodecError, Fnv64};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use pool::{PoolStats, ThreadPool};
pub use rng::SimRng;
