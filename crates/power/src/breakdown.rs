//! Per-component power breakdown, matching the six components of the
//! paper's Figure 7: buffer, crossbar, control, clock, link, and network
//! interface.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

use catnap_util::impl_to_json_struct;

/// Power (or energy) attributed to each network component, in watts (or
/// joules — the struct is unit-agnostic and linear).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Router input buffers.
    pub buffer: f64,
    /// Crossbars.
    pub crossbar: f64,
    /// Control logic (routing, arbitration, VC state).
    pub control: f64,
    /// Clock distribution.
    pub clock: f64,
    /// Inter-router links.
    pub link: f64,
    /// Network interfaces (shared per node across subnets).
    pub ni: f64,
}

impl PowerBreakdown {
    /// Sum over all components.
    pub fn total(&self) -> f64 {
        self.buffer + self.crossbar + self.control + self.clock + self.link + self.ni
    }

    /// Component values in Figure-7 stacking order:
    /// NI, Link, Clock, Control, Crossbar, Buffer.
    pub fn fig7_order(&self) -> [(&'static str, f64); 6] {
        [
            ("NI", self.ni),
            ("Link", self.link),
            ("Clock", self.clock),
            ("Control", self.control),
            ("Crossbar", self.crossbar),
            ("Buffer", self.buffer),
        ]
    }

    /// Returns a breakdown with every component non-negative (clamped).
    pub fn clamped(&self) -> PowerBreakdown {
        PowerBreakdown {
            buffer: self.buffer.max(0.0),
            crossbar: self.crossbar.max(0.0),
            control: self.control.max(0.0),
            clock: self.clock.max(0.0),
            link: self.link.max(0.0),
            ni: self.ni.max(0.0),
        }
    }
}

impl_to_json_struct!(PowerBreakdown {
    buffer,
    crossbar,
    control,
    clock,
    link,
    ni
});

impl Add for PowerBreakdown {
    type Output = PowerBreakdown;
    fn add(self, o: PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            buffer: self.buffer + o.buffer,
            crossbar: self.crossbar + o.crossbar,
            control: self.control + o.control,
            clock: self.clock + o.clock,
            link: self.link + o.link,
            ni: self.ni + o.ni,
        }
    }
}

impl AddAssign for PowerBreakdown {
    fn add_assign(&mut self, o: PowerBreakdown) {
        *self = *self + o;
    }
}

impl Mul<f64> for PowerBreakdown {
    type Output = PowerBreakdown;
    fn mul(self, k: f64) -> PowerBreakdown {
        PowerBreakdown {
            buffer: self.buffer * k,
            crossbar: self.crossbar * k,
            control: self.control * k,
            clock: self.clock * k,
            link: self.link * k,
            ni: self.ni * k,
        }
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer {:.2} + crossbar {:.2} + control {:.2} + clock {:.2} + link {:.2} + NI {:.2} = {:.2} W",
            self.buffer,
            self.crossbar,
            self.control,
            self.clock,
            self.link,
            self.ni,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PowerBreakdown {
        PowerBreakdown {
            buffer: 1.0,
            crossbar: 2.0,
            control: 3.0,
            clock: 4.0,
            link: 5.0,
            ni: 6.0,
        }
    }

    #[test]
    fn total_sums_components() {
        assert!((sample().total() - 21.0).abs() < 1e-12);
        assert_eq!(PowerBreakdown::default().total(), 0.0);
    }

    #[test]
    fn linear_ops() {
        let s = sample();
        let d = s + s;
        assert!((d.total() - 42.0).abs() < 1e-12);
        let h = s * 0.5;
        assert!((h.total() - 10.5).abs() < 1e-12);
        let mut a = s;
        a += s;
        assert_eq!(a, d);
    }

    #[test]
    fn fig7_order_is_stable() {
        let names: Vec<&str> = sample().fig7_order().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["NI", "Link", "Clock", "Control", "Crossbar", "Buffer"]);
    }

    #[test]
    fn clamp_removes_negatives() {
        let mut s = sample();
        s.clock = -1.0;
        let c = s.clamped();
        assert_eq!(c.clock, 0.0);
        assert_eq!(c.buffer, 1.0);
    }

    #[test]
    fn display_contains_total() {
        let s = format!("{}", sample());
        assert!(s.contains("21.00 W"));
    }
}
