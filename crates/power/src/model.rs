//! Activity-driven power model: converts simulator event counts
//! ([`RouterActivity`]) and power-gating residency ([`GatingActivity`])
//! into per-component dynamic and static power.

use crate::breakdown::PowerBreakdown;
use crate::params::TechParams;
use catnap_noc::stats::{GatingActivity, RouterActivity};
use catnap_noc::{MeshDims, Network};

const PJ: f64 = 1e-12;

/// Power model of a single router (and the links it drives).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterPowerModel {
    /// Datapath width in bits.
    pub width_bits: u32,
    /// Virtual channels per port.
    pub vcs: usize,
    /// Buffer depth per VC, in flits.
    pub vc_depth: usize,
    /// Supply voltage.
    pub vdd: f64,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Technology coefficients.
    pub tech: TechParams,
}

impl RouterPowerModel {
    /// Total buffer storage bits of the router (5 ports).
    pub fn storage_bits(&self) -> f64 {
        5.0 * self.vcs as f64 * self.vc_depth as f64 * self.width_bits as f64
    }

    /// Leakage of one router (buffers, crossbar, control/clock), excluding
    /// its links.
    pub fn leakage_w(&self) -> PowerBreakdown {
        let t = &self.tech;
        let s = t.leakage_scale(self.vdd);
        let w = self.width_bits as f64;
        PowerBreakdown {
            buffer: self.storage_bits() * t.leak_w_per_buffer_bit * s,
            crossbar: w * w * t.leak_w_per_xbar_bit2 * s,
            control: 0.5 * t.leak_w_fixed_per_router * s,
            clock: 0.5 * t.leak_w_fixed_per_router * s,
            link: 0.0,
            ni: 0.0,
        }
    }

    /// Leakage of one directed link driven by this router.
    pub fn link_leakage_w(&self) -> f64 {
        self.width_bits as f64 * self.tech.leak_w_per_link_bit * self.tech.leakage_scale(self.vdd)
    }

    /// Dynamic energy (joules) of the counted events, excluding the
    /// per-cycle clock/control component (see
    /// [`RouterPowerModel::per_cycle_energy_j`]).
    pub fn event_energy_j(&self, a: &RouterActivity) -> PowerBreakdown {
        let t = &self.tech;
        let scale = t.dynamic_scale(self.vdd) * PJ;
        let w = self.width_bits as f64;
        PowerBreakdown {
            buffer: (a.buffer_writes as f64 * t.buf_write_pj_per_bit + a.buffer_reads as f64 * t.buf_read_pj_per_bit)
                * w
                * scale,
            crossbar: a.xbar_traversals as f64 * t.xbar_pj_per_bit2 * w * w * scale,
            control: a.arb_grants as f64 * t.arb_pj_per_grant * scale,
            clock: 0.0,
            link: a.link_flits as f64 * t.link_pj_per_bit * w * scale,
            ni: 0.0,
        }
    }

    /// Clock-tree and control dynamic energy (joules) for the given number
    /// of *active* router cycles (a gated router's clock is off).
    pub fn per_cycle_energy_j(&self, active_cycles: u64) -> PowerBreakdown {
        let t = &self.tech;
        let scale = t.dynamic_scale(self.vdd) * PJ;
        let w = self.width_bits as f64;
        PowerBreakdown {
            clock: active_cycles as f64 * t.clock_pj_per_width_bit_cycle * w * scale,
            control: active_cycles as f64 * t.control_pj_per_cycle * scale,
            ..PowerBreakdown::default()
        }
    }

    /// Network-interface energy (joules) for the given number of flit
    /// transits (injections plus ejections) through an NI of this width.
    pub fn ni_energy_j(&self, flit_transits: u64) -> f64 {
        flit_transits as f64 * self.tech.ni_pj_per_bit * self.width_bits as f64 * self.tech.dynamic_scale(self.vdd) * PJ
    }
}

/// Power report for one subnet over a measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SubnetPowerReport {
    /// Dynamic power by component, in watts.
    pub dynamic: PowerBreakdown,
    /// Static (leakage) power by component, in watts, after accounting for
    /// power gating (gated cycles leak nothing; each sleep transition is
    /// charged `t_breakeven` cycles of leakage).
    pub static_: PowerBreakdown,
    /// Fraction of router-cycles that were compensated sleep cycles.
    pub csc_fraction: f64,
}

impl SubnetPowerReport {
    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.dynamic.total() + self.static_.total()
    }
}

/// Power model of one whole subnet: `num_routers` routers plus the mesh
/// links between them. NI power is accounted separately (NIs are shared
/// across subnets in a Multi-NoC).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkPowerModel {
    /// Per-router model.
    pub router: RouterPowerModel,
    /// Number of routers.
    pub num_routers: usize,
    /// Number of directed inter-router links.
    pub num_links: usize,
    /// Multiplier on link power (layout crossover penalty for Multi-NoC).
    pub link_factor: f64,
}

impl NetworkPowerModel {
    /// Builds the model for a mesh of the given dimensions.
    pub fn for_mesh(dims: MeshDims, router: RouterPowerModel, link_factor: f64) -> Self {
        NetworkPowerModel {
            router,
            num_routers: dims.num_nodes(),
            num_links: directed_links(dims),
            link_factor,
        }
    }

    /// Convenience: builds the model directly from a simulated network
    /// (whatever its telemetry sink).
    pub fn for_network<S: catnap_telemetry::Sink>(
        net: &Network<S>,
        vdd: f64,
        freq_hz: f64,
        tech: TechParams,
        link_factor: f64,
    ) -> Self {
        let cfg = net.config();
        let router = RouterPowerModel {
            width_bits: cfg.link_width_bits,
            vcs: cfg.vcs_per_port,
            vc_depth: cfg.vc_depth,
            vdd,
            freq_hz,
            tech,
        };
        NetworkPowerModel::for_mesh(cfg.dims, router, link_factor)
    }

    /// Ungated leakage of the whole subnet (routers plus links).
    pub fn leakage_w(&self) -> PowerBreakdown {
        let mut leak = self.router.leakage_w() * self.num_routers as f64;
        leak.link = self.router.link_leakage_w() * self.num_links as f64 * self.link_factor;
        leak
    }

    /// Computes the subnet power over a measurement window.
    ///
    /// * `activity` — event counts summed over all routers in the window;
    /// * `gating` — gating residency summed over all routers (for an
    ///   ungated run pass active = `num_routers * cycles`);
    /// * `cycles` — window length in cycles;
    /// * `t_breakeven` — leakage-equivalent cycles charged per sleep
    ///   transition.
    pub fn report(
        &self,
        activity: &RouterActivity,
        gating: &GatingActivity,
        cycles: u64,
        t_breakeven: u32,
    ) -> SubnetPowerReport {
        if cycles == 0 {
            return SubnetPowerReport::default();
        }
        let time_s = cycles as f64 / self.router.freq_hz;

        let mut energy = self.router.event_energy_j(activity);
        energy.link *= self.link_factor;
        energy += self.router.per_cycle_energy_j(gating.active_cycles);
        let dynamic = energy * (1.0 / time_s);

        // Static: leakage is consumed during active and wake-up cycles,
        // plus t_breakeven cycles of equivalent energy per sleep
        // transition (sleep-transistor switching and decap recharge).
        let router_cycles = self.num_routers as f64 * cycles as f64;
        let powered = gating.active_cycles as f64
            + gating.wakeup_cycles as f64
            + gating.sleep_transitions as f64 * t_breakeven as f64;
        let powered_frac = (powered / router_cycles).min(1.0);
        let static_ = self.leakage_w() * powered_frac;

        SubnetPowerReport {
            dynamic,
            static_,
            csc_fraction: gating.csc_fraction(),
        }
    }

    /// Computes subnet power under *fine-grained per-port* gating
    /// (Matsutani et al., TCAD '11): `gating` residencies are summed over
    /// input ports (five per router). Only the buffers and links are
    /// gated; crossbar, control and clock stay powered (and clocked) the
    /// whole time — the granularity/savings trade-off of port-level
    /// gating.
    pub fn report_fine_grained(
        &self,
        activity: &RouterActivity,
        gating: &GatingActivity,
        cycles: u64,
        t_breakeven: u32,
    ) -> SubnetPowerReport {
        if cycles == 0 {
            return SubnetPowerReport::default();
        }
        let time_s = cycles as f64 / self.router.freq_hz;

        let mut energy = self.router.event_energy_j(activity);
        energy.link *= self.link_factor;
        // Clock and control never gate in port mode.
        energy += self.router.per_cycle_energy_j(self.num_routers as u64 * cycles);
        let dynamic = energy * (1.0 / time_s);

        let total_units = (gating.active_cycles + gating.sleep_cycles + gating.wakeup_cycles).max(1) as f64;
        let powered = gating.active_cycles as f64
            + gating.wakeup_cycles as f64
            + gating.sleep_transitions as f64 * t_breakeven as f64;
        let port_frac = (powered / total_units).min(1.0);

        let full = self.leakage_w();
        let static_ = PowerBreakdown {
            buffer: full.buffer * port_frac,
            link: full.link * port_frac,
            crossbar: full.crossbar,
            control: full.control,
            clock: full.clock,
            ni: full.ni,
        };

        SubnetPowerReport {
            dynamic,
            static_,
            csc_fraction: gating.csc_fraction(),
        }
    }
}

/// Number of directed inter-router links in a mesh.
pub fn directed_links(dims: MeshDims) -> usize {
    let c = dims.cols as usize;
    let r = dims.rows as usize;
    2 * ((c - 1) * r + (r - 1) * c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_noc_model() -> NetworkPowerModel {
        let router = RouterPowerModel {
            width_bits: 512,
            vcs: 4,
            vc_depth: 4,
            vdd: 0.750,
            freq_hz: 2.0e9,
            tech: TechParams::catnap_32nm(),
        };
        NetworkPowerModel::for_mesh(MeshDims::new(8, 8), router, 1.0)
    }

    fn multi_noc_subnet_model() -> NetworkPowerModel {
        let router = RouterPowerModel {
            width_bits: 128,
            vcs: 4,
            vc_depth: 4,
            vdd: 0.625,
            freq_hz: 2.0e9,
            tech: TechParams::catnap_32nm(),
        };
        NetworkPowerModel::for_mesh(MeshDims::new(8, 8), router, 1.12)
    }

    #[test]
    fn directed_link_count() {
        assert_eq!(directed_links(MeshDims::new(8, 8)), 224);
        assert_eq!(directed_links(MeshDims::new(4, 4)), 48);
        assert_eq!(directed_links(MeshDims::new(2, 1)), 2);
    }

    #[test]
    fn single_noc_leakage_near_paper_anchor() {
        // Paper: ~25 W static for the bandwidth-equivalent designs,
        // excluding the NI (which adds ~2.6 W and is modelled separately).
        let leak = single_noc_model().leakage_w().total();
        assert!(
            leak > 19.0 && leak < 25.0,
            "Single-NoC router+link leakage {leak:.1} W out of expected band"
        );
    }

    #[test]
    fn multi_noc_static_similar_to_single() {
        let single = single_noc_model().leakage_w().total();
        let multi = multi_noc_subnet_model().leakage_w().total() * 4.0;
        let ratio = multi / single;
        // Buffers and links dominate leakage and are width-neutral in
        // aggregate; only the crossbars shrink. Paper: "about the same".
        assert!(
            ratio > 0.80 && ratio < 1.05,
            "4x128b leakage should be close to 1x512b, ratio {ratio:.2}"
        );
    }

    #[test]
    fn crossbar_leakage_quadratic_in_width() {
        let t = TechParams::catnap_32nm();
        let mk = |w| RouterPowerModel {
            width_bits: w,
            vcs: 4,
            vc_depth: 4,
            vdd: 0.75,
            freq_hz: 2e9,
            tech: t,
        };
        let x512 = mk(512).leakage_w().crossbar;
        let x128 = mk(128).leakage_w().crossbar;
        assert!((x512 / x128 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn dynamic_energy_scales_with_voltage_squared() {
        let a = RouterActivity {
            buffer_writes: 1000,
            buffer_reads: 1000,
            xbar_traversals: 1000,
            link_flits: 800,
            arb_grants: 1000,
            ..Default::default()
        };
        let hi = RouterPowerModel {
            width_bits: 128,
            vcs: 4,
            vc_depth: 4,
            vdd: 0.750,
            freq_hz: 2e9,
            tech: TechParams::catnap_32nm(),
        };
        let lo = RouterPowerModel { vdd: 0.625, ..hi };
        let ratio = lo.event_energy_j(&a).total() / hi.event_energy_j(&a).total();
        assert!((ratio - (0.625f64 / 0.75).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn gated_static_power_scales_with_powered_fraction() {
        let m = single_noc_model();
        let cycles = 10_000u64;
        let a = RouterActivity::default();
        // Fully active.
        let all_on = GatingActivity {
            active_cycles: 64 * cycles,
            ..Default::default()
        };
        let on = m.report(&a, &all_on, cycles, 12);
        // Half the router-cycles asleep, no transitions charged.
        let half = GatingActivity {
            active_cycles: 32 * cycles,
            sleep_cycles: 32 * cycles,
            ..Default::default()
        };
        let h = m.report(&a, &half, cycles, 12);
        assert!((h.static_.total() / on.static_.total() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sleep_transitions_charge_breakeven_energy() {
        let m = single_noc_model();
        let cycles = 1_000u64;
        let a = RouterActivity::default();
        let gating = GatingActivity {
            active_cycles: 0,
            sleep_cycles: 64 * cycles,
            sleep_transitions: 64,
            ..Default::default()
        };
        let rep = m.report(&a, &gating, cycles, 12);
        let expected_frac = (64.0 * 12.0) / (64.0 * cycles as f64);
        assert!((rep.static_.total() / m.leakage_w().total() - expected_frac).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_reports_zero() {
        let m = single_noc_model();
        let rep = m.report(&RouterActivity::default(), &GatingActivity::default(), 0, 12);
        assert_eq!(rep.total(), 0.0);
    }

    #[test]
    fn ni_energy_proportional_to_width_and_transits() {
        let r = single_noc_model().router;
        let e1 = r.ni_energy_j(100);
        let e2 = r.ni_energy_j(200);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }
}
