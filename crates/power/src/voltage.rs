//! Router critical-path delay model: maximum frequency as a function of
//! datapath width and supply voltage.
//!
//! The paper synthesizes the arbitration and matrix-crossbar stages at
//! 32 nm and finds the crossbar dominates the critical path for widths of
//! 256 bits and beyond, so a 512-bit router needs 0.750 V to reach 2 GHz
//! while a 128-bit router reaches it at 0.625 V (Table 2). We model this
//! with an alpha-power-law MOSFET drive (Sakurai-Newton):
//!
//! ```text
//! f_max(W, V) = C · ((V - Vt)^alpha / V) / (d0 + W)
//! ```
//!
//! with `Vt = 0.38 V`, `alpha = 1.3`, and `d0, C` fitted so that all four
//! rows of Table 2 are reproduced.

/// One row of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VoltagePoint {
    /// Design name ("Single-NoC" or "Multi-NoC").
    pub design: &'static str,
    /// Router datapath width in bits.
    pub width_bits: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

catnap_util::impl_to_json_struct!(VoltagePoint {
    design,
    width_bits,
    freq_ghz,
    vdd
});

/// Alpha-power-law critical-path delay model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    /// Threshold voltage.
    pub vt: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Width-independent part of the critical path (arbitration etc.), in
    /// the same arbitrary units as one bit of crossbar width.
    pub d0: f64,
    /// Overall drive constant, fitted to Table 2.
    pub c: f64,
}

impl DelayModel {
    /// The model fitted to the paper's Table 2.
    pub fn catnap_32nm() -> Self {
        // Fit: f(128)/f(512) at equal V must be 2.9/2.0, giving
        // d0 = (512 - 1.45*128) / 0.45; C anchors f(512, 0.75) = 2 GHz.
        let vt = 0.38;
        let alpha = 1.3;
        let d0 = (512.0 - 1.45 * 128.0) / 0.45;
        let h075 = DelayModel::drive(vt, alpha, 0.750);
        let c = 2.0e9 * (d0 + 512.0) / h075;
        DelayModel { vt, alpha, d0, c }
    }

    fn drive(vt: f64, alpha: f64, vdd: f64) -> f64 {
        if vdd <= vt {
            0.0
        } else {
            (vdd - vt).powf(alpha) / vdd
        }
    }

    /// Maximum clock frequency (Hz) of a router with the given datapath
    /// width at the given supply voltage.
    pub fn f_max_hz(&self, width_bits: u32, vdd: f64) -> f64 {
        self.c * DelayModel::drive(self.vt, self.alpha, vdd) / (self.d0 + width_bits as f64)
    }

    /// Minimum supply voltage for a router of the given width to run at
    /// `freq_hz`, found by bisection. Returns `None` if even 1.2 V is
    /// insufficient.
    pub fn required_vdd(&self, width_bits: u32, freq_hz: f64) -> Option<f64> {
        let mut lo = self.vt + 1e-4;
        let mut hi = 1.2;
        if self.f_max_hz(width_bits, hi) < freq_hz {
            return None;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.f_max_hz(width_bits, mid) >= freq_hz {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// The paper's Table 2, as predicted by this model (frequencies are
    /// computed; voltages are the paper's operating points).
    pub fn table2(&self) -> Vec<VoltagePoint> {
        let rows = [
            ("Single-NoC", 512u32, 0.750),
            ("Single-NoC", 512, 0.625),
            ("Multi-NoC", 128, 0.750),
            ("Multi-NoC", 128, 0.625),
        ];
        rows.iter()
            .map(|&(design, w, v)| VoltagePoint {
                design,
                width_bits: w,
                freq_ghz: self.f_max_hz(w, v) / 1e9,
                vdd: v,
            })
            .collect()
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::catnap_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_frequencies() {
        let m = DelayModel::catnap_32nm();
        let expected = [
            (512u32, 0.750, 2.0),
            (512, 0.625, 1.4),
            (128, 0.750, 2.9),
            (128, 0.625, 2.0),
        ];
        for (w, v, f_ghz) in expected {
            let f = m.f_max_hz(w, v) / 1e9;
            assert!(
                (f - f_ghz).abs() < 0.05,
                "f_max({w}b, {v}V) = {f:.3} GHz, paper says {f_ghz}"
            );
        }
    }

    #[test]
    fn narrower_router_needs_lower_voltage_for_2ghz() {
        let m = DelayModel::catnap_32nm();
        let v512 = m.required_vdd(512, 2.0e9).unwrap();
        let v128 = m.required_vdd(128, 2.0e9).unwrap();
        assert!(v128 < v512, "narrow router must reach 2 GHz at lower Vdd");
        assert!((v512 - 0.750).abs() < 0.01);
        assert!((v128 - 0.625).abs() < 0.01);
    }

    #[test]
    fn frequency_monotonic_in_voltage_and_width() {
        let m = DelayModel::catnap_32nm();
        let mut last = 0.0;
        for mv in (400..=1200).step_by(50) {
            let f = m.f_max_hz(256, mv as f64 / 1000.0);
            assert!(f >= last);
            last = f;
        }
        assert!(m.f_max_hz(64, 0.7) > m.f_max_hz(256, 0.7));
        assert!(m.f_max_hz(256, 0.7) > m.f_max_hz(1024, 0.7));
    }

    #[test]
    fn required_vdd_none_when_unreachable() {
        let m = DelayModel::catnap_32nm();
        assert!(m.required_vdd(4096, 10.0e9).is_none());
    }

    #[test]
    fn below_threshold_no_drive() {
        let m = DelayModel::catnap_32nm();
        assert_eq!(m.f_max_hz(128, 0.3), 0.0);
    }

    #[test]
    fn table2_shape() {
        let t = DelayModel::catnap_32nm().table2();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].width_bits, 512);
        assert_eq!(t[3].width_bits, 128);
        assert!((t[3].freq_ghz - 2.0).abs() < 0.05);
    }
}
