//! Technology parameters: per-event dynamic energies and per-bit leakage
//! coefficients, calibrated for the paper's 32 nm, 2 GHz design point.
//!
//! All dynamic energies are specified at the reference voltage
//! [`TechParams::vdd_ref`] (0.75 V) and scaled by `(Vdd / vdd_ref)^2` at
//! use. Leakage is taken voltage-independent by default (matching the
//! paper's observation that both bandwidth-equivalent designs leak ~25 W
//! even though the Multi-NoC runs at 0.625 V); an exponent is provided for
//! sensitivity studies.

/// Energy and leakage coefficients for the power model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechParams {
    /// Reference supply voltage at which dynamic energies are specified.
    pub vdd_ref: f64,

    // --- Dynamic energy coefficients (pJ, at vdd_ref) ---
    /// Buffer write energy per bit.
    pub buf_write_pj_per_bit: f64,
    /// Buffer read energy per bit.
    pub buf_read_pj_per_bit: f64,
    /// Crossbar traversal energy per bit *squared* of datapath width
    /// (matrix crossbar wire capacitance grows with area).
    pub xbar_pj_per_bit2: f64,
    /// Link traversal energy per bit (2.5 mm inter-router link).
    pub link_pj_per_bit: f64,
    /// Network-interface energy per bit per transit (inject or eject).
    pub ni_pj_per_bit: f64,
    /// Clock-tree dynamic energy per datapath-width bit per active cycle.
    pub clock_pj_per_width_bit_cycle: f64,
    /// Control-plane dynamic energy per active router cycle.
    pub control_pj_per_cycle: f64,
    /// Arbitration energy per switch-allocation grant.
    pub arb_pj_per_grant: f64,
    /// Energy per regional-congestion OR-network switching event (paper:
    /// 8.7 pJ from SPICE, Section 4.1).
    pub or_network_pj_per_switch: f64,

    // --- Leakage coefficients (W, at vdd_ref) ---
    /// Leakage per buffer storage bit (router input buffers and NI queue).
    pub leak_w_per_buffer_bit: f64,
    /// Leakage per bit-squared of crossbar datapath width.
    pub leak_w_per_xbar_bit2: f64,
    /// Leakage per directed-link bit (repeaters/drivers).
    pub leak_w_per_link_bit: f64,
    /// Fixed control/clock-tree leakage per router.
    pub leak_w_fixed_per_router: f64,
    /// Exponent of `(Vdd / vdd_ref)` applied to leakage (0 = voltage
    /// independent, the default).
    pub leak_voltage_exponent: f64,

    /// Extra link power factor for Multi-NoC layouts, from the paper's
    /// layout analysis of crossover wiring (Section 5.2: about +12% for
    /// four 128-bit subnets).
    pub multi_link_crossover_factor: f64,
}

impl TechParams {
    /// Coefficients calibrated to the paper's 32 nm anchors. See the
    /// crate-level docs for the calibration targets.
    pub fn catnap_32nm() -> Self {
        TechParams {
            vdd_ref: 0.750,
            buf_write_pj_per_bit: 0.030,
            buf_read_pj_per_bit: 0.025,
            xbar_pj_per_bit2: 1.43e-4,
            link_pj_per_bit: 0.0366,
            ni_pj_per_bit: 0.040,
            clock_pj_per_width_bit_cycle: 0.122,
            control_pj_per_cycle: 0.004,
            arb_pj_per_grant: 0.3,
            or_network_pj_per_switch: 8.7,
            leak_w_per_buffer_bit: 4.96e-6,
            leak_w_per_xbar_bit2: 2.98e-7,
            leak_w_per_link_bit: 30.5e-6,
            leak_w_fixed_per_router: 5.5e-3,
            leak_voltage_exponent: 0.0,
            multi_link_crossover_factor: 1.12,
        }
    }

    /// Dynamic-energy scaling factor at supply voltage `vdd`.
    pub fn dynamic_scale(&self, vdd: f64) -> f64 {
        let r = vdd / self.vdd_ref;
        r * r
    }

    /// Leakage scaling factor at supply voltage `vdd`.
    pub fn leakage_scale(&self, vdd: f64) -> f64 {
        (vdd / self.vdd_ref).powf(self.leak_voltage_exponent)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::catnap_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_scale_is_quadratic() {
        let t = TechParams::catnap_32nm();
        assert!((t.dynamic_scale(0.75) - 1.0).abs() < 1e-12);
        let s = t.dynamic_scale(0.625);
        assert!((s - (0.625f64 / 0.75).powi(2)).abs() < 1e-12);
        assert!(s > 0.69 && s < 0.70);
    }

    #[test]
    fn leakage_voltage_independent_by_default() {
        let t = TechParams::catnap_32nm();
        assert!((t.leakage_scale(0.625) - 1.0).abs() < 1e-12);
        let mut t2 = t;
        t2.leak_voltage_exponent = 1.0;
        assert!((t2.leakage_scale(0.625) - 0.625 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn or_network_energy_matches_paper() {
        assert!((TechParams::catnap_32nm().or_network_pj_per_switch - 8.7).abs() < 1e-12);
    }
}
