//! Closed-form network power at a given per-port load factor.
//!
//! The paper's Figure 7 compares Single-NoC and Multi-NoC power "at near
//! saturation (that is, we assume a per-port load factor of 0.5)" without
//! running a simulation; this module provides the same computation. A
//! per-port load factor `L` means each router output port carries a flit
//! in a fraction `L` of cycles, from which all event rates follow:
//!
//! * crossbar traversals per router-cycle: `5 L` (five output ports);
//! * buffer writes and reads per router-cycle: `5 L` each;
//! * link flits per router-cycle: `links/routers · L`;
//! * NI flit transits per node-cycle: `2 L` (one inject + one eject port).

use crate::breakdown::PowerBreakdown;
use crate::model::{directed_links, NetworkPowerModel, RouterPowerModel};
use crate::params::TechParams;
use catnap_noc::MeshDims;

/// Description of a (possibly multi-subnet) network design for analytic
/// power evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Human-readable name, e.g. `"1NT-512b 0.750V"`.
    pub name: &'static str,
    /// Number of subnets.
    pub subnets: usize,
    /// Datapath width per subnet, in bits.
    pub width_bits: u32,
    /// Supply voltage.
    pub vdd: f64,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Virtual channels per port.
    pub vcs: usize,
    /// VC depth in flits.
    pub vc_depth: usize,
}

impl DesignPoint {
    /// The paper's 1NT-512b Single-NoC at 0.750 V.
    pub fn single_512b_0v750() -> Self {
        DesignPoint {
            name: "1NT-512b 0.750V",
            subnets: 1,
            width_bits: 512,
            vdd: 0.750,
            freq_hz: 2.0e9,
            dims: MeshDims::new(8, 8),
            vcs: 4,
            vc_depth: 4,
        }
    }

    /// The paper's 4NT-128b Multi-NoC at 0.750 V (no voltage scaling).
    pub fn multi_4x128b_0v750() -> Self {
        DesignPoint {
            name: "4NT-128b 0.750V",
            subnets: 4,
            width_bits: 128,
            vdd: 0.750,
            ..DesignPoint::single_512b_0v750()
        }
    }

    /// The paper's 4NT-128b Multi-NoC at 0.625 V (voltage scaled; the
    /// configuration highlighted in Table 2 and used in the evaluation).
    pub fn multi_4x128b_0v625() -> Self {
        DesignPoint {
            name: "4NT-128b 0.625V",
            subnets: 4,
            width_bits: 128,
            vdd: 0.625,
            ..DesignPoint::single_512b_0v750()
        }
    }

    fn router_model(&self, tech: TechParams) -> RouterPowerModel {
        RouterPowerModel {
            width_bits: self.width_bits,
            vcs: self.vcs,
            vc_depth: self.vc_depth,
            vdd: self.vdd,
            freq_hz: self.freq_hz,
            tech,
        }
    }

    /// NI queue storage bits per node: the NI is shared across subnets and
    /// sized for the aggregate datapath (16 flits of the aggregate width).
    pub fn ni_queue_bits(&self) -> f64 {
        16.0 * (self.width_bits as f64 * self.subnets as f64)
    }

    /// Analytic network power (all subnets plus NIs) at per-port load
    /// factor `load`, split into dynamic and static parts.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= load <= 1.0`.
    pub fn power_at_load(&self, tech: TechParams, load: f64) -> (PowerBreakdown, PowerBreakdown) {
        assert!((0.0..=1.0).contains(&load), "load factor must be in [0, 1]");
        let router = self.router_model(tech);
        let link_factor = if self.subnets > 1 {
            tech.multi_link_crossover_factor
        } else {
            1.0
        };
        let nets = NetworkPowerModel::for_mesh(self.dims, router, link_factor);
        let routers = nets.num_routers as f64;
        let links = nets.num_links as f64;
        let nodes = self.dims.num_nodes() as f64;
        let scale = tech.dynamic_scale(self.vdd);
        let w = self.width_bits as f64;
        let hz = self.freq_hz;
        let pj = 1e-12;

        // Per-subnet event rates (events per second, whole subnet).
        let xbar_rate = 5.0 * load * routers * hz;
        let buf_rate = 5.0 * load * routers * hz;
        let link_rate = load * links * hz;

        let mut dynamic = PowerBreakdown {
            buffer: buf_rate * (tech.buf_write_pj_per_bit + tech.buf_read_pj_per_bit) * w * scale * pj,
            crossbar: xbar_rate * tech.xbar_pj_per_bit2 * w * w * scale * pj,
            control: (routers * hz * tech.control_pj_per_cycle + xbar_rate * tech.arb_pj_per_grant) * scale * pj,
            clock: routers * hz * tech.clock_pj_per_width_bit_cycle * w * scale * pj,
            link: link_rate * tech.link_pj_per_bit * w * scale * pj * link_factor,
            ni: 0.0,
        } * self.subnets as f64;

        // NI: shared across subnets; 2L flit transits per node-cycle per
        // subnet, each of the subnet flit width.
        let ni_rate = 2.0 * load * nodes * hz * self.subnets as f64;
        dynamic.ni = ni_rate * tech.ni_pj_per_bit * w * scale * pj;

        let mut static_ = nets.leakage_w() * self.subnets as f64;
        static_.ni = self.ni_queue_bits() * nodes * tech.leak_w_per_buffer_bit * tech.leakage_scale(self.vdd);

        (dynamic, static_)
    }
}

/// Number of directed links of the design's mesh (per subnet).
pub fn subnet_links(d: &DesignPoint) -> usize {
    directed_links(d.dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_fraction_at_saturation_near_paper() {
        // Paper Section 1: leakage can be as high as 39% of network power
        // at saturation for the 256-core system.
        let d = DesignPoint::single_512b_0v750();
        let (dyn_, stat) = d.power_at_load(TechParams::catnap_32nm(), 0.5);
        let frac = stat.total() / (stat.total() + dyn_.total());
        assert!(
            frac > 0.33 && frac < 0.45,
            "leakage fraction at saturation {frac:.2}, paper says ~0.39"
        );
    }

    #[test]
    fn total_static_near_25w() {
        let d = DesignPoint::single_512b_0v750();
        let (_, stat) = d.power_at_load(TechParams::catnap_32nm(), 0.5);
        assert!(
            stat.total() > 22.0 && stat.total() < 28.0,
            "static {:.1} W, paper anchor ~25 W",
            stat.total()
        );
    }

    #[test]
    fn fig7_ordering_holds() {
        // Figure 7: dynamic power of 4NT-128b @ 0.750V is somewhat lower
        // than 1NT-512b (narrower crossbars), and 4NT-128b @ 0.625V is
        // significantly lower (voltage scaling).
        let t = TechParams::catnap_32nm();
        let (d1, s1) = DesignPoint::single_512b_0v750().power_at_load(t, 0.5);
        let (d2, s2) = DesignPoint::multi_4x128b_0v750().power_at_load(t, 0.5);
        let (d3, s3) = DesignPoint::multi_4x128b_0v625().power_at_load(t, 0.5);
        let t1 = d1.total() + s1.total();
        let t2 = d2.total() + s2.total();
        let t3 = d3.total() + s3.total();
        assert!(t2 < t1, "4NT@0.750V ({t2:.1}) must be below 1NT ({t1:.1})");
        assert!(t3 < t2, "4NT@0.625V ({t3:.1}) must be below 4NT@0.750V ({t2:.1})");
        assert!(t3 < 0.85 * t1, "voltage-scaled Multi-NoC should be clearly lower");
    }

    #[test]
    fn crossbar_dominates_less_in_multi() {
        let t = TechParams::catnap_32nm();
        let (d1, _) = DesignPoint::single_512b_0v750().power_at_load(t, 0.5);
        let (d2, _) = DesignPoint::multi_4x128b_0v750().power_at_load(t, 0.5);
        // Same aggregate bits, but four narrow crossbars: 4x less energy.
        assert!((d1.crossbar / d2.crossbar - 4.0).abs() < 0.01);
        // Buffers move the same bits: equal dynamic power.
        assert!((d1.buffer / d2.buffer - 1.0).abs() < 0.01);
        // Links pay the crossover penalty.
        assert!((d2.link / d1.link - t.multi_link_crossover_factor).abs() < 0.01);
    }

    #[test]
    fn dynamic_power_linear_in_load() {
        let d = DesignPoint::single_512b_0v750();
        let t = TechParams::catnap_32nm();
        let (d1, _) = d.power_at_load(t, 0.2);
        let (d2, _) = d.power_at_load(t, 0.4);
        // Clock and the per-cycle control part are load-independent.
        let clk1 = d1.clock + 64.0 * 2.0e9 * t.control_pj_per_cycle * 1e-12;
        let var1 = d1.total() - d1.clock;
        let var2 = d2.total() - d2.clock;
        assert!(var2 > var1 * 1.5, "load-dependent part must grow with load");
        assert!((d1.clock - d2.clock).abs() < 1e-9, "clock is load-independent");
        let _ = clk1;
    }

    #[test]
    #[should_panic]
    fn load_out_of_range_panics() {
        DesignPoint::single_512b_0v750().power_at_load(TechParams::catnap_32nm(), 1.5);
    }

    #[test]
    fn zero_load_has_only_clock_control_and_static() {
        let (dyn_, stat) = DesignPoint::single_512b_0v750().power_at_load(TechParams::catnap_32nm(), 0.0);
        assert_eq!(dyn_.buffer, 0.0);
        assert_eq!(dyn_.crossbar, 0.0);
        assert_eq!(dyn_.link, 0.0);
        assert_eq!(dyn_.ni, 0.0);
        assert!(dyn_.clock > 0.0);
        assert!(stat.total() > 0.0);
    }
}
