#![warn(missing_docs)]

//! # catnap-power
//!
//! An Orion-2-style analytic power model for network-on-chip routers,
//! links and network interfaces, calibrated to the published anchors of
//! the Catnap paper (ISCA 2013, Section 4.2-4.3):
//!
//! * ~25 W of static (leakage) power for a bandwidth-equivalent 8x8
//!   concentrated-mesh network at 32 nm (both 1NT-512b and 4NT-128b);
//! * leakage ≈ 39% of total network power at saturation for the
//!   512-bit Single-NoC;
//! * the voltage/frequency points of Table 2 (512-bit router: 2.0 GHz @
//!   0.750 V; 128-bit router: 2.0 GHz @ 0.625 V), reproduced by an
//!   alpha-power-law delay model whose critical path grows linearly with
//!   crossbar datapath width;
//! * SPICE-derived gating costs: 10-cycle wake-up, 12-cycle break-even,
//!   8.7 pJ per regional-congestion OR-network switch.
//!
//! The model follows the paper's structure arguments: crossbar energy and
//! area scale with the *square* of datapath width, buffers and links scale
//! linearly, and dynamic power scales with the square of supply voltage —
//! which is what makes several narrow subnets cheaper than one wide
//! network at high aggregate bandwidth.
//!
//! ## Layers
//!
//! * [`TechParams`] — per-event energy and per-bit leakage coefficients.
//! * [`DelayModel`] — maximum frequency vs. width and voltage; reproduces
//!   Table 2 and answers "what Vdd does a `W`-bit router need for 2 GHz?".
//! * [`RouterPowerModel`] / [`NetworkPowerModel`] — convert
//!   [`RouterActivity`](catnap_noc::RouterActivity) event counts and
//!   gating residency into a per-component [`PowerBreakdown`].
//! * [`analytic`] — closed-form power at a given per-port load factor
//!   (used for the paper's Figure 7, which assumes a 0.5 load factor).

pub mod analytic;
pub mod breakdown;
pub mod model;
pub mod params;
pub mod voltage;

pub use breakdown::PowerBreakdown;
pub use model::{NetworkPowerModel, RouterPowerModel};
pub use params::TechParams;
pub use voltage::{DelayModel, VoltagePoint};
