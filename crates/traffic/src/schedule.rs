//! Time-varying offered-load schedules for bursty-traffic experiments.


/// A piecewise-constant offered-load schedule: the injection rate
/// (packets per node per cycle) as a function of the simulation cycle.
///
/// The paper's Figure 12 uses a base load of 0.01 with a burst to 0.30
/// during cycles 1000-1500 and a second burst to 0.10 during cycles
/// 2000-2500; see [`LoadSchedule::fig12_bursts`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSchedule {
    /// `(from_cycle, rate)` segments, sorted by cycle; each rate applies
    /// from its cycle until the next segment.
    segments: Vec<(u64, f64)>,
}

impl LoadSchedule {
    /// A constant offered load.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    pub fn constant(rate: f64) -> Self {
        assert!(rate >= 0.0, "offered load must be non-negative");
        LoadSchedule {
            segments: vec![(0, rate)],
        }
    }

    /// Builds a schedule from `(from_cycle, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, not sorted by cycle, does not start at
    /// cycle 0, or contains a negative rate.
    pub fn piecewise(segments: Vec<(u64, f64)>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        assert_eq!(segments[0].0, 0, "schedule must start at cycle 0");
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "segments must be strictly increasing in cycle");
        }
        assert!(segments.iter().all(|&(_, r)| r >= 0.0), "rates must be non-negative");
        LoadSchedule { segments }
    }

    /// The paper's Figure-12 bursty schedule: base 0.01, burst to 0.30 at
    /// cycles 1000-1500, second burst to 0.10 at cycles 2000-2500.
    pub fn fig12_bursts() -> Self {
        LoadSchedule::piecewise(vec![
            (0, 0.01),
            (1000, 0.30),
            (1500, 0.01),
            (2000, 0.10),
            (2500, 0.01),
        ])
    }

    /// Offered load at a given cycle.
    pub fn rate_at(&self, cycle: u64) -> f64 {
        let mut rate = self.segments[0].1;
        for &(from, r) in &self.segments {
            if cycle >= from {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// Maximum rate anywhere in the schedule.
    pub fn peak_rate(&self) -> f64 {
        self.segments.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = LoadSchedule::constant(0.07);
        assert_eq!(s.rate_at(0), 0.07);
        assert_eq!(s.rate_at(1_000_000), 0.07);
        assert_eq!(s.peak_rate(), 0.07);
    }

    #[test]
    fn fig12_shape() {
        let s = LoadSchedule::fig12_bursts();
        assert_eq!(s.rate_at(0), 0.01);
        assert_eq!(s.rate_at(999), 0.01);
        assert_eq!(s.rate_at(1000), 0.30);
        assert_eq!(s.rate_at(1499), 0.30);
        assert_eq!(s.rate_at(1500), 0.01);
        assert_eq!(s.rate_at(2100), 0.10);
        assert_eq!(s.rate_at(3000), 0.01);
        assert_eq!(s.peak_rate(), 0.30);
    }

    #[test]
    #[should_panic]
    fn unsorted_segments_panic() {
        LoadSchedule::piecewise(vec![(0, 0.1), (100, 0.2), (50, 0.3)]);
    }

    #[test]
    #[should_panic]
    fn must_start_at_zero() {
        LoadSchedule::piecewise(vec![(10, 0.1)]);
    }

    #[test]
    #[should_panic]
    fn negative_rate_panics() {
        LoadSchedule::constant(-0.1);
    }
}
