//! Time-varying offered-load schedules for bursty-traffic experiments.

/// A piecewise-constant offered-load schedule: the injection rate
/// (packets per node per cycle) as a function of the simulation cycle.
///
/// The paper's Figure 12 uses a base load of 0.01 with a burst to 0.30
/// during cycles 1000-1500 and a second burst to 0.10 during cycles
/// 2000-2500; see [`LoadSchedule::fig12_bursts`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSchedule {
    /// `(from_cycle, rate)` segments, sorted by cycle; each rate applies
    /// from its cycle until the next segment.
    segments: Vec<(u64, f64)>,
}

impl LoadSchedule {
    /// A constant offered load.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    pub fn constant(rate: f64) -> Self {
        assert!(rate >= 0.0, "offered load must be non-negative");
        LoadSchedule {
            segments: vec![(0, rate)],
        }
    }

    /// Builds a schedule from `(from_cycle, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, not sorted by cycle, does not start at
    /// cycle 0, or contains a negative rate.
    pub fn piecewise(segments: Vec<(u64, f64)>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        assert_eq!(segments[0].0, 0, "schedule must start at cycle 0");
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "segments must be strictly increasing in cycle");
        }
        assert!(segments.iter().all(|&(_, r)| r >= 0.0), "rates must be non-negative");
        LoadSchedule { segments }
    }

    /// The paper's Figure-12 bursty schedule: base 0.01, burst to 0.30 at
    /// cycles 1000-1500, second burst to 0.10 at cycles 2000-2500.
    pub fn fig12_bursts() -> Self {
        LoadSchedule::piecewise(vec![(0, 0.01), (1000, 0.30), (1500, 0.01), (2000, 0.10), (2500, 0.01)])
    }

    /// A periodic on/off burst schedule: `on_rate` for the first
    /// `on_cycles` of every period, `off_rate` for the remaining
    /// `off_cycles`, repeating for `periods` periods (then `off_rate`
    /// forever). The square wave alternates saturating bursts with
    /// near-idle valleys — the regime that exercises both halves of the
    /// event scheduler (hot-set stepping and wakeup-queue deferral) in
    /// one run.
    ///
    /// # Panics
    ///
    /// Panics if a phase length is zero, `periods` is zero, or a rate is
    /// negative.
    pub fn square_wave(on_cycles: u64, off_cycles: u64, on_rate: f64, off_rate: f64, periods: u32) -> Self {
        assert!(on_cycles > 0 && off_cycles > 0, "phase lengths must be non-zero");
        assert!(periods > 0, "need at least one period");
        let mut segments = Vec::with_capacity(2 * periods as usize);
        for p in 0..periods as u64 {
            let start = p * (on_cycles + off_cycles);
            segments.push((start, on_rate));
            segments.push((start + on_cycles, off_rate));
        }
        LoadSchedule::piecewise(segments)
    }

    /// The `(from_cycle, rate)` segments, sorted by cycle (for job
    /// fingerprinting and schedule-prefix comparison).
    pub fn segments(&self) -> &[(u64, f64)] {
        &self.segments
    }

    /// Offered load at a given cycle.
    pub fn rate_at(&self, cycle: u64) -> f64 {
        let mut rate = self.segments[0].1;
        for &(from, r) in &self.segments {
            if cycle >= from {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// Maximum rate anywhere in the schedule.
    pub fn peak_rate(&self) -> f64 {
        self.segments.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = LoadSchedule::constant(0.07);
        assert_eq!(s.rate_at(0), 0.07);
        assert_eq!(s.rate_at(1_000_000), 0.07);
        assert_eq!(s.peak_rate(), 0.07);
    }

    #[test]
    fn fig12_shape() {
        let s = LoadSchedule::fig12_bursts();
        assert_eq!(s.rate_at(0), 0.01);
        assert_eq!(s.rate_at(999), 0.01);
        assert_eq!(s.rate_at(1000), 0.30);
        assert_eq!(s.rate_at(1499), 0.30);
        assert_eq!(s.rate_at(1500), 0.01);
        assert_eq!(s.rate_at(2100), 0.10);
        assert_eq!(s.rate_at(3000), 0.01);
        assert_eq!(s.peak_rate(), 0.30);
    }

    #[test]
    fn square_wave_alternates() {
        let s = LoadSchedule::square_wave(100, 300, 0.4, 0.001, 3);
        assert_eq!(s.rate_at(0), 0.4);
        assert_eq!(s.rate_at(99), 0.4);
        assert_eq!(s.rate_at(100), 0.001);
        assert_eq!(s.rate_at(399), 0.001);
        assert_eq!(s.rate_at(400), 0.4);
        assert_eq!(s.rate_at(850), 0.4, "cycle 850 is inside period 2's on-phase (800-900)");
        assert_eq!(s.rate_at(950), 0.001);
        assert_eq!(s.rate_at(10_000), 0.001, "off-rate persists past the last period");
        assert_eq!(s.peak_rate(), 0.4);
    }

    #[test]
    #[should_panic]
    fn square_wave_zero_phase_panics() {
        LoadSchedule::square_wave(0, 10, 0.1, 0.0, 1);
    }

    #[test]
    #[should_panic]
    fn unsorted_segments_panic() {
        LoadSchedule::piecewise(vec![(0, 0.1), (100, 0.2), (50, 0.3)]);
    }

    #[test]
    #[should_panic]
    fn must_start_at_zero() {
        LoadSchedule::piecewise(vec![(10, 0.1)]);
    }

    #[test]
    #[should_panic]
    fn negative_rate_panics() {
        LoadSchedule::constant(-0.1);
    }
}
