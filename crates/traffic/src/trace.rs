//! Packet-trace recording and replay.
//!
//! The paper's methodology is trace-driven (Pin-collected application
//! traces fed to a cycle-level backend). This module provides the
//! equivalent plumbing for our synthetic workloads: any generated packet
//! stream can be recorded to a JSON-lines trace and replayed
//! deterministically, which also makes cross-configuration comparisons
//! use *identical* input streams.

use crate::generator::PacketSink;
use catnap_noc::{MessageClass, NodeId, PacketDescriptor, PacketId};
use catnap_util::json::{FromJson, Json, JsonError, ToJson};
use std::io::{BufRead, Write};

/// One trace record (a packet creation event).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Creation cycle.
    pub cycle: u64,
    /// Source node index.
    pub src: u16,
    /// Destination node index.
    pub dst: u16,
    /// Packet size in bits.
    pub bits: u32,
    /// Message class.
    pub class: MessageClass,
}

impl TraceRecord {
    /// Builds a record from a packet descriptor.
    pub fn from_descriptor(d: &PacketDescriptor) -> Self {
        TraceRecord {
            cycle: d.created_cycle,
            src: d.src.0,
            dst: d.dst.0,
            bits: d.bits,
            class: d.class,
        }
    }

    /// Reconstructs a descriptor (packet ids are assigned by the player).
    pub fn to_descriptor(self, id: PacketId) -> PacketDescriptor {
        PacketDescriptor {
            id,
            src: NodeId(self.src),
            dst: NodeId(self.dst),
            bits: self.bits,
            class: self.class,
            created_cycle: self.cycle,
        }
    }
}

/// Stable string form of a message class for the trace format.
fn class_name(class: MessageClass) -> &'static str {
    match class {
        MessageClass::Request => "Request",
        MessageClass::Forward => "Forward",
        MessageClass::Response => "Response",
        MessageClass::Synthetic => "Synthetic",
    }
}

fn class_from_name(name: &str) -> Result<MessageClass, JsonError> {
    MessageClass::ALL
        .into_iter()
        .find(|&c| class_name(c) == name)
        .ok_or_else(|| JsonError {
            msg: format!("unknown message class '{name}'"),
        })
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycle".to_string(), self.cycle.to_json()),
            ("src".to_string(), self.src.to_json()),
            ("dst".to_string(), self.dst.to_json()),
            ("bits".to_string(), self.bits.to_json()),
            ("class".to_string(), Json::Str(class_name(self.class).to_string())),
        ])
    }
}

impl FromJson for TraceRecord {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            j.get(name).ok_or_else(|| JsonError {
                msg: format!("missing field '{name}'"),
            })
        };
        Ok(TraceRecord {
            cycle: u64::from_json(field("cycle")?)?,
            src: u16::from_json(field("src")?)?,
            dst: u16::from_json(field("dst")?)?,
            bits: u32::from_json(field("bits")?)?,
            class: class_from_name(String::from_json(field("class")?)?.as_str())?,
        })
    }
}

/// Serializes records as JSON lines.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_json().to_compact_string())?;
    }
    Ok(())
}

/// Reads a JSON-lines trace. Records must be sorted by cycle for replay.
///
/// # Errors
///
/// Returns any I/O or parse error.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(&line).map_err(std::io::Error::other)?;
        out.push(TraceRecord::from_json(&value).map_err(std::io::Error::other)?);
    }
    Ok(out)
}

/// Replays a recorded trace into a [`PacketSink`], cycle by cycle.
#[derive(Clone, Debug)]
pub struct TracePlayer {
    records: Vec<TraceRecord>,
    pos: usize,
    next_id: u64,
}

impl TracePlayer {
    /// Creates a player over records sorted by cycle.
    ///
    /// # Panics
    ///
    /// Panics if records are not sorted by cycle.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "trace records must be sorted by cycle"
        );
        TracePlayer {
            records,
            pos: 0,
            next_id: 0,
        }
    }

    /// Whether all records have been replayed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.records.len()
    }

    /// Submits all packets created at the sink's current cycle.
    pub fn drive<S: PacketSink>(&mut self, sink: &mut S) {
        let cycle = sink.now();
        while self.pos < self.records.len() && self.records[self.pos].cycle <= cycle {
            let rec = self.records[self.pos];
            self.pos += 1;
            let desc = rec.to_descriptor(PacketId(self.next_id));
            self.next_id += 1;
            sink.submit(desc);
        }
    }
}

impl crate::generator::TrafficSource for TracePlayer {
    fn drive<S: PacketSink>(&mut self, sink: &mut S) {
        TracePlayer::drive(self, sink);
    }

    fn next_arrival_cycle(&mut self, from: u64, limit: u64) -> u64 {
        // A record at or before `from` is submitted by the next
        // `drive` (catch-up semantics), so it arrives "at `from`".
        match self.records.get(self.pos) {
            Some(rec) => rec.cycle.max(from).min(limit),
            None => limit,
        }
    }
}

/// A [`PacketSink`] adapter that records everything passing through it
/// while forwarding to an inner sink.
#[derive(Debug)]
pub struct RecordingSink<'a, S> {
    inner: &'a mut S,
    /// Records captured so far.
    pub records: Vec<TraceRecord>,
}

impl<'a, S: PacketSink> RecordingSink<'a, S> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut S) -> Self {
        RecordingSink {
            inner,
            records: Vec::new(),
        }
    }
}

impl<S: PacketSink> PacketSink for RecordingSink<'_, S> {
    fn now(&self) -> u64 {
        self.inner.now()
    }
    fn submit(&mut self, desc: PacketDescriptor) {
        self.records.push(TraceRecord::from_descriptor(&desc));
        self.inner.submit(desc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CollectSink, SyntheticWorkload};
    use crate::patterns::SyntheticPattern;
    use catnap_noc::MeshDims;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                src: 1,
                dst: 9,
                bits: 512,
                class: MessageClass::Synthetic,
            },
            TraceRecord {
                cycle: 0,
                src: 2,
                dst: 8,
                bits: 72,
                class: MessageClass::Request,
            },
            TraceRecord {
                cycle: 5,
                src: 3,
                dst: 7,
                bits: 584,
                class: MessageClass::Response,
            },
        ]
    }

    #[test]
    fn roundtrip_through_json_lines() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn player_replays_at_correct_cycles() {
        let mut player = TracePlayer::new(sample_records());
        let mut sink = CollectSink::default();
        player.drive(&mut sink);
        assert_eq!(sink.packets.len(), 2);
        sink.cycle = 4;
        player.drive(&mut sink);
        assert_eq!(sink.packets.len(), 2);
        sink.cycle = 5;
        player.drive(&mut sink);
        assert_eq!(sink.packets.len(), 3);
        assert!(player.is_done());
        // Ids are unique and ascending.
        assert_eq!(sink.packets[0].id.0, 0);
        assert_eq!(sink.packets[2].id.0, 2);
    }

    #[test]
    #[should_panic]
    fn unsorted_trace_panics() {
        let mut records = sample_records();
        records.swap(0, 2);
        TracePlayer::new(records);
    }

    #[test]
    fn recording_sink_captures_generated_stream() {
        let mut inner = CollectSink::default();
        let mut rec = RecordingSink::new(&mut inner);
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.3, 512, MeshDims::new(4, 4), 21);
        for c in 0..20 {
            rec.inner.cycle = c;
            w.drive(&mut rec);
        }
        let n = rec.records.len();
        assert!(n > 0);
        assert_eq!(n, inner.packets.len());
        // Replaying the recording reproduces the same stream.
        let mut player = TracePlayer::new(inner.packets.iter().map(TraceRecord::from_descriptor).collect());
        let mut replay = CollectSink::default();
        for c in 0..20 {
            replay.cycle = c;
            player.drive(&mut replay);
        }
        assert_eq!(replay.packets.len(), n);
        for (a, b) in replay.packets.iter().zip(inner.packets.iter()) {
            assert_eq!(
                (a.src, a.dst, a.bits, a.created_cycle),
                (b.src, b.dst, b.bits, b.created_cycle)
            );
        }
    }
}
