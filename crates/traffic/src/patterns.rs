//! Synthetic destination patterns.

use catnap_noc::{MeshDims, NodeId};
use catnap_util::SimRng;

/// A synthetic traffic pattern: maps a source node to a destination.
///
/// The paper evaluates uniform random, transpose and bit complement
/// (Section 4.1); tornado, hotspot and neighbour exchange are provided for
/// additional stress tests.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SyntheticPattern {
    /// Destination drawn uniformly from all other nodes.
    UniformRandom,
    /// Node `(x, y)` sends to `(y, x)` (adversarial for X-Y routing).
    Transpose,
    /// Node `i` sends to `!i` within the node-index bit width.
    BitComplement,
    /// Node `(x, y)` sends half-way around the X dimension.
    Tornado,
    /// With probability `hot_fraction`, send to the hotspot node;
    /// otherwise uniform random. The fraction is in per-mille to keep the
    /// type `Copy + Eq`-friendly.
    HotSpot {
        /// Hotspot destination.
        hotspot: NodeId,
        /// Probability (per mille) of targeting the hotspot.
        per_mille: u16,
    },
    /// Node sends to its east neighbour (wraps around).
    NeighborExchange,
}

impl SyntheticPattern {
    /// Picks the destination for a packet from `src`. Returns `None` when
    /// the pattern maps the node to itself (such nodes do not inject,
    /// e.g. the diagonal under transpose).
    pub fn destination(self, src: NodeId, dims: MeshDims, rng: &mut SimRng) -> Option<NodeId> {
        let n = dims.num_nodes();
        let dst = match self {
            SyntheticPattern::UniformRandom => {
                let mut d = NodeId(rng.gen_range(0..n as u16));
                // Re-draw self-destinations (uniform over the other n-1).
                while d == src {
                    d = NodeId(rng.gen_range(0..n as u16));
                }
                d
            }
            SyntheticPattern::Transpose => {
                let (x, y) = dims.coords(src);
                if y >= dims.cols || x >= dims.rows {
                    // Non-square meshes: fold back in.
                    NodeId(((src.0 as usize + n / 2) % n) as u16)
                } else {
                    dims.node_at(y, x)
                }
            }
            SyntheticPattern::BitComplement => {
                assert!(n.is_power_of_two(), "bit complement requires a power-of-two node count");
                NodeId((!src.0) & (n as u16 - 1))
            }
            SyntheticPattern::Tornado => {
                let (x, y) = dims.coords(src);
                let shift = (dims.cols / 2)
                    .saturating_sub(if dims.cols.is_multiple_of(2) { 1 } else { 0 })
                    .max(1);
                dims.node_at((x + shift) % dims.cols, y)
            }
            SyntheticPattern::HotSpot { hotspot, per_mille } => {
                if rng.gen_range(0..1000) < per_mille {
                    hotspot
                } else {
                    NodeId(rng.gen_range(0..n as u16))
                }
            }
            SyntheticPattern::NeighborExchange => {
                let (x, y) = dims.coords(src);
                dims.node_at((x + 1) % dims.cols, y)
            }
        };
        (dst != src).then_some(dst)
    }

    /// Short name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "uniform-random",
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::BitComplement => "bit-complement",
            SyntheticPattern::Tornado => "tornado",
            SyntheticPattern::HotSpot { .. } => "hotspot",
            SyntheticPattern::NeighborExchange => "neighbor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> MeshDims {
        MeshDims::new(8, 8)
    }

    #[test]
    fn uniform_never_self() {
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..64u16 {
            for _ in 0..20 {
                let d = SyntheticPattern::UniformRandom
                    .destination(NodeId(i), mesh8(), &mut rng)
                    .unwrap();
                assert_ne!(d, NodeId(i));
            }
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut seen = [false; 64];
        for _ in 0..4000 {
            let d = SyntheticPattern::UniformRandom
                .destination(NodeId(0), mesh8(), &mut rng)
                .unwrap();
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 63);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut rng = SimRng::seed_from_u64(3);
        let dims = mesh8();
        let src = dims.node_at(2, 5);
        let d = SyntheticPattern::Transpose.destination(src, dims, &mut rng).unwrap();
        assert_eq!(dims.coords(d), (5, 2));
        // Diagonal nodes do not inject.
        assert_eq!(
            SyntheticPattern::Transpose.destination(dims.node_at(3, 3), dims, &mut rng),
            None
        );
    }

    #[test]
    fn bit_complement_is_involutive() {
        let mut rng = SimRng::seed_from_u64(4);
        let dims = mesh8();
        for i in 0..64u16 {
            let d = SyntheticPattern::BitComplement
                .destination(NodeId(i), dims, &mut rng)
                .expect("bit complement never maps to self on 64 nodes");
            let back = SyntheticPattern::BitComplement.destination(d, dims, &mut rng).unwrap();
            assert_eq!(back, NodeId(i));
        }
    }

    #[test]
    fn tornado_shifts_half_ring() {
        let mut rng = SimRng::seed_from_u64(5);
        let dims = mesh8();
        let d = SyntheticPattern::Tornado
            .destination(dims.node_at(0, 2), dims, &mut rng)
            .unwrap();
        assert_eq!(dims.coords(d).1, 2, "tornado stays in its row");
        assert_eq!(dims.coords(d).0, 3);
    }

    #[test]
    fn hotspot_bias() {
        let mut rng = SimRng::seed_from_u64(6);
        let dims = mesh8();
        let hs = NodeId(27);
        let pat = SyntheticPattern::HotSpot {
            hotspot: hs,
            per_mille: 500,
        };
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pat.destination(NodeId(0), dims, &mut rng) == Some(hs) {
                hits += 1;
            }
        }
        assert!(
            hits > trials / 3,
            "hotspot should attract ~half the traffic, got {hits}"
        );
    }

    #[test]
    fn neighbor_exchange_wraps() {
        let mut rng = SimRng::seed_from_u64(7);
        let dims = mesh8();
        let d = SyntheticPattern::NeighborExchange
            .destination(dims.node_at(7, 0), dims, &mut rng)
            .unwrap();
        assert_eq!(dims.coords(d), (0, 0));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SyntheticPattern::UniformRandom.name(), "uniform-random");
        assert_eq!(SyntheticPattern::Transpose.name(), "transpose");
        assert_eq!(SyntheticPattern::BitComplement.name(), "bit-complement");
    }
}
