//! Application workload catalog: the 35 applications the paper draws from
//! (SPEC CPU2006, SPLASH-2, SpecOMP, and four commercial workloads) and
//! the four multiprogrammed mixes of Table 3.
//!
//! **Substitution note** (see DESIGN.md §3): the paper drives its
//! simulator with Pin-collected instruction traces; we model each
//! application with synthetic memory-behaviour parameters instead. The
//! per-benchmark MPKI values below are chosen so that the average MPKI of
//! each Table-3 mix matches the paper's published column (3.9 / 7.8 /
//! 11.7 / 39.0), with relative magnitudes following the benchmarks'
//! well-known memory intensity (e.g. `mcf` extremely memory-bound,
//! `sjeng`/`gromacs` compute-bound).

/// Synthetic memory-behaviour parameters of one application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Benchmark {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite it belongs to.
    pub suite: Suite,
    /// Total misses per kilo-instruction injected into the network
    /// (paper's Table 3 counts L1-MPKI + L2-MPKI).
    pub mpki: f64,
    /// Fraction of L1 misses that also miss in the shared L2 and go to
    /// memory.
    pub l2_miss_ratio: f64,
    /// Fraction of read misses served by another core's cache via a
    /// directory forward (4-hop transactions).
    pub sharing_fraction: f64,
    /// Phase behaviour: fraction of execution spent in memory-intensive
    /// bursts...
    pub burst_fraction: f64,
    /// ...during which the miss rate is multiplied by this factor (the
    /// non-burst phase rate is scaled down to preserve the average MPKI).
    pub burst_boost: f64,
    /// Fraction of misses that are writes (dirty evictions follow).
    pub write_fraction: f64,
    /// Mean number of misses per miss *cluster*: real applications miss
    /// in spatially/temporally clustered runs, which is what gives an
    /// out-of-order core its memory-level parallelism. 1.0 = independent
    /// Bernoulli misses.
    pub cluster: f64,
}

/// Benchmark suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2006.
    SpecCpu2006,
    /// SPLASH-2.
    Splash2,
    /// SpecOMP.
    SpecOmp,
    /// Commercial server workloads (traced on real hardware in the paper).
    Commercial,
}

macro_rules! bench {
    ($name:literal, $suite:ident, $mpki:expr, $l2m:expr, $share:expr, $bf:expr, $bb:expr, $wf:expr) => {
        Benchmark {
            name: $name,
            suite: Suite::$suite,
            mpki: $mpki,
            l2_miss_ratio: $l2m,
            sharing_fraction: $share,
            burst_fraction: $bf,
            burst_boost: $bb,
            write_fraction: $wf,
            // Memory-bound applications miss in long streaming runs;
            // compute-bound ones miss sporadically.
            cluster: if $mpki >= 30.0 {
                8.0
            } else if $mpki >= 10.0 {
                6.0
            } else {
                3.0
            },
        }
    };
}

/// The full 35-application catalog.
///
/// MPKI values for applications appearing in Table 3 are constrained so
/// each mix's average matches the paper; the rest are set to plausible
/// relative magnitudes.
pub const CATALOG: [Benchmark; 35] = [
    // SPEC CPU2006 (memory behaviour ranked per common characterization).
    bench!("applu", SpecOmp, 6.0, 0.45, 0.05, 0.30, 2.0, 0.30),
    bench!("gromacs", SpecCpu2006, 1.7, 0.30, 0.03, 0.15, 1.5, 0.25),
    bench!("deal", SpecCpu2006, 3.0, 0.35, 0.04, 0.20, 1.8, 0.30),
    bench!("hmmer", SpecCpu2006, 1.5, 0.25, 0.02, 0.10, 1.4, 0.20),
    bench!("calculix", SpecCpu2006, 2.5, 0.30, 0.03, 0.15, 1.6, 0.25),
    bench!("gcc", SpecCpu2006, 8.0, 0.40, 0.05, 0.35, 2.2, 0.35),
    bench!("sjeng", SpecCpu2006, 2.5, 0.30, 0.03, 0.10, 1.3, 0.25),
    bench!("wrf", SpecCpu2006, 6.0, 0.45, 0.05, 0.30, 2.0, 0.30),
    bench!("gobmk", SpecCpu2006, 9.0, 0.40, 0.04, 0.25, 1.8, 0.30),
    bench!("h264ref", SpecCpu2006, 4.2, 0.35, 0.03, 0.20, 1.6, 0.25),
    bench!("sphinx", SpecCpu2006, 30.0, 0.55, 0.06, 0.40, 2.5, 0.30),
    bench!("cactus", SpecCpu2006, 30.0, 0.60, 0.05, 0.35, 2.2, 0.35),
    bench!("namd", SpecCpu2006, 7.4, 0.35, 0.04, 0.20, 1.6, 0.25),
    bench!("astar", SpecCpu2006, 35.0, 0.55, 0.05, 0.40, 2.4, 0.30),
    bench!("mcf", SpecCpu2006, 90.0, 0.70, 0.05, 0.50, 2.0, 0.35),
    bench!("tonto", SpecCpu2006, 25.0, 0.50, 0.04, 0.30, 2.0, 0.30),
    bench!("bzip2", SpecCpu2006, 5.5, 0.35, 0.03, 0.25, 1.8, 0.30),
    bench!("libquantum", SpecCpu2006, 28.0, 0.75, 0.02, 0.20, 1.5, 0.25),
    bench!("omnetpp", SpecCpu2006, 22.0, 0.55, 0.05, 0.30, 1.9, 0.35),
    bench!("soplex", SpecCpu2006, 29.0, 0.60, 0.04, 0.35, 2.1, 0.30),
    bench!("milc", SpecCpu2006, 26.0, 0.65, 0.03, 0.30, 1.9, 0.30),
    bench!("leslie3d", SpecCpu2006, 21.0, 0.55, 0.04, 0.30, 1.9, 0.30),
    // SpecOMP.
    bench!("swim", SpecOmp, 24.0, 0.60, 0.10, 0.35, 2.0, 0.35),
    bench!("mgrid", SpecOmp, 10.0, 0.45, 0.08, 0.25, 1.8, 0.30),
    bench!("art", SpecOmp, 40.0, 0.60, 0.08, 0.45, 2.3, 0.30),
    bench!("equake", SpecOmp, 18.0, 0.50, 0.10, 0.30, 2.0, 0.30),
    bench!("ammp", SpecOmp, 9.0, 0.40, 0.08, 0.25, 1.7, 0.30),
    // SPLASH-2 (multithreaded; higher sharing fractions).
    bench!("barnes", Splash2, 5.0, 0.35, 0.25, 0.25, 1.8, 0.30),
    bench!("fmm", Splash2, 4.5, 0.35, 0.20, 0.20, 1.7, 0.30),
    bench!("ocean", Splash2, 16.0, 0.55, 0.25, 0.35, 2.1, 0.35),
    bench!("radix", Splash2, 20.0, 0.60, 0.15, 0.30, 2.0, 0.40),
    // Commercial (high rates, bursty, shared data).
    bench!("sap", Commercial, 38.0, 0.55, 0.30, 0.45, 2.2, 0.40),
    bench!("tpcw", Commercial, 82.5, 0.60, 0.35, 0.50, 2.0, 0.40),
    bench!("sjbb", Commercial, 36.0, 0.55, 0.30, 0.45, 2.2, 0.40),
    bench!("sjas", Commercial, 45.0, 0.55, 0.35, 0.45, 2.2, 0.40),
];

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    CATALOG.iter().find(|b| b.name == name)
}

/// One of the paper's four multiprogrammed workload mixes (Table 3). Each
/// mix runs 32 instances of each of its eight applications on the
/// 256-core system (one application instance per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadMix {
    /// Avg. MPKI 3.9.
    Light,
    /// Avg. MPKI 7.8.
    MediumLight,
    /// Avg. MPKI 11.7.
    MediumHeavy,
    /// Avg. MPKI 39.0.
    Heavy,
}

impl WorkloadMix {
    /// All four mixes in Table-3 order.
    pub const ALL: [WorkloadMix; 4] = [
        WorkloadMix::Light,
        WorkloadMix::MediumLight,
        WorkloadMix::MediumHeavy,
        WorkloadMix::Heavy,
    ];

    /// The eight applications of the mix (each run as 32 instances).
    pub fn applications(self) -> [&'static str; 8] {
        match self {
            WorkloadMix::Light => ["applu", "gromacs", "deal", "hmmer", "calculix", "gcc", "sjeng", "wrf"],
            WorkloadMix::MediumLight => [
                "gromacs", "deal", "gobmk", "wrf", "h264ref", "sphinx", "applu", "calculix",
            ],
            WorkloadMix::MediumHeavy => [
                "cactus", "deal", "calculix", "hmmer", "namd", "sjas", "gromacs", "sjeng",
            ],
            WorkloadMix::Heavy => ["sjas", "astar", "mcf", "sphinx", "tonto", "tpcw", "deal", "hmmer"],
        }
    }

    /// Benchmarks of the mix, resolved against the catalog.
    pub fn benchmarks(self) -> Vec<&'static Benchmark> {
        self.applications()
            .iter()
            .map(|n| benchmark(n).expect("mix application missing from catalog"))
            .collect()
    }

    /// Average MPKI of the mix (computed from the catalog).
    pub fn avg_mpki(self) -> f64 {
        let b = self.benchmarks();
        b.iter().map(|b| b.mpki).sum::<f64>() / b.len() as f64
    }

    /// The paper's published average MPKI for this mix (Table 3).
    pub fn paper_avg_mpki(self) -> f64 {
        match self {
            WorkloadMix::Light => 3.9,
            WorkloadMix::MediumLight => 7.8,
            WorkloadMix::MediumHeavy => 11.7,
            WorkloadMix::Heavy => 39.0,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadMix::Light => "Light",
            WorkloadMix::MediumLight => "Medium-Light",
            WorkloadMix::MediumHeavy => "Medium-Heavy",
            WorkloadMix::Heavy => "Heavy",
        }
    }

    /// Assigns one application instance to each of `num_cores` cores:
    /// 32-instance blocks in Table-3 order (for 256 cores), scaled
    /// proportionally for other core counts.
    pub fn assign(self, num_cores: usize) -> Vec<&'static Benchmark> {
        let apps = self.benchmarks();
        (0..num_cores).map(|c| apps[c * apps.len() / num_cores.max(1)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_35_unique_apps() {
        assert_eq!(CATALOG.len(), 35);
        let mut names: Vec<&str> = CATALOG.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 35);
    }

    #[test]
    fn mix_averages_match_table3() {
        for mix in WorkloadMix::ALL {
            let got = mix.avg_mpki();
            let want = mix.paper_avg_mpki();
            assert!(
                (got - want).abs() / want < 0.02,
                "{}: catalog avg MPKI {got:.2} vs paper {want}",
                mix.name()
            );
        }
    }

    #[test]
    fn mixes_use_catalog_apps() {
        for mix in WorkloadMix::ALL {
            assert_eq!(mix.benchmarks().len(), 8);
        }
    }

    #[test]
    fn assignment_covers_all_apps_evenly() {
        let mix = WorkloadMix::Heavy;
        let assigned = mix.assign(256);
        assert_eq!(assigned.len(), 256);
        for app in mix.applications() {
            let count = assigned.iter().filter(|b| b.name == app).count();
            assert_eq!(count, 32, "{app} must get 32 instances");
        }
        // Scales to the 64-core configuration too.
        let a64 = mix.assign(64);
        for app in mix.applications() {
            assert_eq!(a64.iter().filter(|b| b.name == app).count(), 8);
        }
    }

    #[test]
    fn parameters_are_sane() {
        for b in &CATALOG {
            assert!(b.mpki > 0.0 && b.mpki < 200.0, "{}", b.name);
            assert!((0.0..=1.0).contains(&b.l2_miss_ratio), "{}", b.name);
            assert!((0.0..=1.0).contains(&b.sharing_fraction), "{}", b.name);
            assert!((0.0..=1.0).contains(&b.burst_fraction), "{}", b.name);
            assert!(b.burst_boost >= 1.0, "{}", b.name);
            assert!((0.0..=1.0).contains(&b.write_fraction), "{}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mcf").is_some());
        assert_eq!(benchmark("mcf").unwrap().mpki, 90.0);
        assert!(benchmark("doom-eternal").is_none());
    }

    #[test]
    fn ordering_of_mix_intensity() {
        assert!(WorkloadMix::Light.avg_mpki() < WorkloadMix::MediumLight.avg_mpki());
        assert!(WorkloadMix::MediumLight.avg_mpki() < WorkloadMix::MediumHeavy.avg_mpki());
        assert!(WorkloadMix::MediumHeavy.avg_mpki() < WorkloadMix::Heavy.avg_mpki());
    }
}
