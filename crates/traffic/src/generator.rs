//! Open-loop synthetic traffic generation.

use crate::patterns::SyntheticPattern;
use crate::schedule::LoadSchedule;
use catnap_noc::{MeshDims, MessageClass, PacketDescriptor, PacketId};
use catnap_util::SimRng;

/// Anything that can accept generated packets: the Multi-NoC network
/// interface layer implements this.
pub trait PacketSink {
    /// Current simulation cycle (new packets are stamped with it).
    fn now(&self) -> u64;
    /// Submits a packet to the source queue of `desc.src`.
    fn submit(&mut self, desc: PacketDescriptor);
}

/// A [`PacketSink`] that just collects packets (for tests and trace
/// recording).
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// Collected packets.
    pub packets: Vec<PacketDescriptor>,
    /// The cycle reported to generators.
    pub cycle: u64,
}

impl PacketSink for CollectSink {
    fn now(&self) -> u64 {
        self.cycle
    }
    fn submit(&mut self, desc: PacketDescriptor) {
        self.packets.push(desc);
    }
}

/// Bernoulli per-node packet injectors following a destination pattern and
/// a (possibly time-varying) offered-load schedule.
///
/// Each node independently generates a packet with probability equal to
/// the scheduled rate each cycle, so `rate` is the offered load in packets
/// per node per cycle. The paper uses 512-bit packets for synthetic
/// workloads (Section 4.1).
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    pattern: SyntheticPattern,
    schedule: LoadSchedule,
    packet_bits: u32,
    dims: MeshDims,
    rng: SimRng,
    next_id: u64,
    generated: u64,
}

impl SyntheticWorkload {
    /// Creates a workload with a constant offered load.
    pub fn new(pattern: SyntheticPattern, rate: f64, packet_bits: u32, dims: MeshDims, seed: u64) -> Self {
        SyntheticWorkload::with_schedule(pattern, LoadSchedule::constant(rate), packet_bits, dims, seed)
    }

    /// Creates a workload with a time-varying offered load.
    pub fn with_schedule(
        pattern: SyntheticPattern,
        schedule: LoadSchedule,
        packet_bits: u32,
        dims: MeshDims,
        seed: u64,
    ) -> Self {
        assert!(packet_bits > 0, "packet size must be non-zero");
        SyntheticWorkload {
            pattern,
            schedule,
            packet_bits,
            dims,
            rng: SimRng::seed_from_u64(seed),
            next_id: 0,
            generated: 0,
        }
    }

    /// The destination pattern.
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates this cycle's packets into `sink` (call once per cycle,
    /// before stepping the network).
    pub fn drive<S: PacketSink>(&mut self, sink: &mut S) {
        let cycle = sink.now();
        let rate = self.schedule.rate_at(cycle);
        if rate <= 0.0 {
            return;
        }
        for src in self.dims.nodes() {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let Some(dst) = self.pattern.destination(src, self.dims, &mut self.rng) else {
                continue;
            };
            let desc = PacketDescriptor {
                id: PacketId(self.next_id),
                src,
                dst,
                bits: self.packet_bits,
                class: MessageClass::Synthetic,
                created_cycle: cycle,
            };
            self.next_id += 1;
            self.generated += 1;
            sink.submit(desc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> MeshDims {
        MeshDims::new(8, 8)
    }

    #[test]
    fn generation_rate_close_to_offered() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.1, 512, mesh8(), 11);
        let mut sink = CollectSink::default();
        let cycles = 5000;
        for c in 0..cycles {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        let rate = sink.packets.len() as f64 / (cycles as f64 * 64.0);
        assert!((rate - 0.1).abs() < 0.01, "measured rate {rate}");
        assert_eq!(w.generated() as usize, sink.packets.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.2, 512, mesh8(), seed);
            let mut sink = CollectSink::default();
            for c in 0..100 {
                sink.cycle = c;
                w.drive(&mut sink);
            }
            sink.packets
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn packets_carry_creation_cycle() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::BitComplement, 1.0, 512, mesh8(), 3);
        let mut sink = CollectSink {
            cycle: 77,
            ..Default::default()
        };
        w.drive(&mut sink);
        assert!(!sink.packets.is_empty());
        assert!(sink.packets.iter().all(|p| p.created_cycle == 77));
        assert!(sink.packets.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn schedule_controls_rate_over_time() {
        let sched = LoadSchedule::piecewise(vec![(0, 0.0), (100, 0.5)]);
        let mut w = SyntheticWorkload::with_schedule(SyntheticPattern::UniformRandom, sched, 512, mesh8(), 9);
        let mut sink = CollectSink::default();
        for c in 0..100 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        assert_eq!(sink.packets.len(), 0, "no packets while rate is zero");
        for c in 100..200 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        assert!(sink.packets.len() > 2000, "burst should generate ~3200 packets");
    }

    #[test]
    fn ids_unique() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.5, 512, mesh8(), 1);
        let mut sink = CollectSink::default();
        for c in 0..50 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        let mut ids: Vec<u64> = sink.packets.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sink.packets.len());
    }
}
