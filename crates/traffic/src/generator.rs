//! Open-loop synthetic traffic generation.

use crate::patterns::SyntheticPattern;
use crate::schedule::LoadSchedule;
use catnap_noc::{MeshDims, MessageClass, NodeId, PacketDescriptor, PacketId};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};
use catnap_util::SimRng;
use std::collections::VecDeque;

/// Anything that can accept generated packets: the Multi-NoC network
/// interface layer implements this.
pub trait PacketSink {
    /// Current simulation cycle (new packets are stamped with it).
    fn now(&self) -> u64;
    /// Submits a packet to the source queue of `desc.src`.
    fn submit(&mut self, desc: PacketDescriptor);
}

/// A packet source that can be driven cycle-by-cycle *and* asked when
/// its next packet will arrive, which is what lets
/// `MultiNoc::step_until` fast-forward across provably packet-free
/// stretches.
///
/// The contract binding the two methods: after `drive` has been called
/// with `now() == c`, `next_arrival_cycle(c + 1, limit)` returns the
/// first cycle in `[c + 1, limit)` at which a future `drive` would
/// submit at least one packet, or `limit` if there is none. Sources
/// backed by an RNG may *pre-draw* future cycles to answer — the draws
/// are buffered and replayed by later `drive` calls, so the overall
/// random stream is consumed in exactly the same order as pure
/// cycle-by-cycle driving (the determinism goldens depend on this).
pub trait TrafficSource {
    /// Submits this cycle's packets into `sink` (once per simulated
    /// cycle, before stepping the network).
    fn drive<S: PacketSink>(&mut self, sink: &mut S);

    /// First cycle in `[from, limit)` with an arrival, else `limit`.
    fn next_arrival_cycle(&mut self, from: u64, limit: u64) -> u64;
}

/// A [`TrafficSource`] that never generates anything — for drain phases
/// (`step_until` past the last arrival) and idle-power measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleSource;

impl TrafficSource for IdleSource {
    fn drive<S: PacketSink>(&mut self, _sink: &mut S) {}
    fn next_arrival_cycle(&mut self, _from: u64, limit: u64) -> u64 {
        limit
    }
}

/// An arrival drawn ahead of its simulation cycle by
/// [`SyntheticWorkload::next_arrival_cycle`], waiting for `drive` to
/// submit it. Ids are assigned at submission so `generated()` keeps its
/// "packets handed to the sink" meaning.
#[derive(Clone, Copy, Debug)]
struct PendingArrival {
    cycle: u64,
    src: NodeId,
    dst: NodeId,
}

/// A [`PacketSink`] that just collects packets (for tests and trace
/// recording).
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// Collected packets.
    pub packets: Vec<PacketDescriptor>,
    /// The cycle reported to generators.
    pub cycle: u64,
}

impl PacketSink for CollectSink {
    fn now(&self) -> u64 {
        self.cycle
    }
    fn submit(&mut self, desc: PacketDescriptor) {
        self.packets.push(desc);
    }
}

/// Bernoulli per-node packet injectors following a destination pattern and
/// a (possibly time-varying) offered-load schedule.
///
/// Each node independently generates a packet with probability equal to
/// the scheduled rate each cycle, so `rate` is the offered load in packets
/// per node per cycle. The paper uses 512-bit packets for synthetic
/// workloads (Section 4.1).
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    pattern: SyntheticPattern,
    schedule: LoadSchedule,
    packet_bits: u32,
    dims: MeshDims,
    rng: SimRng,
    next_id: u64,
    generated: u64,
    /// Cycles `< scanned_to` have had their Bernoulli/pattern draws
    /// taken; their arrivals sit in `pending` until driven.
    scanned_to: u64,
    pending: VecDeque<PendingArrival>,
}

impl SyntheticWorkload {
    /// Creates a workload with a constant offered load.
    pub fn new(pattern: SyntheticPattern, rate: f64, packet_bits: u32, dims: MeshDims, seed: u64) -> Self {
        SyntheticWorkload::with_schedule(pattern, LoadSchedule::constant(rate), packet_bits, dims, seed)
    }

    /// Creates a workload with a time-varying offered load.
    pub fn with_schedule(
        pattern: SyntheticPattern,
        schedule: LoadSchedule,
        packet_bits: u32,
        dims: MeshDims,
        seed: u64,
    ) -> Self {
        assert!(packet_bits > 0, "packet size must be non-zero");
        SyntheticWorkload {
            pattern,
            schedule,
            packet_bits,
            dims,
            rng: SimRng::seed_from_u64(seed),
            next_id: 0,
            generated: 0,
            scanned_to: 0,
            pending: VecDeque::new(),
        }
    }

    /// The destination pattern.
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates this cycle's packets into `sink` (call once per cycle,
    /// before stepping the network).
    pub fn drive<S: PacketSink>(&mut self, sink: &mut S) {
        let cycle = sink.now();
        // Cycles the caller never drove generate nothing and draw
        // nothing (the pre-buffering behaviour); skipping over them
        // only happens for cycles `next_arrival_cycle` already scanned.
        if self.scanned_to < cycle {
            self.scanned_to = cycle;
        }
        if self.scanned_to == cycle {
            self.scan_one_cycle();
        }
        while let Some(p) = self.pending.front() {
            if p.cycle > cycle {
                break;
            }
            let p = self.pending.pop_front().expect("front just checked");
            let desc = PacketDescriptor {
                id: PacketId(self.next_id),
                src: p.src,
                dst: p.dst,
                bits: self.packet_bits,
                class: MessageClass::Synthetic,
                created_cycle: p.cycle,
            };
            self.next_id += 1;
            self.generated += 1;
            sink.submit(desc);
        }
    }

    /// Serializes the workload's *position* — RNG stream, id counters,
    /// scan cursor, and pre-drawn pending arrivals — as an opaque blob
    /// for checkpointing (typically stored as the driver section of a
    /// `catnap` checkpoint). The workload *parameters* (pattern,
    /// schedule, packet size, mesh) are part of the job description and
    /// are not serialized; see [`SyntheticWorkload::decode_position`].
    pub fn encode_position(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_u64(self.next_id);
        w.put_u64(self.generated);
        w.put_u64(self.scanned_to);
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_u64(p.cycle);
            w.put_u16(p.src.0);
            w.put_u16(p.dst.0);
        }
        w.into_inner()
    }

    /// Rebuilds a workload at a position saved by
    /// [`SyntheticWorkload::encode_position`]. The caller supplies the
    /// workload parameters; they may legitimately differ from the saving
    /// run *after* the saved cycle — that is what lets one warm-up
    /// checkpoint serve a whole sweep of measurement schedules agreeing
    /// on the warm prefix.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated blob or a position inconsistent
    /// with `dims` (pending arrivals out of range or unsorted).
    pub fn decode_position(
        pattern: SyntheticPattern,
        schedule: LoadSchedule,
        packet_bits: u32,
        dims: MeshDims,
        bytes: &[u8],
    ) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let mut state = [0u64; 4];
        for word in state.iter_mut() {
            *word = r.get_u64()?;
        }
        let mut w = SyntheticWorkload::with_schedule(pattern, schedule, packet_bits, dims, 0);
        w.rng = SimRng::from_state(state);
        w.next_id = r.get_u64()?;
        w.generated = r.get_u64()?;
        w.scanned_to = r.get_u64()?;
        let len = r.get_usize()?;
        if len > (1 << 24) {
            return Err(CodecError::Invalid("implausible pending-arrival count"));
        }
        let nodes = dims.num_nodes() as u16;
        let mut last = 0u64;
        for _ in 0..len {
            let cycle = r.get_u64()?;
            let src = r.get_u16()?;
            let dst = r.get_u16()?;
            if cycle < last || cycle >= w.scanned_to {
                return Err(CodecError::Invalid("pending arrival outside scanned range"));
            }
            if src >= nodes || dst >= nodes {
                return Err(CodecError::Invalid("pending arrival node out of mesh"));
            }
            last = cycle;
            w.pending.push_back(PendingArrival {
                cycle,
                src: NodeId(src),
                dst: NodeId(dst),
            });
        }
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in workload position"));
        }
        Ok(w)
    }

    /// Takes cycle `self.scanned_to`'s random draws — in exactly the
    /// order the pre-buffering `drive` loop used to take them inline —
    /// and buffers any resulting arrivals.
    fn scan_one_cycle(&mut self) {
        let cycle = self.scanned_to;
        self.scanned_to += 1;
        let rate = self.schedule.rate_at(cycle);
        if rate <= 0.0 {
            return;
        }
        for src in self.dims.nodes() {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let Some(dst) = self.pattern.destination(src, self.dims, &mut self.rng) else {
                continue;
            };
            self.pending.push_back(PendingArrival { cycle, src, dst });
        }
    }
}

impl TrafficSource for SyntheticWorkload {
    fn drive<S: PacketSink>(&mut self, sink: &mut S) {
        SyntheticWorkload::drive(self, sink);
    }

    fn next_arrival_cycle(&mut self, from: u64, limit: u64) -> u64 {
        // Arrivals already drawn (pending is sorted by cycle): a
        // stale entry below `from` is still an arrival the next `drive`
        // will submit, so it counts as "now".
        if let Some(p) = self.pending.front() {
            return p.cycle.max(from).min(limit);
        }
        while self.scanned_to < limit {
            let scanned = self.scanned_to;
            self.scan_one_cycle();
            if !self.pending.is_empty() {
                return scanned.max(from);
            }
        }
        limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> MeshDims {
        MeshDims::new(8, 8)
    }

    #[test]
    fn generation_rate_close_to_offered() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.1, 512, mesh8(), 11);
        let mut sink = CollectSink::default();
        let cycles = 5000;
        for c in 0..cycles {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        let rate = sink.packets.len() as f64 / (cycles as f64 * 64.0);
        assert!((rate - 0.1).abs() < 0.01, "measured rate {rate}");
        assert_eq!(w.generated() as usize, sink.packets.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.2, 512, mesh8(), seed);
            let mut sink = CollectSink::default();
            for c in 0..100 {
                sink.cycle = c;
                w.drive(&mut sink);
            }
            sink.packets
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn packets_carry_creation_cycle() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::BitComplement, 1.0, 512, mesh8(), 3);
        let mut sink = CollectSink {
            cycle: 77,
            ..Default::default()
        };
        w.drive(&mut sink);
        assert!(!sink.packets.is_empty());
        assert!(sink.packets.iter().all(|p| p.created_cycle == 77));
        assert!(sink.packets.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn schedule_controls_rate_over_time() {
        let sched = LoadSchedule::piecewise(vec![(0, 0.0), (100, 0.5)]);
        let mut w = SyntheticWorkload::with_schedule(SyntheticPattern::UniformRandom, sched, 512, mesh8(), 9);
        let mut sink = CollectSink::default();
        for c in 0..100 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        assert_eq!(sink.packets.len(), 0, "no packets while rate is zero");
        for c in 100..200 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        assert!(sink.packets.len() > 2000, "burst should generate ~3200 packets");
    }

    #[test]
    fn next_arrival_prescan_preserves_rng_order() {
        // Interleaving next_arrival_cycle lookahead with drive must
        // yield exactly the stream pure per-cycle driving yields.
        let mk = || SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.01, 512, mesh8(), 42);
        let mut plain = mk();
        let mut plain_sink = CollectSink::default();
        for c in 0..4000 {
            plain_sink.cycle = c;
            plain.drive(&mut plain_sink);
        }
        let mut skippy = mk();
        let mut skip_sink = CollectSink::default();
        let mut c = 0u64;
        while c < 4000 {
            skip_sink.cycle = c;
            skippy.drive(&mut skip_sink);
            // Jump straight to the next arrival, like step_until does.
            c = TrafficSource::next_arrival_cycle(&mut skippy, c + 1, 4000);
        }
        assert_eq!(skip_sink.packets, plain_sink.packets);
        assert_eq!(skippy.generated(), plain.generated());
    }

    #[test]
    fn next_arrival_zero_rate_is_limit() {
        let sched = LoadSchedule::piecewise(vec![(0, 0.0), (500, 0.9)]);
        let mut w = SyntheticWorkload::with_schedule(SyntheticPattern::UniformRandom, sched, 512, mesh8(), 9);
        assert_eq!(w.next_arrival_cycle(0, 400), 400, "no draws before the burst");
        assert_eq!(
            w.next_arrival_cycle(0, 501),
            500,
            "burst at 0.9/node fires on its first cycle"
        );
        let mut w2 = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.0, 512, mesh8(), 9);
        assert_eq!(w2.next_arrival_cycle(7, 1_000_000), 1_000_000);
    }

    #[test]
    fn idle_source_never_arrives() {
        let mut idle = IdleSource;
        assert_eq!(idle.next_arrival_cycle(3, 99), 99);
        let mut sink = CollectSink::default();
        TrafficSource::drive(&mut idle, &mut sink);
        assert!(sink.packets.is_empty());
    }

    #[test]
    fn position_round_trip_mid_lookahead_is_bit_identical() {
        // Capture the position at an awkward spot: after a lookahead has
        // pre-drawn arrivals into `pending`, so every field is non-trivial.
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.05, 512, mesh8(), 42);
        let mut sink = CollectSink::default();
        for c in 0..200 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        let next = TrafficSource::next_arrival_cycle(&mut w, 200, 400);
        assert!(next < 400, "0.05/node load should arrive well before 400");
        assert!(!w.pending.is_empty());

        let blob = w.encode_position();
        let mut restored = SyntheticWorkload::decode_position(
            SyntheticPattern::UniformRandom,
            LoadSchedule::constant(0.05),
            512,
            mesh8(),
            &blob,
        )
        .unwrap();

        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        for c in 200..600 {
            a.cycle = c;
            b.cycle = c;
            w.drive(&mut a);
            restored.drive(&mut b);
        }
        assert_eq!(a.packets, b.packets);
        assert_eq!(w.generated(), restored.generated());

        // Corruption is rejected, not misparsed.
        let mut bad = blob.clone();
        let last = bad.len() - 2;
        bad[last] = 0xff; // pending dst -> out of mesh
        assert!(SyntheticWorkload::decode_position(
            SyntheticPattern::UniformRandom,
            LoadSchedule::constant(0.05),
            512,
            mesh8(),
            &bad
        )
        .is_err());
    }

    #[test]
    fn ids_unique() {
        let mut w = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.5, 512, mesh8(), 1);
        let mut sink = CollectSink::default();
        for c in 0..50 {
            sink.cycle = c;
            w.drive(&mut sink);
        }
        let mut ids: Vec<u64> = sink.packets.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sink.packets.len());
    }
}
