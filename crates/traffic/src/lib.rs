#![warn(missing_docs)]

//! # catnap-traffic
//!
//! Traffic generation for NoC simulation:
//!
//! * [`SyntheticPattern`] — the paper's synthetic patterns (uniform
//!   random, transpose, bit complement) plus common extras.
//! * [`SyntheticWorkload`] — open-loop Bernoulli injectors with a
//!   time-varying [`LoadSchedule`] for the bursty experiments (Fig. 12).
//! * [`workload`] — the catalog of the paper's 35 applications and the
//!   four multiprogrammed mixes of Table 3, as synthetic per-benchmark
//!   memory-behaviour parameters (the documented substitution for the
//!   paper's Pin traces; see DESIGN.md §3).
//! * [`trace`] — a JSON-lines trace format so workloads can be recorded
//!   and replayed deterministically.

pub mod generator;
pub mod patterns;
pub mod schedule;
pub mod trace;
pub mod workload;

pub use generator::{IdleSource, PacketSink, SyntheticWorkload, TrafficSource};
pub use patterns::SyntheticPattern;
pub use schedule::LoadSchedule;
pub use workload::{Benchmark, WorkloadMix};
