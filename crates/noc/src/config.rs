//! Network and power-gating configuration.

use crate::geometry::MeshDims;

/// Timing and energy parameters of runtime power gating, as determined by
/// the paper's SPICE analysis (Section 4.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GatingConfig {
    /// Cycles to charge a gated router back up to Vdd (paper: 10 cycles for
    /// a 128-bit router at 2 GHz; 3 of them hidden by look-ahead wake-up).
    pub t_wakeup: u32,
    /// Sleep-period length (cycles of saved leakage) at which a sleep
    /// transition breaks even with the energy cost of switching the sleep
    /// transistor and recharging decoupling capacitance (paper: 12 cycles).
    pub t_breakeven: u32,
    /// Consecutive empty-buffer cycles required before the buffer-empty
    /// condition is considered true (paper: 4 cycles).
    pub t_idle_detect: u32,
}

impl GatingConfig {
    /// The paper's SPICE-derived values.
    pub fn paper() -> Self {
        GatingConfig {
            t_wakeup: 10,
            t_breakeven: 12,
            t_idle_detect: 4,
        }
    }
}

impl Default for GatingConfig {
    fn default() -> Self {
        GatingConfig::paper()
    }
}

/// Static configuration of one physical network (one subnet).
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Mesh dimensions (paper: 8x8 concentrated mesh for 256 cores, 4x4 for
    /// 64 cores).
    pub dims: MeshDims,
    /// Virtual channels per input port (paper: 4).
    pub vcs_per_port: usize,
    /// Buffer depth per virtual channel, in flits (paper: 4; constant
    /// across subnet widths because flits shrink with the datapath).
    pub vc_depth: usize,
    /// Datapath / link width in bits (512 for the Single-NoC, 128 per
    /// subnet in the four-subnet Multi-NoC).
    pub link_width_bits: u32,
    /// Power-gating timing parameters.
    pub gating: GatingConfig,
    /// If false, sleep requests are ignored: the network is always on
    /// (baselines without power gating).
    pub gating_enabled: bool,
    /// Fine-grained per-input-port gating (Matsutani et al., TCAD '11)
    /// instead of whole-router gating: each input port's buffers and
    /// incoming link gate independently while crossbar/control/clock stay
    /// powered. Requires `gating_enabled`.
    pub port_gating: bool,
}

impl NetworkConfig {
    /// A 512-bit Single-NoC subnet on an 8x8 mesh (the paper's 1NT-512b).
    pub fn single_noc_512b() -> Self {
        NetworkConfig::with_width(512)
    }

    /// A 128-bit under-provisioned Single-NoC (the paper's 1NT-128b).
    pub fn single_noc_128b() -> Self {
        NetworkConfig::with_width(128)
    }

    /// One 128-bit subnet of the paper's four-subnet Multi-NoC (4NT-128b).
    pub fn catnap_subnet_128b() -> Self {
        NetworkConfig::with_width(128)
    }

    /// An 8x8 mesh subnet with the paper's router parameters and the given
    /// datapath width.
    pub fn with_width(link_width_bits: u32) -> Self {
        NetworkConfig {
            dims: MeshDims::new(8, 8),
            vcs_per_port: 4,
            vc_depth: 4,
            link_width_bits,
            gating: GatingConfig::paper(),
            gating_enabled: false,
            port_gating: false,
        }
    }

    /// Builder-style: sets mesh dimensions.
    pub fn dims(mut self, dims: MeshDims) -> Self {
        self.dims = dims;
        self
    }

    /// Builder-style: enables or disables power gating.
    pub fn gating_enabled(mut self, enabled: bool) -> Self {
        self.gating_enabled = enabled;
        self
    }

    /// Builder-style: switches to fine-grained per-port gating.
    pub fn port_gating(mut self, enabled: bool) -> Self {
        self.port_gating = enabled;
        self
    }

    /// Builder-style: sets VC count and depth.
    pub fn buffers(mut self, vcs: usize, depth: usize) -> Self {
        self.vcs_per_port = vcs;
        self.vc_depth = depth;
        self
    }

    /// Maximum occupancy of one input port, in flits.
    pub fn port_capacity_flits(&self) -> usize {
        self.vcs_per_port * self.vc_depth
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vcs_per_port == 0 || self.vcs_per_port > 64 {
            return Err(format!("vcs_per_port must be in 1..=64, got {}", self.vcs_per_port));
        }
        if self.vc_depth == 0 {
            return Err("vc_depth must be non-zero".to_string());
        }
        if self.vc_depth > crate::vc::MAX_VC_DEPTH {
            return Err(format!(
                "vc_depth {} exceeds the inline VC ring capacity {}",
                self.vc_depth,
                crate::vc::MAX_VC_DEPTH
            ));
        }
        if self.link_width_bits == 0 {
            return Err("link_width_bits must be non-zero".to_string());
        }
        if self.dims.num_nodes() < 2 {
            return Err("mesh must have at least two nodes".to_string());
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::single_noc_512b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gating_constants() {
        let g = GatingConfig::paper();
        assert_eq!(g.t_wakeup, 10);
        assert_eq!(g.t_breakeven, 12);
        assert_eq!(g.t_idle_detect, 4);
    }

    #[test]
    fn presets_have_paper_router_params() {
        for cfg in [
            NetworkConfig::single_noc_512b(),
            NetworkConfig::single_noc_128b(),
            NetworkConfig::catnap_subnet_128b(),
        ] {
            assert_eq!(cfg.dims, MeshDims::new(8, 8));
            assert_eq!(cfg.vcs_per_port, 4);
            assert_eq!(cfg.vc_depth, 4);
            assert_eq!(cfg.port_capacity_flits(), 16);
            cfg.validate().unwrap();
        }
        assert_eq!(NetworkConfig::single_noc_512b().link_width_bits, 512);
        assert_eq!(NetworkConfig::catnap_subnet_128b().link_width_bits, 128);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(NetworkConfig::with_width(512).buffers(0, 4).validate().is_err());
        assert!(NetworkConfig::with_width(512).buffers(4, 0).validate().is_err());
        let mut cfg = NetworkConfig::with_width(512);
        cfg.link_width_bits = 0;
        assert!(cfg.validate().is_err());
        let one = NetworkConfig::with_width(512).dims(MeshDims::new(1, 1));
        assert!(one.validate().is_err());
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = NetworkConfig::with_width(256)
            .dims(MeshDims::new(4, 4))
            .gating_enabled(true)
            .buffers(2, 8);
        assert_eq!(cfg.link_width_bits, 256);
        assert_eq!(cfg.dims.num_nodes(), 16);
        assert!(cfg.gating_enabled);
        assert_eq!(cfg.port_capacity_flits(), 16);
    }
}
