//! Input-buffered virtual-channel router with a speculative two-stage
//! pipeline and a power-gating state machine.
//!
//! Pipeline (Peh & Dally, HPCA '01 style, with look-ahead routing):
//!
//! * **Stage 1 — VA + SA**: the packet at the head of an input VC already
//!   knows its output port (carried by the head flit via look-ahead
//!   routing). It speculatively performs virtual-channel allocation and
//!   switch allocation in the same cycle. Allocation is separable: each
//!   input port nominates one VC (round-robin), then each output port
//!   grants one input port (round-robin).
//! * **Stage 2 — ST**: granted flits traverse the crossbar and are placed
//!   on the output links; they arrive in the downstream router's input
//!   buffer after one link cycle.
//!
//! Wormhole switching: the head flit allocates one VC at the downstream
//! input port and the packet holds it until the tail flit departs.
//! Credit-based flow control: one credit per downstream buffer slot,
//! returned when the downstream router dequeues a flit.

use crate::checkpoint;
use crate::flit::Flit;
use crate::geometry::{NodeId, Port, NUM_PORTS};
use crate::power_state::{PowerState, PowerStateMachine, ResidencySnapshot, WakeReason};
use crate::stats::{GatingActivity, RouterActivity};
use crate::vc::{Binding, InputVc};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// Snapshot of all router state `idle_tick` can touch; two routers that
/// compare equal here are indistinguishable to the gating layer. Used
/// by the debug-mode shadow replay of [`Router::fast_forward`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouterPowerFingerprint {
    /// Whole-router power-state machine.
    pub psm: ResidencySnapshot,
    /// Consecutive drained cycles.
    pub idle_cycles: u32,
    /// Per-port idle counters.
    pub port_idle: [u32; NUM_PORTS],
    /// Per-port machines when port gating is enabled.
    pub port_psm: Option<Vec<ResidencySnapshot>>,
}

/// A flit leaving a router through a mesh output port, to be delivered to
/// the downstream router after the link cycle.
#[derive(Clone, Copy, Debug)]
pub struct OutboundFlit {
    /// Output port the flit leaves through (never [`Port::Local`]).
    pub out_port: Port,
    /// The flit (with `vc` set to the downstream VC).
    pub flit: Flit,
}

/// A credit returned to the upstream router across an input port.
#[derive(Clone, Copy, Debug)]
pub struct CreditReturn {
    /// The input port of *this* router the dequeued flit arrived on
    /// (never [`Port::Local`]).
    pub in_port: Port,
    /// The VC the flit occupied.
    pub vc: u8,
}

/// Result of one router cycle: flits that left, flits ejected locally, and
/// credits to return upstream.
#[derive(Clone, Debug, Default)]
pub struct RouterOutput {
    /// Flits placed on mesh links this cycle.
    pub outbound: Vec<OutboundFlit>,
    /// Flits ejected through the local port.
    pub ejected: Vec<Flit>,
    /// Credits to return to upstream routers.
    pub credits: Vec<CreditReturn>,
    /// Wake-up signals to send to neighbours (look-ahead wake, Matsutani
    /// ASP-DAC '08): directions in which a head flit will travel next.
    pub wake_pings: Vec<Port>,
}

impl RouterOutput {
    fn clear(&mut self) {
        self.outbound.clear();
        self.ejected.clear();
        self.credits.clear();
        self.wake_pings.clear();
    }
}

/// One mesh router.
#[derive(Clone, Debug)]
pub struct Router {
    node: NodeId,
    vcs: usize,
    vc_depth: usize,
    /// Input VC buffers, flattened `[port][vc]`.
    inputs: Vec<InputVc>,
    /// Which ports have a physical link (edge routers have fewer).
    connected: [bool; NUM_PORTS],
    /// Per output port, bitmask of downstream VCs currently allocated to a
    /// packet of this router.
    out_owned: [u64; NUM_PORTS],
    /// Credits per output port per downstream VC, flattened. Unused for
    /// [`Port::Local`].
    credits: Vec<u16>,
    /// Crossbar pipeline register: flits granted in stage 1 last cycle,
    /// traversing the switch this cycle. At most one per input port.
    xbar_reg: Vec<(Flit, Port)>,
    /// Round-robin pointer per input port for input-side SA.
    in_rr: [usize; NUM_PORTS],
    /// Round-robin pointer per output port for output-side SA.
    out_rr: [usize; NUM_PORTS],
    /// Round-robin pointer per output port for VC allocation.
    vc_rr: [usize; NUM_PORTS],
    psm: PowerStateMachine,
    /// Consecutive cycles with empty buffers and an empty crossbar register.
    idle_cycles: u32,
    t_idle_detect: u32,
    t_wakeup: u32,
    t_breakeven: u32,
    /// Fine-grained port gating (Matsutani et al., TCAD '11): per-input-
    /// port power-state machines and idle counters. `None` = whole-router
    /// granularity only.
    port_psm: Option<Vec<PowerStateMachine>>,
    port_idle: [u32; NUM_PORTS],
    /// Total flits currently buffered across all input VCs (kept in sync
    /// by `deliver`/`allocate` so drain checks are O(1)).
    buffered: u32,
    /// Flits buffered per input port (same invariant, per port).
    port_occ: [u32; NUM_PORTS],
    /// Per input port, bitmask of non-empty VCs. The `InputVc` rings
    /// store flits inline and are large; these masks (with
    /// `vc_bound`/`bind_cache` below) let the allocator skip empty and
    /// unbound VCs without touching their cache-cold storage. Kept in
    /// sync by the `push_input`/`pop_input` wrappers.
    vc_nonempty: [u64; NUM_PORTS],
    /// Per input port, bitmask of VCs holding a wormhole binding
    /// (maintained by `bind_input`/`unbind_input`).
    vc_bound: [u64; NUM_PORTS],
    /// Dense mirror of each VC's binding, valid iff its `vc_bound` bit
    /// is set, so switch arbitration reads two bytes per request
    /// instead of the VC struct.
    bind_cache: Vec<Binding>,
    /// Event counters for the power model.
    pub activity: RouterActivity,
}

impl Router {
    /// Creates a router.
    ///
    /// `connected[p]` tells whether port `p` has a link (the local port must
    /// always be connected).
    pub fn new(
        node: NodeId,
        vcs: usize,
        vc_depth: usize,
        connected: [bool; NUM_PORTS],
        t_wakeup: u32,
        t_breakeven: u32,
        t_idle_detect: u32,
    ) -> Self {
        assert!(vcs > 0 && vcs <= 64, "vcs must be in 1..=64");
        assert!(connected[Port::Local.index()], "local port must be connected");
        let inputs = (0..NUM_PORTS * vcs).map(|_| InputVc::new(vc_depth)).collect();
        Router {
            node,
            vcs,
            vc_depth,
            inputs,
            connected,
            out_owned: [0; NUM_PORTS],
            credits: vec![vc_depth as u16; NUM_PORTS * vcs],
            xbar_reg: Vec::with_capacity(NUM_PORTS),
            in_rr: [0; NUM_PORTS],
            out_rr: [0; NUM_PORTS],
            vc_rr: [0; NUM_PORTS],
            psm: PowerStateMachine::new(t_wakeup, t_breakeven),
            idle_cycles: 0,
            t_idle_detect,
            t_wakeup,
            t_breakeven,
            port_psm: None,
            port_idle: [0; NUM_PORTS],
            buffered: 0,
            port_occ: [0; NUM_PORTS],
            vc_nonempty: [0; NUM_PORTS],
            vc_bound: [0; NUM_PORTS],
            bind_cache: vec![
                Binding {
                    out_port: Port::Local,
                    out_vc: 0,
                };
                NUM_PORTS * vcs
            ],
            activity: RouterActivity::default(),
        }
    }

    /// Enables fine-grained per-input-port power gating: each input port
    /// (buffers plus incoming link) has its own power-state machine; the
    /// crossbar, control and clock stay powered. The policy layer uses
    /// either this or whole-router gating, never both.
    pub fn enable_port_gating(&mut self) {
        let (tw, tb) = (self.t_wakeup, self.t_breakeven);
        self.port_psm = Some((0..NUM_PORTS).map(|_| PowerStateMachine::new(tw, tb)).collect());
    }

    /// Whether per-port gating is enabled.
    pub fn port_gating(&self) -> bool {
        self.port_psm.is_some()
    }

    /// Whether `port` can receive flits this cycle (its buffers are
    /// powered). With whole-router granularity this is the router state.
    pub fn port_active(&self, port: Port) -> bool {
        match &self.port_psm {
            Some(psms) => self.psm.state().is_active() && psms[port.index()].state().is_active(),
            None => self.psm.state().is_active(),
        }
    }

    /// [`Router::port_active`] for all ports at once, as a bitmask over
    /// port indices. The network caches these masks densely so a
    /// stepping router reads its four neighbours' acceptance state
    /// without touching their (cache-cold) structs.
    pub fn port_active_mask(&self) -> u8 {
        if !self.psm.state().is_active() {
            return 0;
        }
        match &self.port_psm {
            Some(psms) => {
                let mut mask = 0u8;
                for (i, p) in psms.iter().enumerate() {
                    mask |= u8::from(p.state().is_active()) << i;
                }
                mask
            }
            None => (1u8 << NUM_PORTS) - 1,
        }
    }

    /// [`Router::port_active_mask`] as it will read **after** this
    /// router's next [`Router::step`]/idle tick, assuming no external
    /// wake request lands mid-cycle. The sharded stepper precomputes
    /// these for every router scheduled to run this cycle, so a shard
    /// can read a neighbour's post-tick acceptance mask without
    /// observing (or racing on) the neighbour's struct. Exact whenever
    /// wake-up countdowns take ≥ 2 cycles: the only self-induced
    /// mid-cycle mask change is then a countdown completing, which this
    /// replicates via [`PowerStateMachine::state_after_tick`].
    pub fn port_active_mask_after_tick(&self) -> u8 {
        if !self.psm.state_after_tick().is_active() {
            return 0;
        }
        match &self.port_psm {
            Some(psms) => {
                let mut mask = 0u8;
                for (i, p) in psms.iter().enumerate() {
                    mask |= u8::from(p.state_after_tick().is_active()) << i;
                }
                mask
            }
            None => (1u8 << NUM_PORTS) - 1,
        }
    }

    /// Power state of one input port (port-gating mode) or of the whole
    /// router.
    pub fn port_power_state(&self, port: Port) -> PowerState {
        match &self.port_psm {
            Some(psms) => psms[port.index()].state(),
            None => self.psm.state(),
        }
    }

    /// Requests a wake-up of one input port (no-op without port gating or
    /// unless that port sleeps).
    pub fn request_wake_port(&mut self, port: Port, cycle: u64, reason: WakeReason) {
        if let Some(psms) = &mut self.port_psm {
            psms[port.index()].request_wake(cycle, reason);
        }
    }

    /// Whether one input port satisfies the local sleep guard: empty for
    /// `t_idle_detect` cycles, no open wormhole binding on any of its VCs
    /// (a packet may still have flits upstream of the router — e.g. in
    /// the NI — while the buffer is momentarily empty), and port gating
    /// enabled.
    pub fn port_sleep_guard_ok(&self, port: Port) -> bool {
        let Some(psms) = &self.port_psm else { return false };
        psms[port.index()].state().is_active()
            && self.port_idle[port.index()] >= self.t_idle_detect
            && (0..self.vcs).all(|v| {
                let slot = self.input(port, v);
                slot.is_empty() && slot.binding().is_none()
            })
    }

    /// Lag-aware variant of [`Router::port_sleep_guard_ok`] (see
    /// [`Router::sleep_guard_ok_lagged`]): per-port idle counters advance
    /// every deferred cycle too (the router machine stays active in
    /// port-gating mode), so the deferred stretch is credited directly.
    pub fn port_sleep_guard_ok_lagged(&self, port: Port, lag: u64) -> bool {
        let Some(psms) = &self.port_psm else { return false };
        psms[port.index()].state().is_active()
            && self.port_idle[port.index()] as u64 + lag >= self.t_idle_detect as u64
            && (0..self.vcs).all(|v| {
                let slot = self.input(port, v);
                slot.is_empty() && slot.binding().is_none()
            })
    }

    /// Ticks until the earliest pending wake-up countdown (the router's
    /// machine or any gated port's) completes: after exactly that many
    /// idle ticks the machine reaches Active. `None` when no countdown is
    /// pending — Sleep and Active are stable indefinitely under idle
    /// ticks, so a deferred router in those classes needs no wakeup-queue
    /// entry.
    pub fn next_wake_completion(&self) -> Option<u64> {
        let mut due: Option<u64> = None;
        let fold = |stable: Option<u64>, due: &mut Option<u64>| {
            if let Some(s) = stable {
                let d = s + 1;
                *due = Some(due.map_or(d, |x| x.min(d)));
            }
        };
        fold(self.psm.stable_ticks(), &mut due);
        if let Some(psms) = &self.port_psm {
            for p in psms {
                fold(p.stable_ticks(), &mut due);
            }
        }
        due
    }

    /// Gates one input port.
    ///
    /// # Panics
    ///
    /// Panics if the guard does not hold or port gating is disabled.
    pub fn enter_port_sleep(&mut self, port: Port, cycle: u64) {
        assert!(self.port_sleep_guard_ok(port), "port sleep guard violated");
        self.port_psm
            .as_mut()
            .expect("port gating enabled")
            .get_mut(port.index())
            .expect("valid port")
            .enter_sleep(cycle);
    }

    /// This router's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.psm.state()
    }

    /// Current power state as the telemetry-side phase (the wake-up
    /// countdown erased).
    pub fn power_phase(&self) -> catnap_telemetry::PowerPhase {
        self.psm.state().into()
    }

    /// Virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// VC buffer depth in flits.
    pub fn vc_depth(&self) -> usize {
        self.vc_depth
    }

    fn input(&self, port: Port, vc: usize) -> &InputVc {
        &self.inputs[port.index() * self.vcs + vc]
    }

    /// Enqueues into `(port index, vc)`, maintaining the non-empty mask.
    /// All input-buffer mutation goes through these wrappers so the
    /// masks and the binding mirror never drift from the rings.
    #[inline]
    fn push_input(&mut self, pi: usize, vc: usize, flit: Flit) {
        self.inputs[pi * self.vcs + vc].push(flit);
        self.vc_nonempty[pi] |= 1u64 << vc;
    }

    /// Dequeues from `(port index, vc)`, maintaining the non-empty mask.
    #[inline]
    fn pop_input(&mut self, pi: usize, vc: usize) -> Option<Flit> {
        let slot = &mut self.inputs[pi * self.vcs + vc];
        let flit = slot.pop();
        if slot.is_empty() {
            self.vc_nonempty[pi] &= !(1u64 << vc);
        }
        flit
    }

    /// Binds `(port index, vc)`, maintaining the bound mask and mirror.
    #[inline]
    fn bind_input(&mut self, pi: usize, vc: usize, binding: Binding) {
        self.inputs[pi * self.vcs + vc].bind(binding);
        self.vc_bound[pi] |= 1u64 << vc;
        self.bind_cache[pi * self.vcs + vc] = binding;
    }

    /// Unbinds `(port index, vc)`, maintaining the bound mask.
    #[inline]
    fn unbind_input(&mut self, pi: usize, vc: usize) {
        self.inputs[pi * self.vcs + vc].unbind();
        self.vc_bound[pi] &= !(1u64 << vc);
    }

    /// Total flits buffered at one input port (across its VCs).
    pub fn port_occupancy(&self, port: Port) -> usize {
        self.port_occ[port.index()] as usize
    }

    /// Maximum input-port occupancy, in flits: the paper's **BFM** local
    /// congestion metric (Section 3.2.1). Disconnected ports never
    /// receive flits, so the max over all five counters equals the max
    /// over connected ports.
    pub fn max_port_occupancy(&self) -> usize {
        let mut max = 0u32;
        for &occ in &self.port_occ {
            max = max.max(occ);
        }
        max as usize
    }

    /// Mean input-port occupancy over connected ports, in flits: the
    /// paper's **BFA** alternative metric (Section 3.4.2).
    pub fn avg_port_occupancy(&self) -> f64 {
        let ports: Vec<Port> = Port::ALL.iter().copied().filter(|p| self.connected[p.index()]).collect();
        if ports.is_empty() {
            return 0.0;
        }
        let total: usize = ports.iter().map(|&p| self.port_occupancy(p)).sum();
        total as f64 / ports.len() as f64
    }

    /// Free slots in a local-port VC (used by the network interface for
    /// injection).
    pub fn local_vc_free_space(&self, vc: usize) -> usize {
        self.input(Port::Local, vc).free_space()
    }

    /// Whether all input buffers and the crossbar register are empty.
    pub fn is_drained(&self) -> bool {
        debug_assert_eq!(
            self.buffered as usize,
            self.inputs.iter().map(InputVc::len).sum::<usize>(),
            "buffered-flit counter out of sync at {}",
            self.node
        );
        self.buffered == 0 && self.xbar_reg.is_empty()
    }

    /// Flits currently inside the router (input buffers plus the crossbar
    /// pipeline register).
    pub fn occupancy(&self) -> usize {
        self.buffered as usize + self.xbar_reg.len()
    }

    /// Whether the buffer-empty condition has held for `t_idle_detect`
    /// consecutive cycles (paper Section 3.3).
    pub fn idle_long_enough(&self) -> bool {
        self.idle_cycles >= self.t_idle_detect
    }

    /// Bitmask over mesh ports of outputs with at least one downstream VC
    /// currently allocated (an open wormhole towards that neighbour).
    pub fn outbound_binding_ports(&self) -> [bool; NUM_PORTS] {
        let mut mask = [false; NUM_PORTS];
        for p in Port::ALL {
            mask[p.index()] = self.out_owned[p.index()] != 0;
        }
        mask
    }

    /// Whether the crossbar register holds a flit headed out of `port`.
    pub fn xbar_holds_toward(&self, port: Port) -> bool {
        self.xbar_reg.iter().any(|(_, p)| *p == port)
    }

    /// Number of flits in the crossbar pipeline register.
    pub fn xbar_len(&self) -> usize {
        self.xbar_reg.len()
    }

    /// Delivers an arriving flit into the input buffer `(port, flit.vc)`.
    /// Returns the direction to send a look-ahead wake-up ping, if the flit
    /// is a head flit bound for a mesh neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the router is not active (the flow-control protocol never
    /// delivers flits to gated routers) or on buffer overflow.
    pub fn deliver(&mut self, port: Port, flit: Flit) -> Option<Port> {
        assert!(
            self.port_active(port),
            "flit delivered to non-active router/port {} {port} (protocol violation)",
            self.node
        );
        let vc = flit.vc as usize;
        assert!(vc < self.vcs, "flit VC out of range");
        let ping = (flit.kind.is_head() && flit.lookahead != Port::Local).then_some(flit.lookahead);
        self.push_input(port.index(), vc, flit);
        self.buffered += 1;
        self.port_occ[port.index()] += 1;
        self.activity.buffer_writes += 1;
        self.idle_cycles = 0;
        self.port_idle[port.index()] = 0;
        ping
    }

    /// Returns one credit for `(out_port, vc)` (the downstream router
    /// dequeued a flit).
    pub fn return_credit(&mut self, out_port: Port, vc: u8) {
        let idx = out_port.index() * self.vcs + vc as usize;
        self.credits[idx] += 1;
        debug_assert!(
            self.credits[idx] as usize <= self.vc_depth,
            "credit overflow on {}:{:?}",
            self.node,
            out_port
        );
    }

    /// Requests a wake-up (no-op unless sleeping).
    pub fn request_wake(&mut self, cycle: u64, reason: WakeReason) {
        self.psm.request_wake(cycle, reason);
    }

    /// Whether the router-local sleep guard holds: active, drained, and
    /// idle for long enough. The network adds link-level conditions (no
    /// inbound wormholes or in-flight flits) before actually gating.
    /// Whole-router gating is unavailable when per-port gating is in use.
    pub fn sleep_guard_ok(&self) -> bool {
        self.port_psm.is_none() && self.psm.state().is_active() && self.is_drained() && self.idle_long_enough()
    }

    /// Lag-aware variant of [`Router::sleep_guard_ok`] for the event
    /// scheduler: credits `lag` additional drained-Active cycles that the
    /// scheduler has deferred but not yet materialized into
    /// `idle_cycles`. Exact because a deferred router is drained and its
    /// power-state class cannot change across the deferred stretch, so
    /// every deferred cycle would have incremented the idle counter.
    pub fn sleep_guard_ok_lagged(&self, lag: u64) -> bool {
        self.port_psm.is_none()
            && self.psm.state().is_active()
            && self.is_drained()
            && self.idle_cycles as u64 + lag >= self.t_idle_detect as u64
    }

    /// Gates the router. The caller must have checked [`Router::sleep_guard_ok`]
    /// and the network-level inbound conditions.
    ///
    /// # Panics
    ///
    /// Panics if the guard does not hold.
    pub fn enter_sleep(&mut self, cycle: u64) {
        assert!(self.sleep_guard_ok(), "sleep guard violated for {}", self.node);
        self.psm.enter_sleep(cycle);
    }

    /// One cycle of router operation. `neighbor_active[p]` tells whether
    /// the router across output port `p` can accept flits this cycle
    /// (`true` for the local port).
    ///
    /// Outputs are written into `out` (cleared first).
    pub fn step(&mut self, neighbor_active: &[bool; NUM_PORTS], out: &mut RouterOutput) {
        out.clear();
        if self.psm.state().is_active() {
            self.switch_traversal(out);
            self.allocate(neighbor_active, out);
            self.update_idle_counters();
        }
        self.tick_power();
    }

    /// [`Router::step`] through the *reference* allocator: the original
    /// scan-everything stage-1 implementation, kept verbatim as an
    /// independent code path. The forced-full-step mode of the network
    /// uses it, so the differential suite compares two genuinely
    /// distinct allocators (an optimization bug in [`Router::step`]
    /// cannot cancel out against itself) and the full-step benchmark
    /// baseline stays the naive per-cycle walk.
    pub fn step_reference(&mut self, neighbor_active: &[bool; NUM_PORTS], out: &mut RouterOutput) {
        out.clear();
        if self.psm.state().is_active() {
            self.switch_traversal(out);
            self.allocate_reference(neighbor_active, out);
            self.update_idle_counters();
        }
        self.tick_power();
    }

    /// Idle detection after the move stages: buffers and pipeline empty
    /// this cycle.
    fn update_idle_counters(&mut self) {
        if self.is_drained() {
            self.idle_cycles = self.idle_cycles.saturating_add(1);
        } else {
            self.idle_cycles = 0;
        }
        for pi in 0..NUM_PORTS {
            if self.port_occ[pi] == 0 {
                self.port_idle[pi] = self.port_idle[pi].saturating_add(1);
            } else {
                self.port_idle[pi] = 0;
            }
        }
    }

    /// Advances the power-state machines by one tick.
    fn tick_power(&mut self) {
        let was_active = self.psm.state().is_active();
        self.psm.tick();
        if !was_active && self.psm.state().is_active() {
            // A freshly woken router must stay up long enough for the
            // in-flight flit that caused the wake-up to arrive; otherwise
            // an eager gating controller could re-gate it instantly and
            // strand the packet (the wake ping is one-shot).
            self.idle_cycles = 0;
        }
        if let Some(psms) = &mut self.port_psm {
            for (i, p) in psms.iter_mut().enumerate() {
                let was = p.state().is_active();
                p.tick();
                if !was && p.state().is_active() {
                    self.port_idle[i] = 0;
                }
            }
        }
    }

    /// One cycle of a **drained** router, equivalent to [`Router::step`]
    /// with empty buffers and an empty crossbar register: no allocation or
    /// traversal work can happen, so only the idle counters and the
    /// power-state machines advance, and no outputs are produced. Never
    /// reads neighbour state, which is what lets the network skip drained
    /// routers without computing their `neighbor_active` masks.
    pub fn idle_tick(&mut self) {
        debug_assert!(self.is_drained(), "idle_tick on a non-drained router {}", self.node);
        if self.psm.state().is_active() {
            self.idle_cycles = self.idle_cycles.saturating_add(1);
            for pi in 0..NUM_PORTS {
                self.port_idle[pi] = self.port_idle[pi].saturating_add(1);
            }
        }
        self.tick_power();
    }

    /// Advances a **drained** router by `dt` cycles in O(ports)
    /// arithmetic, equivalent to `dt` calls of [`Router::idle_tick`]
    /// provided `dt` does not exceed [`Router::skip_horizon`]: no
    /// power-state machine may complete a wake-up inside the interval
    /// (idle counters would reset and telemetry would miss the edge).
    pub fn fast_forward(&mut self, dt: u64) {
        debug_assert!(self.is_drained(), "fast_forward on a non-drained router {}", self.node);
        if dt == 0 {
            return;
        }
        let d32 = dt.min(u32::MAX as u64) as u32;
        if self.psm.state().is_active() {
            self.idle_cycles = self.idle_cycles.saturating_add(d32);
            for pi in 0..NUM_PORTS {
                self.port_idle[pi] = self.port_idle[pi].saturating_add(d32);
            }
        }
        self.psm.fast_forward(dt);
        if let Some(psms) = &mut self.port_psm {
            for p in psms {
                p.fast_forward(dt);
            }
        }
    }

    /// How many consecutive [`Router::idle_tick`]-equivalent cycles can
    /// be skipped without this router changing state class.
    ///
    /// `may_sleep` says whether the active gating policy issues sleep
    /// requests to this router's subnet each cycle: if so, an active
    /// router (or port, with port gating) is only stable until its idle
    /// counter reaches `t_idle_detect`, at which point the next policy
    /// pass would gate it — that cycle must be simulated normally so
    /// the Active→Sleep edge lands on the right cycle. Wake-up
    /// countdowns are stable for `remaining - 1` cycles; Sleep (and
    /// never-gated Active routers, whose idle counters merely saturate)
    /// is stable indefinitely.
    pub fn skip_horizon(&self, may_sleep: bool) -> u64 {
        let mut dt = u64::MAX;
        if let Some(stable) = self.psm.stable_ticks() {
            dt = dt.min(stable);
        } else if may_sleep && self.port_psm.is_none() && self.psm.state().is_active() {
            dt = dt.min((self.t_idle_detect as u64).saturating_sub(self.idle_cycles as u64));
        }
        if let Some(psms) = &self.port_psm {
            for (i, p) in psms.iter().enumerate() {
                if let Some(stable) = p.stable_ticks() {
                    dt = dt.min(stable);
                } else if may_sleep && p.state().is_active() {
                    dt = dt.min((self.t_idle_detect as u64).saturating_sub(self.port_idle[i] as u64));
                }
            }
        }
        dt
    }

    /// Everything `idle_tick` can touch, for shadow-replay equality
    /// checks of [`Router::fast_forward`].
    pub fn power_fingerprint(&self) -> RouterPowerFingerprint {
        RouterPowerFingerprint {
            psm: self.psm.residency_snapshot(),
            idle_cycles: self.idle_cycles,
            port_idle: self.port_idle,
            port_psm: self
                .port_psm
                .as_ref()
                .map(|psms| psms.iter().map(PowerStateMachine::residency_snapshot).collect()),
        }
    }

    /// Stage 2: flits granted last cycle traverse the crossbar onto links
    /// or out of the local port.
    fn switch_traversal(&mut self, out: &mut RouterOutput) {
        for (flit, out_port) in self.xbar_reg.drain(..) {
            self.activity.xbar_traversals += 1;
            if out_port == Port::Local {
                self.activity.ejected_flits += 1;
                out.ejected.push(flit);
            } else {
                self.activity.link_flits += 1;
                out.outbound.push(OutboundFlit { out_port, flit });
            }
        }
    }

    /// Stage 1: speculative VC allocation plus separable switch
    /// allocation, with busy-path fast exits. Bit-identical to
    /// [`Router::allocate_reference`] (asserted by the differential
    /// suite): skipped work is exactly the work the reference performs
    /// on empty inputs, which reads nothing, writes nothing, and leaves
    /// every round-robin pointer untouched.
    fn allocate(&mut self, neighbor_active: &[bool; NUM_PORTS], out: &mut RouterOutput) {
        if self.buffered == 0 {
            // No buffered flit anywhere: no head to allocate, no
            // candidate to arbitrate, nothing blocked. The reference
            // scan is a pure no-op in this state.
            return;
        }
        let vcs = self.vcs;
        // --- VC allocation for head flits without a binding ---
        // Only a non-empty, unbound VC can hold a head awaiting VA (an
        // unbound VC's front flit is always a head: the binding exists
        // from the head's allocation to the tail's departure, and flits
        // of a packet are contiguous in their VC). The reference loop
        // `continue`s on every other VC without reading or writing
        // anything, so iterating the mask bits in ascending order is
        // bit-identical — including the order of wake pings.
        for port in Port::ALL {
            let pi = port.index();
            let mut pending = self.vc_nonempty[pi] & !self.vc_bound[pi];
            while pending != 0 {
                let vc = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let head = self.input(port, vc).front().expect("non-empty by mask");
                debug_assert!(head.kind.is_head(), "unbound VC fronted by a non-head flit");
                let out_port = head.lookahead;
                debug_assert!(
                    self.connected[out_port.index()],
                    "route towards a disconnected port at {}",
                    self.node
                );
                if out_port != Port::Local && !neighbor_active[out_port.index()] {
                    // Liveness: re-request the wake-up while the head is
                    // waiting for the downstream router to power on.
                    out.wake_pings.push(out_port);
                    continue;
                }
                let mask = head.class.vc_mask(vcs) & !self.out_owned[out_port.index()];
                if mask == 0 {
                    continue;
                }
                // Round-robin winner: the first free VC at or after the
                // pointer, else the first free VC from zero (equivalent
                // to the reference's wrapping scan).
                let start = self.vc_rr[out_port.index()];
                let from_start = mask >> start;
                let ovc = if from_start != 0 {
                    start + from_start.trailing_zeros() as usize
                } else {
                    mask.trailing_zeros() as usize
                };
                let next = ovc + 1;
                self.vc_rr[out_port.index()] = if next == vcs { 0 } else { next };
                self.out_owned[out_port.index()] |= 1u64 << ovc;
                self.bind_input(
                    pi,
                    vc,
                    Binding {
                        out_port,
                        out_vc: ovc as u8,
                    },
                );
            }
        }

        // --- Input-side switch arbitration: one candidate VC per port ---
        // Only bound VCs can request the switch; unbound non-empty VCs
        // contribute to the blocked count and nothing else, and empty
        // VCs are skipped entirely. The bound VCs are visited in the
        // same wrapping round-robin order as the reference scan, so
        // candidate choice, `arb_requests` and wake-ping order all
        // match.
        let mut candidate: [Option<(usize, Binding)>; NUM_PORTS] = [None; NUM_PORTS];
        let mut nonempty_vcs = 0u64;
        let mut any_candidate = false;
        for port in Port::ALL {
            let pi = port.index();
            let ne = self.vc_nonempty[pi];
            if ne == 0 {
                continue;
            }
            nonempty_vcs += u64::from(ne.count_ones());
            let bound = ne & self.vc_bound[pi];
            if bound == 0 {
                continue;
            }
            let start = self.in_rr[pi];
            // Split the mask at the round-robin pointer: VCs at/after
            // `start` first (in ascending order), then the wrapped ones.
            let mut segment = bound >> start;
            let mut base = start;
            loop {
                while segment != 0 {
                    let vc = base + segment.trailing_zeros() as usize;
                    segment &= segment - 1;
                    let binding = self.bind_cache[pi * vcs + vc];
                    let opi = binding.out_port.index();
                    if binding.out_port != Port::Local && !neighbor_active[opi] {
                        // Liveness: keep requesting the sleeping
                        // neighbour's wake-up while we hold flits for
                        // it.
                        out.wake_pings.push(binding.out_port);
                    }
                    let eligible = binding.out_port == Port::Local
                        || (neighbor_active[opi] && self.credits[opi * vcs + binding.out_vc as usize] > 0);
                    if eligible {
                        self.activity.arb_requests += 1;
                        if candidate[pi].is_none() {
                            candidate[pi] = Some((vc, binding));
                            any_candidate = true;
                        }
                    }
                }
                if base == 0 || start == 0 {
                    break;
                }
                segment = bound & ((1u64 << start) - 1);
                base = 0;
            }
        }

        let mut grants = 0u64;
        if any_candidate {
            // --- Output-side arbitration: one grant per output port ---
            // Output ports nobody requests grant nothing and leave their
            // round-robin pointer untouched in the reference scan, so
            // they can be skipped outright.
            let mut requested = 0u32;
            for (_, binding) in candidate.iter().flatten() {
                requested |= 1u32 << binding.out_port.index();
            }
            let mut granted: [Option<(usize, Binding)>; NUM_PORTS] = [None; NUM_PORTS]; // by input port
            for out_port in Port::ALL {
                let opi = out_port.index();
                if requested & (1u32 << opi) == 0 {
                    continue;
                }
                let start = self.out_rr[opi];
                let mut in_pi = start;
                for _ in 0..NUM_PORTS {
                    if let Some((vc, binding)) = candidate[in_pi] {
                        if binding.out_port == out_port {
                            granted[in_pi] = Some((vc, binding));
                            candidate[in_pi] = None;
                            let next = in_pi + 1;
                            self.out_rr[opi] = if next == NUM_PORTS { 0 } else { next };
                            break;
                        }
                    }
                    in_pi += 1;
                    if in_pi == NUM_PORTS {
                        in_pi = 0;
                    }
                }
            }

            // --- Winners: dequeue, update credits/bindings, enter the
            //     crossbar register; return credits upstream. ---
            for in_port in Port::ALL {
                let pi = in_port.index();
                let Some((vc, binding)) = granted[pi] else { continue };
                grants += 1;
                let next = vc + 1;
                self.in_rr[pi] = if next == vcs { 0 } else { next };
                let mut flit = self.pop_input(pi, vc).expect("granted VC must be non-empty");
                self.buffered -= 1;
                self.port_occ[pi] -= 1;
                self.activity.buffer_reads += 1;
                flit.vc = binding.out_vc;
                let opi = binding.out_port.index();
                if binding.out_port != Port::Local {
                    let cidx = opi * vcs + binding.out_vc as usize;
                    debug_assert!(self.credits[cidx] > 0);
                    self.credits[cidx] -= 1;
                }
                if flit.kind.is_tail() {
                    self.unbind_input(pi, vc);
                    self.out_owned[opi] &= !(1u64 << binding.out_vc);
                }
                if in_port != Port::Local {
                    // The credit is for the buffer slot freed at the
                    // *arrival* VC, not the downstream VC just written
                    // into the flit.
                    out.credits.push(CreditReturn { in_port, vc: vc as u8 });
                }
                self.xbar_reg.push((flit, binding.out_port));
            }
        }
        self.activity.arb_grants += grants;
        // Blocked accounting: every non-empty VC whose front flit did not
        // move waits one more cycle. This includes credit-starved and
        // VA-starved waiting, which is exactly the back-pressure the
        // blocking-delay congestion metric should observe.
        self.activity.head_blocked_cycles += nonempty_vcs.saturating_sub(grants);
    }

    /// Stage 1, reference implementation: the original scan-everything
    /// allocator, byte-for-byte the pre-scheduler behaviour. Kept as an
    /// independent twin of [`Router::allocate`] for the forced-full-step
    /// baseline and the differential tests.
    fn allocate_reference(&mut self, neighbor_active: &[bool; NUM_PORTS], out: &mut RouterOutput) {
        // --- VC allocation for head flits without a binding ---
        for port in Port::ALL {
            for vc in 0..self.vcs {
                let slot = self.input(port, vc);
                let Some(head) = slot.front() else { continue };
                if !head.kind.is_head() || slot.binding().is_some() {
                    continue;
                }
                let out_port = head.lookahead;
                debug_assert!(
                    self.connected[out_port.index()],
                    "route towards a disconnected port at {}",
                    self.node
                );
                if out_port != Port::Local && !neighbor_active[out_port.index()] {
                    // Liveness: re-request the wake-up while the head is
                    // waiting for the downstream router to power on.
                    out.wake_pings.push(out_port);
                    continue;
                }
                let mask = head.class.vc_mask(self.vcs) & !self.out_owned[out_port.index()];
                if mask == 0 {
                    continue;
                }
                // Round-robin scan for a free downstream VC.
                let start = self.vc_rr[out_port.index()];
                let mut chosen = None;
                for off in 0..self.vcs {
                    let cand = (start + off) % self.vcs;
                    if mask & (1u64 << cand) != 0 {
                        chosen = Some(cand);
                        break;
                    }
                }
                if let Some(ovc) = chosen {
                    self.vc_rr[out_port.index()] = (ovc + 1) % self.vcs;
                    self.out_owned[out_port.index()] |= 1u64 << ovc;
                    self.bind_input(
                        port.index(),
                        vc,
                        Binding {
                            out_port,
                            out_vc: ovc as u8,
                        },
                    );
                }
            }
        }

        // --- Input-side switch arbitration: one candidate VC per port ---
        // candidate[in_port] = (vc index, binding)
        let mut candidate: [Option<(usize, Binding)>; NUM_PORTS] = [None; NUM_PORTS];
        let mut nonempty_vcs = 0u64;
        for port in Port::ALL {
            let pi = port.index();
            let start = self.in_rr[pi];
            for off in 0..self.vcs {
                let vc = (start + off) % self.vcs;
                let slot = self.input(port, vc);
                if slot.is_empty() {
                    continue;
                }
                nonempty_vcs += 1;
                let Some(binding) = slot.binding() else { continue };
                let opi = binding.out_port.index();
                if binding.out_port != Port::Local && !neighbor_active[opi] {
                    // Liveness: keep requesting the sleeping neighbour's
                    // wake-up while we hold flits for it.
                    out.wake_pings.push(binding.out_port);
                }
                let eligible = if binding.out_port == Port::Local {
                    true
                } else {
                    neighbor_active[opi] && self.credits[opi * self.vcs + binding.out_vc as usize] > 0
                };
                if eligible {
                    self.activity.arb_requests += 1;
                    if candidate[pi].is_none() {
                        candidate[pi] = Some((vc, binding));
                    }
                }
            }
        }

        // --- Output-side arbitration: one grant per output port ---
        let mut granted: [Option<(usize, Binding)>; NUM_PORTS] = [None; NUM_PORTS]; // by input port
        for out_port in Port::ALL {
            let opi = out_port.index();
            let start = self.out_rr[opi];
            for off in 0..NUM_PORTS {
                let in_pi = (start + off) % NUM_PORTS;
                if let Some((vc, binding)) = candidate[in_pi] {
                    if binding.out_port == out_port {
                        granted[in_pi] = Some((vc, binding));
                        candidate[in_pi] = None;
                        self.out_rr[opi] = (in_pi + 1) % NUM_PORTS;
                        break;
                    }
                }
            }
        }

        // --- Winners: dequeue, update credits/bindings, enter the crossbar
        //     register; return credits upstream. ---
        let mut grants = 0u64;
        for in_port in Port::ALL {
            let pi = in_port.index();
            let Some((vc, binding)) = granted[pi] else { continue };
            grants += 1;
            self.in_rr[pi] = (vc + 1) % self.vcs;
            let mut flit = self.pop_input(pi, vc).expect("granted VC must be non-empty");
            self.buffered -= 1;
            self.port_occ[pi] -= 1;
            self.activity.buffer_reads += 1;
            flit.vc = binding.out_vc;
            let opi = binding.out_port.index();
            if binding.out_port != Port::Local {
                let cidx = opi * self.vcs + binding.out_vc as usize;
                debug_assert!(self.credits[cidx] > 0);
                self.credits[cidx] -= 1;
            }
            if flit.kind.is_tail() {
                self.unbind_input(pi, vc);
                self.out_owned[opi] &= !(1u64 << binding.out_vc);
            }
            if in_port != Port::Local {
                // The credit is for the buffer slot freed at the *arrival*
                // VC, not the downstream VC just written into the flit.
                out.credits.push(CreditReturn { in_port, vc: vc as u8 });
            }
            self.xbar_reg.push((flit, binding.out_port));
        }
        self.activity.arb_grants += grants;
        // Blocked accounting: every non-empty VC whose front flit did not
        // move waits one more cycle. This includes credit-starved and
        // VA-starved waiting, which is exactly the back-pressure the
        // blocking-delay congestion metric should observe.
        self.activity.head_blocked_cycles += nonempty_vcs.saturating_sub(grants);
    }

    /// Power-gating residency statistics. `cycle` is the current
    /// simulation cycle, used to credit compensated sleep cycles of a
    /// still-open sleep period. With port gating enabled, the residencies
    /// are summed over the five ports (so totals are in port-cycles).
    pub fn gating_activity(&self, cycle: u64) -> GatingActivity {
        match &self.port_psm {
            None => GatingActivity {
                active_cycles: self.psm.active_cycles,
                sleep_cycles: self.psm.sleep_cycles,
                wakeup_cycles: self.psm.wakeup_cycles,
                sleep_transitions: self.psm.sleep_transitions,
                compensated_sleep_cycles: self.psm.compensated_at(cycle),
            },
            Some(psms) => psms
                .iter()
                .map(|p| GatingActivity {
                    active_cycles: p.active_cycles,
                    sleep_cycles: p.sleep_cycles,
                    wakeup_cycles: p.wakeup_cycles,
                    sleep_transitions: p.sleep_transitions,
                    compensated_sleep_cycles: p.compensated_at(cycle),
                })
                .fold(GatingActivity::default(), GatingActivity::merged),
        }
    }

    /// Lag-aware variant of [`Router::gating_activity`] for the event
    /// scheduler: credits `lag` deferred idle ticks to whichever
    /// residency counter the machine's *current* state class accrues
    /// into. Exact because the class is constant across a deferred
    /// stretch (the scheduler materializes a router before any class
    /// transition can land), and `compensated_at` is already time-based.
    pub fn gating_activity_lagged(&self, cycle: u64, lag: u64) -> GatingActivity {
        fn one(p: &PowerStateMachine, cycle: u64, lag: u64) -> GatingActivity {
            let mut g = GatingActivity {
                active_cycles: p.active_cycles,
                sleep_cycles: p.sleep_cycles,
                wakeup_cycles: p.wakeup_cycles,
                sleep_transitions: p.sleep_transitions,
                compensated_sleep_cycles: p.compensated_at(cycle),
            };
            match p.state() {
                PowerState::Active => g.active_cycles += lag,
                PowerState::Sleep => g.sleep_cycles += lag,
                PowerState::WakeUp { .. } => g.wakeup_cycles += lag,
            }
            g
        }
        match &self.port_psm {
            None => one(&self.psm, cycle, lag),
            Some(psms) => psms
                .iter()
                .map(|p| one(p, cycle, lag))
                .fold(GatingActivity::default(), GatingActivity::merged),
        }
    }

    /// Power state as it would read after `lag` further idle ticks (a
    /// wake-up countdown shortened by the deferred stretch; Sleep and
    /// Active unchanged).
    pub fn power_state_lagged(&self, lag: u64) -> PowerState {
        match self.psm.state() {
            PowerState::WakeUp { remaining } => PowerState::WakeUp {
                remaining: remaining - (lag.min(u64::from(remaining) - 1) as u32),
            },
            s => s,
        }
    }

    /// Closes the power-state accounting at the end of a simulation.
    pub fn finalize(&mut self, cycle: u64) {
        self.psm.finalize(cycle);
        if let Some(psms) = &mut self.port_psm {
            for p in psms {
                p.finalize(cycle);
            }
        }
    }

    /// Serializes the full router state (checkpointing). The redundant
    /// occupancy and mask caches (`buffered`, `port_occ`, `vc_nonempty`,
    /// `vc_bound`, `bind_cache`) are *not* captured — they are pure
    /// functions of the input rings and [`Router::decode`] recomputes
    /// them, so a checkpoint cannot carry a desynchronized cache.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(self.node.0);
        w.put_usize(self.vcs);
        w.put_usize(self.vc_depth);
        for c in self.connected {
            w.put_bool(c);
        }
        for vc in &self.inputs {
            vc.encode(w);
        }
        for m in self.out_owned {
            w.put_u64(m);
        }
        for &c in &self.credits {
            w.put_u16(c);
        }
        w.put_usize(self.xbar_reg.len());
        for (flit, port) in &self.xbar_reg {
            checkpoint::put_flit(w, flit);
            checkpoint::put_port(w, *port);
        }
        for rr in self.in_rr {
            w.put_usize(rr);
        }
        for rr in self.out_rr {
            w.put_usize(rr);
        }
        for rr in self.vc_rr {
            w.put_usize(rr);
        }
        self.psm.encode(w);
        w.put_u32(self.idle_cycles);
        w.put_u32(self.t_idle_detect);
        w.put_u32(self.t_wakeup);
        w.put_u32(self.t_breakeven);
        match &self.port_psm {
            None => w.put_bool(false),
            Some(psms) => {
                w.put_bool(true);
                for p in psms {
                    p.encode(w);
                }
            }
        }
        for pi in self.port_idle {
            w.put_u32(pi);
        }
        checkpoint::put_router_activity(w, &self.activity);
    }

    /// Rebuilds a router serialized by [`Router::encode`], recomputing
    /// the derived occupancy caches from the decoded input rings.
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let node = NodeId(r.get_u16()?);
        let vcs = r.get_usize()?;
        if vcs == 0 || vcs > 64 {
            return Err(CodecError::Invalid("router vcs out of range"));
        }
        let vc_depth = r.get_usize()?;
        if vc_depth == 0 || vc_depth > crate::vc::MAX_VC_DEPTH {
            return Err(CodecError::Invalid("router vc_depth out of range"));
        }
        let mut connected = [false; NUM_PORTS];
        for c in connected.iter_mut() {
            *c = r.get_bool()?;
        }
        if !connected[Port::Local.index()] {
            return Err(CodecError::Invalid("local port disconnected"));
        }
        // Gating timings land below (after the PSM); zeros are placeholders.
        let mut router = Router::new(node, vcs, vc_depth, connected, 0, 0, 0);
        for slot in router.inputs.iter_mut() {
            let vc = InputVc::decode(r)?;
            if vc.depth() != vc_depth {
                return Err(CodecError::Invalid("VC depth mismatch"));
            }
            *slot = vc;
        }
        for m in router.out_owned.iter_mut() {
            *m = r.get_u64()?;
        }
        for c in router.credits.iter_mut() {
            let credit = r.get_u16()?;
            if credit as usize > vc_depth {
                return Err(CodecError::Invalid("credit exceeds VC depth"));
            }
            *c = credit;
        }
        let xbar_len = r.get_usize()?;
        if xbar_len > NUM_PORTS {
            return Err(CodecError::Invalid("crossbar register overfull"));
        }
        router.xbar_reg.clear();
        for _ in 0..xbar_len {
            let flit = checkpoint::get_flit(r)?;
            let port = checkpoint::get_port(r)?;
            router.xbar_reg.push((flit, port));
        }
        for rr in router.in_rr.iter_mut() {
            *rr = r.get_usize()?;
            if *rr >= vcs {
                return Err(CodecError::Invalid("input round-robin pointer out of range"));
            }
        }
        for rr in router.out_rr.iter_mut() {
            *rr = r.get_usize()?;
            if *rr >= NUM_PORTS {
                return Err(CodecError::Invalid("output round-robin pointer out of range"));
            }
        }
        for rr in router.vc_rr.iter_mut() {
            *rr = r.get_usize()?;
            if *rr >= vcs {
                return Err(CodecError::Invalid("VC round-robin pointer out of range"));
            }
        }
        router.psm = PowerStateMachine::decode(r)?;
        router.idle_cycles = r.get_u32()?;
        router.t_idle_detect = r.get_u32()?;
        router.t_wakeup = r.get_u32()?;
        router.t_breakeven = r.get_u32()?;
        if r.get_bool()? {
            let mut psms = Vec::with_capacity(NUM_PORTS);
            for _ in 0..NUM_PORTS {
                psms.push(PowerStateMachine::decode(r)?);
            }
            router.port_psm = Some(psms);
        }
        for pi in router.port_idle.iter_mut() {
            *pi = r.get_u32()?;
        }
        router.activity = checkpoint::get_router_activity(r)?;
        router.rebuild_caches();
        Ok(router)
    }

    /// Recomputes every derived cache from the input rings (decode path).
    fn rebuild_caches(&mut self) {
        self.buffered = 0;
        self.port_occ = [0; NUM_PORTS];
        self.vc_nonempty = [0; NUM_PORTS];
        self.vc_bound = [0; NUM_PORTS];
        for pi in 0..NUM_PORTS {
            for vc in 0..self.vcs {
                let slot = &self.inputs[pi * self.vcs + vc];
                let n = slot.len() as u32;
                self.buffered += n;
                self.port_occ[pi] += n;
                if n > 0 {
                    self.vc_nonempty[pi] |= 1u64 << vc;
                }
                if let Some(b) = slot.binding() {
                    self.vc_bound[pi] |= 1u64 << vc;
                    self.bind_cache[pi * self.vcs + vc] = b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, MessageClass, PacketId};

    const ALL_ACTIVE: [bool; NUM_PORTS] = [true; NUM_PORTS];

    fn router() -> Router {
        Router::new(NodeId(9), 4, 4, [true; NUM_PORTS], 10, 12, 4)
    }

    fn flit(packet: u64, kind: FlitKind, seq: u16, len: u16, lookahead: Port, vc: u8) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            src: NodeId(0),
            dst: NodeId(63),
            seq,
            packet_len: len,
            class: MessageClass::Synthetic,
            lookahead,
            vc,
            created_cycle: 0,
            net_inject_cycle: 0,
        }
    }

    #[test]
    fn single_flit_crosses_in_two_cycles() {
        let mut r = router();
        let mut out = RouterOutput::default();
        r.deliver(Port::West, flit(1, FlitKind::Single, 0, 1, Port::East, 0));
        // Cycle 1: VA + SA grant into the crossbar register.
        r.step(&ALL_ACTIVE, &mut out);
        assert!(out.outbound.is_empty());
        // Cycle 2: switch traversal.
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.outbound.len(), 1);
        assert_eq!(out.outbound[0].out_port, Port::East);
        assert_eq!(r.activity.buffer_reads, 1);
        assert_eq!(r.activity.xbar_traversals, 1);
        assert_eq!(r.activity.link_flits, 1);
    }

    #[test]
    fn credit_returned_for_arrival_vc() {
        let mut r = router();
        let mut out = RouterOutput::default();
        r.deliver(Port::North, flit(1, FlitKind::Single, 0, 1, Port::South, 3));
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.credits.len(), 1);
        assert_eq!(out.credits[0].in_port, Port::North);
        assert_eq!(out.credits[0].vc, 3);
    }

    #[test]
    fn local_ejection_credits_upstream_but_injection_does_not() {
        // A flit arriving from a mesh neighbour and ejecting locally still
        // frees a buffer slot, so a credit goes back upstream...
        let mut r = router();
        let mut out = RouterOutput::default();
        r.deliver(Port::North, flit(1, FlitKind::Single, 0, 1, Port::Local, 0));
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.credits.len(), 1);
        assert_eq!(out.credits[0].in_port, Port::North);
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.ejected.len(), 1);
        assert_eq!(r.activity.ejected_flits, 1);
        assert_eq!(r.activity.link_flits, 0);

        // ...whereas a locally injected flit produces no credit (the NI
        // observes buffer space directly).
        let mut r2 = router();
        r2.deliver(Port::Local, flit(2, FlitKind::Single, 0, 1, Port::East, 0));
        r2.step(&ALL_ACTIVE, &mut out);
        assert!(out.credits.is_empty());
    }

    #[test]
    fn wormhole_binding_held_until_tail() {
        let mut r = router();
        let mut out = RouterOutput::default();
        r.deliver(Port::West, flit(1, FlitKind::Head, 0, 3, Port::East, 0));
        r.step(&ALL_ACTIVE, &mut out);
        assert!(r.outbound_binding_ports()[Port::East.index()]);
        r.deliver(Port::West, flit(1, FlitKind::Body, 1, 3, Port::East, 0));
        r.step(&ALL_ACTIVE, &mut out);
        assert!(r.outbound_binding_ports()[Port::East.index()]);
        r.deliver(Port::West, flit(1, FlitKind::Tail, 2, 3, Port::East, 0));
        r.step(&ALL_ACTIVE, &mut out);
        // Tail was granted this cycle, releasing the binding.
        assert!(!r.outbound_binding_ports()[Port::East.index()]);
    }

    #[test]
    fn downstream_vcs_kept_distinct_for_concurrent_packets() {
        let mut r = router();
        let mut out = RouterOutput::default();
        // Two whole packets from different input ports to the same output
        // port, delivered up front.
        r.deliver(Port::West, flit(1, FlitKind::Head, 0, 2, Port::East, 0));
        r.deliver(Port::North, flit(2, FlitKind::Head, 0, 2, Port::East, 0));
        r.deliver(Port::West, flit(1, FlitKind::Tail, 1, 2, Port::East, 0));
        r.deliver(Port::North, flit(2, FlitKind::Tail, 1, 2, Port::East, 0));
        let mut seen = Vec::new();
        for _ in 0..10 {
            r.step(&ALL_ACTIVE, &mut out);
            for ob in &out.outbound {
                seen.push((ob.flit.packet, ob.flit.vc));
            }
        }
        let vcs_of = |p: u64| {
            seen.iter()
                .filter(|(pk, _)| *pk == PacketId(p))
                .map(|(_, vc)| *vc)
                .collect::<Vec<u8>>()
        };
        let a = vcs_of(1);
        let b = vcs_of(2);
        assert_eq!(a.len(), 2, "packet 1 flits: {seen:?}");
        assert_eq!(b.len(), 2, "packet 2 flits: {seen:?}");
        assert!(a.iter().all(|&v| v == a[0]), "packet keeps one VC");
        assert!(b.iter().all(|&v| v == b[0]), "packet keeps one VC");
        assert_ne!(a[0], b[0], "concurrent packets must use distinct downstream VCs");
    }

    #[test]
    fn only_one_grant_per_output_port_per_cycle() {
        let mut r = router();
        let mut out = RouterOutput::default();
        r.deliver(Port::West, flit(1, FlitKind::Single, 0, 1, Port::East, 0));
        r.deliver(Port::North, flit(2, FlitKind::Single, 0, 1, Port::East, 1));
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(r.activity.arb_grants, 1, "output port conflict must serialize");
        assert!(r.activity.head_blocked_cycles >= 1);
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.outbound.len(), 1);
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.outbound.len(), 1);
    }

    #[test]
    fn no_grant_toward_inactive_neighbor() {
        let mut r = router();
        let mut out = RouterOutput::default();
        let mut east_off = ALL_ACTIVE;
        east_off[Port::East.index()] = false;
        r.deliver(Port::West, flit(1, FlitKind::Single, 0, 1, Port::East, 0));
        for _ in 0..5 {
            r.step(&east_off, &mut out);
            assert!(out.outbound.is_empty());
        }
        assert_eq!(r.activity.buffer_reads, 0);
        assert!(r.activity.head_blocked_cycles >= 5);
        // Neighbour wakes: flit proceeds.
        r.step(&ALL_ACTIVE, &mut out);
        r.step(&ALL_ACTIVE, &mut out);
        assert_eq!(out.outbound.len(), 1);
    }

    #[test]
    fn credit_starvation_blocks_sending() {
        let mut r = router();
        let mut out = RouterOutput::default();
        // Consume all 4 credits of the chosen downstream VC by sending a
        // 5-flit packet with no credits returned.
        for (i, kind) in [FlitKind::Head, FlitKind::Body, FlitKind::Body, FlitKind::Body]
            .iter()
            .enumerate()
        {
            r.deliver(Port::West, flit(1, *kind, i as u16, 6, Port::East, 0));
        }
        let mut sent = 0;
        for _ in 0..12 {
            r.step(&ALL_ACTIVE, &mut out);
            sent += out.outbound.len();
        }
        assert_eq!(sent, 4, "only vc_depth flits may be in flight without credit returns");
        // Return one credit for the VC that was allocated.
        let alloc_vc = (0..4).find(|&v| r.out_owned[Port::East.index()] & (1 << v) != 0).unwrap();
        r.deliver(Port::West, flit(1, FlitKind::Body, 4, 6, Port::East, 0));
        r.return_credit(Port::East, alloc_vc as u8);
        let mut sent2 = 0;
        for _ in 0..4 {
            r.step(&ALL_ACTIVE, &mut out);
            sent2 += out.outbound.len();
        }
        assert_eq!(sent2, 1);
    }

    #[test]
    fn idle_detection_counts_consecutive_empty_cycles() {
        let mut r = router();
        let mut out = RouterOutput::default();
        assert!(!r.idle_long_enough());
        for _ in 0..4 {
            r.step(&ALL_ACTIVE, &mut out);
        }
        assert!(r.idle_long_enough());
        assert!(r.sleep_guard_ok());
        // A delivery resets idleness.
        r.deliver(Port::West, flit(1, FlitKind::Single, 0, 1, Port::East, 0));
        assert!(!r.idle_long_enough());
    }

    #[test]
    fn sleep_and_wake_cycle() {
        let mut r = router();
        let mut out = RouterOutput::default();
        for _ in 0..4 {
            r.step(&ALL_ACTIVE, &mut out);
        }
        r.enter_sleep(4);
        assert!(r.power_state().is_sleeping());
        // Sleeping routers do nothing.
        r.step(&ALL_ACTIVE, &mut out);
        assert!(out.outbound.is_empty());
        r.request_wake(6, WakeReason::LookaheadSignal);
        for _ in 0..10 {
            assert!(!r.power_state().is_active());
            r.step(&ALL_ACTIVE, &mut out);
        }
        assert!(r.power_state().is_active());
        let g = r.gating_activity(20);
        assert_eq!(g.sleep_transitions, 1);
        assert!(g.wakeup_cycles == 10);
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn delivery_to_sleeping_router_panics() {
        let mut r = router();
        let mut out = RouterOutput::default();
        for _ in 0..4 {
            r.step(&ALL_ACTIVE, &mut out);
        }
        r.enter_sleep(4);
        r.deliver(Port::West, flit(1, FlitKind::Single, 0, 1, Port::East, 0));
    }

    #[test]
    fn bfm_is_max_port_occupancy() {
        let mut r = router();
        r.deliver(Port::West, flit(1, FlitKind::Head, 0, 9, Port::East, 0));
        r.deliver(Port::West, flit(1, FlitKind::Body, 1, 9, Port::East, 0));
        r.deliver(Port::North, flit(2, FlitKind::Head, 0, 9, Port::East, 1));
        assert_eq!(r.port_occupancy(Port::West), 2);
        assert_eq!(r.port_occupancy(Port::North), 1);
        assert_eq!(r.max_port_occupancy(), 2);
        assert!((r.avg_port_occupancy() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn fast_forward_matches_idle_ticks() {
        // Drained active router, whole-router granularity.
        let mut a = router();
        let mut b = a.clone();
        let dt = a.skip_horizon(true);
        assert_eq!(dt, 4, "fresh router is stable until idle detect matures");
        for _ in 0..dt {
            a.idle_tick();
        }
        b.fast_forward(dt);
        assert_eq!(a.power_fingerprint(), b.power_fingerprint());
        // Unbounded when the policy never gates this router.
        assert_eq!(a.skip_horizon(false), u64::MAX);
        // Sleeping router: unbounded, and closed form still matches.
        a.enter_sleep(4);
        let mut c = a.clone();
        for _ in 0..1000 {
            a.idle_tick();
        }
        c.fast_forward(1000);
        assert_eq!(a.power_fingerprint(), c.power_fingerprint());
        // Waking router: stable for remaining-1 ticks only.
        a.request_wake(1004, WakeReason::External);
        assert_eq!(a.skip_horizon(false), 9);
        let mut d = a.clone();
        for _ in 0..9 {
            a.idle_tick();
        }
        d.fast_forward(9);
        assert_eq!(a.power_fingerprint(), d.power_fingerprint());
    }

    #[test]
    fn fast_forward_matches_idle_ticks_with_port_gating() {
        let mut a = router();
        a.enable_port_gating();
        let mut out = RouterOutput::default();
        for _ in 0..4 {
            a.step(&ALL_ACTIVE, &mut out);
        }
        a.enter_port_sleep(Port::East, 4);
        assert_eq!(a.skip_horizon(true), 0, "remaining active ports are gate-ripe");
        let mut b = a.clone();
        for _ in 0..700 {
            a.idle_tick();
        }
        b.fast_forward(700);
        assert_eq!(a.power_fingerprint(), b.power_fingerprint());
        assert_eq!(a.skip_horizon(false), u64::MAX);
        a.request_wake_port(Port::East, 800, WakeReason::External);
        assert_eq!(a.skip_horizon(false), 9);
    }

    #[test]
    fn deliver_returns_lookahead_wake_ping() {
        let mut r = router();
        let ping = r.deliver(Port::West, flit(1, FlitKind::Head, 0, 2, Port::East, 0));
        assert_eq!(ping, Some(Port::East));
        let no_ping = r.deliver(Port::West, flit(1, FlitKind::Tail, 1, 2, Port::East, 0));
        assert_eq!(no_ping, None);
        let local = r.deliver(Port::North, flit(2, FlitKind::Single, 0, 1, Port::Local, 0));
        assert_eq!(local, None, "ejecting flits need no wake ping");
    }
}
