//! Activity counters and aggregate statistics.
//!
//! [`RouterActivity`] counts the micro-architectural events that the power
//! model (`catnap-power`) converts into energy: buffer writes/reads,
//! crossbar traversals, link flits and arbitration activity. The counters
//! are pure data so the power model stays decoupled from the simulator.

/// Per-router event counters accumulated over a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterActivity {
    /// Flits written into input VC buffers (arrivals and injections).
    pub buffer_writes: u64,
    /// Flits read out of input VC buffers (switch-allocation winners).
    pub buffer_reads: u64,
    /// Flits that traversed the crossbar.
    pub xbar_traversals: u64,
    /// Flits placed on inter-router links (excludes ejection to the NI).
    pub link_flits: u64,
    /// Flits ejected through the local port to the NI.
    pub ejected_flits: u64,
    /// Switch-allocation requests issued by input VCs.
    pub arb_requests: u64,
    /// Switch-allocation grants.
    pub arb_grants: u64,
    /// Cycles in which some head flit was ready but not granted (summed per
    /// blocked VC; feeds the blocking-delay congestion metric).
    pub head_blocked_cycles: u64,
}

impl RouterActivity {
    /// Element-wise sum of two activity records.
    pub fn merged(self, other: RouterActivity) -> RouterActivity {
        RouterActivity {
            buffer_writes: self.buffer_writes + other.buffer_writes,
            buffer_reads: self.buffer_reads + other.buffer_reads,
            xbar_traversals: self.xbar_traversals + other.xbar_traversals,
            link_flits: self.link_flits + other.link_flits,
            ejected_flits: self.ejected_flits + other.ejected_flits,
            arb_requests: self.arb_requests + other.arb_requests,
            arb_grants: self.arb_grants + other.arb_grants,
            head_blocked_cycles: self.head_blocked_cycles + other.head_blocked_cycles,
        }
    }

    /// Average blocking delay per switched flit, in cycles.
    pub fn avg_blocking_delay(&self) -> f64 {
        if self.buffer_reads == 0 {
            0.0
        } else {
            self.head_blocked_cycles as f64 / self.buffer_reads as f64
        }
    }
}

/// Power-gating residency summary for one router.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatingActivity {
    /// Cycles the router was active (powered, operational).
    pub active_cycles: u64,
    /// Cycles the router was asleep (gated; no leakage).
    pub sleep_cycles: u64,
    /// Cycles spent in wake-up transitions (powered, not operational).
    pub wakeup_cycles: u64,
    /// Number of active→sleep transitions.
    pub sleep_transitions: u64,
    /// Compensated sleep cycles: Σ max(0, period − t_breakeven).
    pub compensated_sleep_cycles: u64,
}

impl GatingActivity {
    /// Element-wise sum.
    pub fn merged(self, other: GatingActivity) -> GatingActivity {
        GatingActivity {
            active_cycles: self.active_cycles + other.active_cycles,
            sleep_cycles: self.sleep_cycles + other.sleep_cycles,
            wakeup_cycles: self.wakeup_cycles + other.wakeup_cycles,
            sleep_transitions: self.sleep_transitions + other.sleep_transitions,
            compensated_sleep_cycles: self.compensated_sleep_cycles + other.compensated_sleep_cycles,
        }
    }

    /// Fraction of total cycles that were compensated sleep cycles.
    pub fn csc_fraction(&self) -> f64 {
        let total = self.active_cycles + self.sleep_cycles + self.wakeup_cycles;
        if total == 0 {
            0.0
        } else {
            self.compensated_sleep_cycles as f64 / total as f64
        }
    }
}

/// Aggregate statistics for one subnet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Flits injected at local ports.
    pub flits_injected: u64,
    /// Flits ejected at destinations.
    pub flits_ejected: u64,
    /// Packets whose tail flit has been ejected.
    pub packets_ejected: u64,
    /// Sum of network latencies (tail ejection − head network injection) of
    /// ejected packets.
    pub net_latency_sum: u64,
    /// Maximum observed network latency.
    pub net_latency_max: u64,
    /// Sum of hop counts of ejected packets' head flits.
    pub hops_sum: u64,
}

impl NetworkStats {
    /// Mean network latency per packet, in cycles.
    pub fn avg_net_latency(&self) -> f64 {
        if self.packets_ejected == 0 {
            0.0
        } else {
            self.net_latency_sum as f64 / self.packets_ejected as f64
        }
    }

    /// Accepted throughput in flits per node per cycle.
    pub fn accepted_flits_per_node_cycle(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Accepted throughput in packets per node per cycle.
    pub fn accepted_packets_per_node_cycle(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.packets_ejected as f64 / (self.cycles as f64 * nodes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_merge_adds_fields() {
        let a = RouterActivity {
            buffer_writes: 1,
            buffer_reads: 2,
            xbar_traversals: 3,
            link_flits: 4,
            ejected_flits: 5,
            arb_requests: 6,
            arb_grants: 7,
            head_blocked_cycles: 8,
        };
        let m = a.merged(a);
        assert_eq!(m.buffer_writes, 2);
        assert_eq!(m.head_blocked_cycles, 16);
    }

    #[test]
    fn blocking_delay_average() {
        let a = RouterActivity {
            buffer_reads: 4,
            head_blocked_cycles: 6,
            ..Default::default()
        };
        assert!((a.avg_blocking_delay() - 1.5).abs() < 1e-12);
        assert_eq!(RouterActivity::default().avg_blocking_delay(), 0.0);
    }

    #[test]
    fn csc_fraction() {
        let g = GatingActivity {
            active_cycles: 30,
            sleep_cycles: 60,
            wakeup_cycles: 10,
            sleep_transitions: 2,
            compensated_sleep_cycles: 36,
        };
        assert!((g.csc_fraction() - 0.36).abs() < 1e-12);
        assert_eq!(GatingActivity::default().csc_fraction(), 0.0);
    }

    #[test]
    fn network_stats_rates() {
        let s = NetworkStats {
            cycles: 100,
            flits_ejected: 200,
            packets_ejected: 50,
            net_latency_sum: 1000,
            ..Default::default()
        };
        assert!((s.avg_net_latency() - 20.0).abs() < 1e-12);
        assert!((s.accepted_flits_per_node_cycle(4) - 0.5).abs() < 1e-12);
        assert!((s.accepted_packets_per_node_cycle(4) - 0.125).abs() < 1e-12);
        assert_eq!(NetworkStats::default().avg_net_latency(), 0.0);
        assert_eq!(s.accepted_flits_per_node_cycle(0), 0.0);
    }
}
