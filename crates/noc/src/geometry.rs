//! Mesh topology geometry: node identifiers, coordinates, ports,
//! deterministic X-Y routing and region partitioning for the regional
//! congestion-status OR network.

use std::fmt;

/// Identifier of a network node (one router plus its network interface).
///
/// Nodes are numbered in row-major order: `id = y * cols + x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Creates a node id from a raw row-major index.
    pub fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the raw row-major index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A cardinal direction in the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Towards row 0 (decreasing y).
    North,
    /// Towards higher x.
    East,
    /// Towards higher y.
    South,
    /// Towards column 0 (decreasing x).
    West,
}

impl Direction {
    /// All four directions in port order.
    pub const ALL: [Direction; 4] = [Direction::North, Direction::East, Direction::South, Direction::West];

    /// The opposite direction (the port a neighbour uses to receive from us).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

/// A router port: four mesh directions plus the local (NI) port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Port {
    /// Link to the northern neighbour.
    North,
    /// Link to the eastern neighbour.
    East,
    /// Link to the southern neighbour.
    South,
    /// Link to the western neighbour.
    West,
    /// Injection/ejection port to the node's network interface.
    Local,
}

/// Number of ports on a mesh router.
pub const NUM_PORTS: usize = 5;

impl Port {
    /// All five ports in index order.
    pub const ALL: [Port; NUM_PORTS] = [Port::North, Port::East, Port::South, Port::West, Port::Local];

    /// Dense index of this port in `0..NUM_PORTS`.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::East => 1,
            Port::South => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// Converts a dense index back to a port.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_PORTS`.
    pub fn from_index(idx: usize) -> Port {
        Port::ALL[idx]
    }

    /// The port a neighbour receives through when we send out of this
    /// port (mesh ports swap to their opposite; the local port maps to
    /// itself).
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
            Port::Local => Port::Local,
        }
    }

    /// The mesh direction of this port, or `None` for the local port.
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::North => Some(Direction::North),
            Port::East => Some(Direction::East),
            Port::South => Some(Direction::South),
            Port::West => Some(Direction::West),
            Port::Local => None,
        }
    }
}

impl From<Direction> for Port {
    fn from(d: Direction) -> Port {
        match d {
            Direction::North => Port::North,
            Direction::East => Port::East,
            Direction::South => Port::South,
            Direction::West => Port::West,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
            Port::Local => "L",
        };
        f.write_str(s)
    }
}

/// Dimensions of a 2-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeshDims {
    /// Number of columns (X extent).
    pub cols: u16,
    /// Number of rows (Y extent).
    pub rows: u16,
}

impl MeshDims {
    /// Creates mesh dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        MeshDims { cols, rows }
    }

    /// Total number of nodes.
    pub fn num_nodes(self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// (x, y) coordinates of a node.
    pub fn coords(self, node: NodeId) -> (u16, u16) {
        let idx = node.0;
        (idx % self.cols, idx / self.cols)
    }

    /// Node at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "coordinates out of bounds");
        NodeId(y * self.cols + x)
    }

    /// Returns whether `node` is a valid id for this mesh.
    pub fn contains(self, node: NodeId) -> bool {
        (node.0 as usize) < self.num_nodes()
    }

    /// The neighbour of `node` in direction `dir`, if it exists.
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North => (y > 0).then(|| self.node_at(x, y - 1)),
            Direction::South => (y + 1 < self.rows).then(|| self.node_at(x, y + 1)),
            Direction::West => (x > 0).then(|| self.node_at(x - 1, y)),
            Direction::East => (x + 1 < self.cols).then(|| self.node_at(x + 1, y)),
        }
    }

    /// Deterministic dimension-ordered X-Y routing: the output port a packet
    /// positioned at `at` must take to reach `dst`.
    ///
    /// Routes fully in X first, then in Y; returns [`Port::Local`] when
    /// `at == dst`.
    pub fn xy_route(self, at: NodeId, dst: NodeId) -> Port {
        let (ax, ay) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if ax < dx {
            Port::East
        } else if ax > dx {
            Port::West
        } else if ay < dy {
            Port::South
        } else if ay > dy {
            Port::North
        } else {
            Port::Local
        }
    }

    /// Manhattan hop distance between two nodes.
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Iterator over all node ids in row-major order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    /// Partitions the mesh into up to `shards` horizontal bands of whole
    /// rows, balanced to within one row. Node ids are row-major, so each
    /// band is a **contiguous router-index range** — the unit of work the
    /// sharded stepper hands to one pool lane. More shards than rows
    /// collapses to one band per row; `shards == 0` is treated as 1.
    /// Ranges are non-empty, sorted, and cover `0..num_nodes` exactly.
    pub fn row_bands(self, shards: usize) -> Vec<std::ops::Range<usize>> {
        let rows = self.rows as usize;
        let nb = shards.clamp(1, rows);
        let cols = self.cols as usize;
        (0..nb)
            .map(|b| {
                let r0 = b * rows / nb;
                let r1 = (b + 1) * rows / nb;
                (r0 * cols)..(r1 * cols)
            })
            .collect()
    }

    /// Partitions the mesh into up to `shards` vertical bands of whole
    /// columns, balanced to within one column. Node ids are row-major,
    /// so a column band is **not** one contiguous index range — it is
    /// one contiguous range *per row* (the band's columns within that
    /// row), listed in ascending row order. More shards than columns
    /// collapses to one band per column; `shards == 0` is treated as 1.
    /// Across all bands the segments are disjoint and cover
    /// `0..num_nodes` exactly.
    pub fn col_bands(self, shards: usize) -> Vec<Vec<std::ops::Range<usize>>> {
        let cols = self.cols as usize;
        let rows = self.rows as usize;
        let nb = shards.clamp(1, cols);
        (0..nb)
            .map(|b| {
                let c0 = b * cols / nb;
                let c1 = (b + 1) * cols / nb;
                (0..rows).map(|r| (r * cols + c0)..(r * cols + c1)).collect()
            })
            .collect()
    }

    /// Partitions the mesh into a `tiles_x` x `tiles_y` grid of
    /// rectangular tiles (clamped to the mesh extents), each balanced to
    /// within one column horizontally and one row vertically. A tile is
    /// a list of contiguous index ranges, one per row it spans, in
    /// ascending row order; tiles come out in row-major tile order.
    /// Across all tiles the segments are disjoint and cover
    /// `0..num_nodes` exactly. Zero tile counts are treated as 1.
    pub fn tiles2d(self, tiles_x: usize, tiles_y: usize) -> Vec<Vec<std::ops::Range<usize>>> {
        let cols = self.cols as usize;
        let rows = self.rows as usize;
        let tx = tiles_x.clamp(1, cols);
        let ty = tiles_y.clamp(1, rows);
        let mut tiles = Vec::with_capacity(tx * ty);
        for j in 0..ty {
            let r0 = j * rows / ty;
            let r1 = (j + 1) * rows / ty;
            for i in 0..tx {
                let c0 = i * cols / tx;
                let c1 = (i + 1) * cols / tx;
                tiles.push((r0..r1).map(|r| (r * cols + c0)..(r * cols + c1)).collect());
            }
        }
        tiles
    }

    /// Near-square tile grid `(tiles_x, tiles_y)` for about `shards`
    /// tiles: the larger factor runs along the larger mesh dimension,
    /// and both are clamped to the extents. `tiles_x * tiles_y <=
    /// max(shards, 1)` always holds, so a grid never over-splits the
    /// requested parallelism.
    pub fn tile_grid(self, shards: usize) -> (usize, usize) {
        let s = shards.max(1);
        let mut a = 1usize;
        while (a + 1) * (a + 1) <= s {
            a += 1;
        }
        let b = s / a;
        let (big, small) = (a.max(b), a.min(b));
        let (tx, ty) = if self.cols >= self.rows {
            (big, small)
        } else {
            (small, big)
        };
        (tx.clamp(1, self.cols as usize), ty.clamp(1, self.rows as usize))
    }

    /// The `shape` partition with about `shards` parts, in the uniform
    /// segment-list form ([`MeshDims::col_bands`]): each part is a list
    /// of disjoint contiguous index ranges in ascending order, and the
    /// segments of all parts tile `0..num_nodes` exactly.
    pub fn partition(self, shape: PartitionShape, shards: usize) -> Vec<Vec<std::ops::Range<usize>>> {
        match shape {
            PartitionShape::RowBands => self.row_bands(shards).into_iter().map(|r| vec![r]).collect(),
            PartitionShape::ColBands => self.col_bands(shards),
            PartitionShape::Tiles2d => {
                let (tx, ty) = self.tile_grid(shards);
                self.tiles2d(tx, ty)
            }
        }
    }
}

/// How the sharded phase-2 stepper partitions a mesh across pool lanes.
/// Purely a scheduling choice: every shape is bit-identical to the
/// serial sweep (the stepper's merge restores canonical order for any
/// disjoint exact-cover partition).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PartitionShape {
    /// Horizontal bands of whole rows ([`MeshDims::row_bands`]). Best
    /// when the mesh has at least as many rows as shards.
    RowBands,
    /// Vertical bands of whole columns ([`MeshDims::col_bands`]). Fixes
    /// the row-band load imbalance on short-wide meshes (few rows, many
    /// columns).
    ColBands,
    /// A near-square 2-D tile grid ([`MeshDims::tiles2d`]); the fallback
    /// when neither dimension alone offers enough parallelism.
    Tiles2d,
}

impl PartitionShape {
    /// Every shape, for test matrices.
    pub const ALL: [PartitionShape; 3] = [
        PartitionShape::RowBands,
        PartitionShape::ColBands,
        PartitionShape::Tiles2d,
    ];

    /// Short stable name (telemetry and JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            PartitionShape::RowBands => "row_bands",
            PartitionShape::ColBands => "col_bands",
            PartitionShape::Tiles2d => "tiles2d",
        }
    }

    /// Picks the shape whose bands stay balanced for `shards` parts on
    /// this mesh: row bands while there are enough rows, else column
    /// bands while there are enough columns, else 2-D tiles.
    pub fn pick(dims: MeshDims, shards: usize) -> PartitionShape {
        let s = shards.max(1);
        if dims.rows as usize >= s {
            PartitionShape::RowBands
        } else if dims.cols as usize >= s {
            PartitionShape::ColBands
        } else {
            PartitionShape::Tiles2d
        }
    }
}

/// Identifier of a region of the mesh (used by the regional congestion
/// status OR network, which partitions an 8x8 mesh into four 4x4 regions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u8);

impl RegionId {
    /// Dense index of this region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Partition of a mesh into rectangular regions of `region_cols x
/// region_rows` nodes each.
///
/// The Catnap paper partitions the 8x8 mesh into four 4x4 regions; this type
/// generalizes that to any rectangular tiling (including a single global
/// region or per-node regions, used by the ablation benches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    dims: MeshDims,
    region_cols: u16,
    region_rows: u16,
    regions_x: u16,
    regions_y: u16,
}

impl RegionMap {
    /// Creates a region map tiling `dims` with regions of the given size.
    ///
    /// Region sizes need not divide the mesh evenly; edge regions are
    /// simply smaller.
    ///
    /// # Panics
    ///
    /// Panics if either region dimension is zero.
    pub fn new(dims: MeshDims, region_cols: u16, region_rows: u16) -> Self {
        assert!(region_cols > 0 && region_rows > 0, "region dimensions must be non-zero");
        let regions_x = dims.cols.div_ceil(region_cols);
        let regions_y = dims.rows.div_ceil(region_rows);
        RegionMap {
            dims,
            region_cols,
            region_rows,
            regions_x,
            regions_y,
        }
    }

    /// The paper's configuration: quadrants of 4x4 routers on an 8x8 mesh
    /// (more generally, halves of each dimension rounded up).
    pub fn quadrants(dims: MeshDims) -> Self {
        RegionMap::new(dims, dims.cols.div_ceil(2), dims.rows.div_ceil(2))
    }

    /// One global region covering the whole mesh.
    pub fn global(dims: MeshDims) -> Self {
        RegionMap::new(dims, dims.cols, dims.rows)
    }

    /// One region per node (degenerates RCS to purely local status).
    pub fn per_node(dims: MeshDims) -> Self {
        RegionMap::new(dims, 1, 1)
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions_x as usize * self.regions_y as usize
    }

    /// The region containing `node`.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        let (x, y) = self.dims.coords(node);
        let rx = x / self.region_cols;
        let ry = y / self.region_rows;
        RegionId((ry * self.regions_x + rx) as u8)
    }

    /// Iterator over the nodes belonging to `region`.
    pub fn nodes_in(&self, region: RegionId) -> impl Iterator<Item = NodeId> + '_ {
        self.dims.nodes().filter(move |&n| self.region_of(n) == region)
    }

    /// The mesh dimensions this map partitions.
    pub fn dims(&self) -> MeshDims {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> MeshDims {
        MeshDims::new(8, 8)
    }

    #[test]
    fn node_coords_roundtrip() {
        let m = mesh8();
        for node in m.nodes() {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn num_nodes_matches_dims() {
        assert_eq!(mesh8().num_nodes(), 64);
        assert_eq!(MeshDims::new(4, 4).num_nodes(), 16);
        assert_eq!(MeshDims::new(3, 5).num_nodes(), 15);
    }

    #[test]
    #[should_panic]
    fn zero_dims_panic() {
        MeshDims::new(0, 4);
    }

    #[test]
    fn row_bands_cover_exactly_and_balance() {
        for (cols, rows) in [(8u16, 8u16), (4, 4), (3, 5), (16, 2), (1, 1)] {
            let m = MeshDims::new(cols, rows);
            for shards in [0usize, 1, 2, 3, 4, 7, 8, 64] {
                let bands = m.row_bands(shards);
                assert!(!bands.is_empty());
                assert!(bands.len() <= shards.max(1).min(rows as usize));
                // Contiguous cover of 0..num_nodes, whole rows only.
                let mut next = 0usize;
                for band in &bands {
                    assert_eq!(band.start, next, "bands are contiguous");
                    assert!(band.end > band.start, "bands are non-empty");
                    assert_eq!(band.len() % cols as usize, 0, "bands hold whole rows");
                    next = band.end;
                }
                assert_eq!(next, m.num_nodes());
                // Balanced to within one row.
                let rows_per: Vec<usize> = bands.iter().map(|b| b.len() / cols as usize).collect();
                let (min, max) = (rows_per.iter().min().unwrap(), rows_per.iter().max().unwrap());
                assert!(max - min <= 1, "row balance within one: {rows_per:?}");
            }
        }
    }

    /// Flattens a segment-list partition and asserts the segments are
    /// disjoint and cover `0..num_nodes` exactly; returns per-part node
    /// counts.
    fn assert_exact_cover(m: MeshDims, parts: &[Vec<std::ops::Range<usize>>]) -> Vec<usize> {
        assert!(!parts.is_empty());
        let mut segs: Vec<(usize, usize)> = Vec::new();
        for part in parts {
            assert!(!part.is_empty(), "parts are non-empty");
            let mut prev_end = 0usize;
            for r in part {
                assert!(r.end > r.start, "segments are non-empty");
                assert!(r.start >= prev_end, "a part's segments ascend");
                prev_end = r.end;
            }
            for r in part {
                segs.push((r.start, r.end));
            }
        }
        segs.sort_unstable();
        let mut next = 0usize;
        for &(s, e) in &segs {
            assert_eq!(s, next, "segments tile the index space without gap or overlap");
            next = e;
        }
        assert_eq!(next, m.num_nodes());
        parts.iter().map(|p| p.iter().map(|r| r.end - r.start).sum()).collect()
    }

    #[test]
    fn col_bands_cover_exactly_and_balance() {
        for (cols, rows) in [(8u16, 8u16), (4, 4), (3, 5), (16, 2), (2, 16), (1, 7), (7, 1), (1, 1)] {
            let m = MeshDims::new(cols, rows);
            for shards in [0usize, 1, 2, 3, 4, 7, 8, 64] {
                let bands = m.col_bands(shards);
                assert!(bands.len() <= shards.max(1).min(cols as usize));
                let sizes = assert_exact_cover(m, &bands);
                // Whole columns only, balanced to within one column.
                let cols_per: Vec<usize> = sizes
                    .iter()
                    .map(|&s| {
                        assert_eq!(s % rows as usize, 0, "bands hold whole columns");
                        s / rows as usize
                    })
                    .collect();
                let (min, max) = (cols_per.iter().min().unwrap(), cols_per.iter().max().unwrap());
                assert!(max - min <= 1, "column balance within one: {cols_per:?}");
                // Each band spans every row: one segment per row.
                for band in &bands {
                    assert_eq!(band.len(), rows as usize);
                }
            }
        }
    }

    #[test]
    fn tiles2d_cover_exactly_and_balance() {
        for (cols, rows) in [(8u16, 8u16), (4, 4), (3, 5), (16, 2), (2, 16), (1, 7), (7, 1), (1, 1)] {
            let m = MeshDims::new(cols, rows);
            for (tx, ty) in [(0usize, 0usize), (1, 1), (2, 2), (3, 2), (2, 3), (4, 4), (64, 64)] {
                let tiles = m.tiles2d(tx, ty);
                let txc = tx.clamp(1, cols as usize);
                let tyc = ty.clamp(1, rows as usize);
                assert_eq!(tiles.len(), txc * tyc);
                assert_exact_cover(m, &tiles);
                // Row-major tile order: tile (i, j) holds tyc-balanced
                // rows and txc-balanced columns, each within one.
                let rows_per: Vec<usize> = (0..tyc).map(|j| tiles[j * txc].len()).collect();
                let (rmin, rmax) = (rows_per.iter().min().unwrap(), rows_per.iter().max().unwrap());
                assert!(rmax - rmin <= 1, "row balance within one: {rows_per:?}");
                let cols_per: Vec<usize> = (0..txc).map(|i| tiles[i][0].end - tiles[i][0].start).collect();
                let (cmin, cmax) = (cols_per.iter().min().unwrap(), cols_per.iter().max().unwrap());
                assert!(cmax - cmin <= 1, "column balance within one: {cols_per:?}");
            }
        }
    }

    #[test]
    fn tile_grid_is_near_square_and_bounded() {
        let m = MeshDims::new(8, 8);
        for shards in [1usize, 2, 3, 4, 6, 8, 9, 16, 64] {
            let (tx, ty) = m.tile_grid(shards);
            assert!(
                tx * ty <= shards.max(1),
                "grid never over-splits ({tx}x{ty} for {shards})"
            );
            assert!(tx >= 1 && ty >= 1);
        }
        assert_eq!(m.tile_grid(4), (2, 2));
        assert_eq!(m.tile_grid(8), (4, 2), "larger factor along the (tied) column extent");
        // Clamped by a skinny mesh.
        assert_eq!(MeshDims::new(2, 16).tile_grid(16), (2, 4));
        assert_eq!(MeshDims::new(1, 4).tile_grid(64), (1, 4));
    }

    #[test]
    fn partition_shapes_all_tile_the_mesh() {
        for (cols, rows) in [(8u16, 8u16), (3, 5), (16, 2), (1, 7)] {
            let m = MeshDims::new(cols, rows);
            for shape in PartitionShape::ALL {
                for shards in [1usize, 2, 4, 8] {
                    assert_exact_cover(m, &m.partition(shape, shards));
                }
            }
        }
        // Row bands stay the contiguous special case.
        let m = MeshDims::new(4, 4);
        let parts = m.partition(PartitionShape::RowBands, 2);
        assert_eq!(parts, vec![vec![0..8], vec![8..16]]);
    }

    #[test]
    fn partition_shape_pick_matches_mesh_aspect() {
        assert_eq!(PartitionShape::pick(MeshDims::new(8, 8), 4), PartitionShape::RowBands);
        assert_eq!(PartitionShape::pick(MeshDims::new(8, 8), 8), PartitionShape::RowBands);
        // Short-wide mesh: rows run out before the shard count.
        assert_eq!(PartitionShape::pick(MeshDims::new(16, 2), 4), PartitionShape::ColBands);
        // Neither dimension alone is enough.
        assert_eq!(PartitionShape::pick(MeshDims::new(3, 3), 4), PartitionShape::Tiles2d);
        assert_eq!(PartitionShape::pick(MeshDims::new(1, 1), 0), PartitionShape::RowBands);
    }

    #[test]
    fn neighbors_at_corner() {
        let m = mesh8();
        let origin = m.node_at(0, 0);
        assert_eq!(m.neighbor(origin, Direction::North), None);
        assert_eq!(m.neighbor(origin, Direction::West), None);
        assert_eq!(m.neighbor(origin, Direction::East), Some(m.node_at(1, 0)));
        assert_eq!(m.neighbor(origin, Direction::South), Some(m.node_at(0, 1)));
    }

    #[test]
    fn neighbors_in_middle() {
        let m = mesh8();
        let mid = m.node_at(3, 3);
        assert_eq!(m.neighbor(mid, Direction::North), Some(m.node_at(3, 2)));
        assert_eq!(m.neighbor(mid, Direction::South), Some(m.node_at(3, 4)));
        assert_eq!(m.neighbor(mid, Direction::East), Some(m.node_at(4, 3)));
        assert_eq!(m.neighbor(mid, Direction::West), Some(m.node_at(2, 3)));
    }

    #[test]
    fn opposite_directions() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn port_index_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn port_opposite_matches_direction_opposite() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
            match p.direction() {
                Some(d) => assert_eq!(p.opposite(), Port::from(d.opposite())),
                None => assert_eq!(p.opposite(), Port::Local),
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = mesh8();
        let src = m.node_at(1, 1);
        let dst = m.node_at(5, 6);
        assert_eq!(m.xy_route(src, dst), Port::East);
        // Once X is resolved, route in Y.
        let aligned = m.node_at(5, 1);
        assert_eq!(m.xy_route(aligned, dst), Port::South);
        assert_eq!(m.xy_route(dst, dst), Port::Local);
    }

    #[test]
    fn xy_route_follows_to_destination() {
        let m = mesh8();
        for &(s, d) in &[(0u16, 63u16), (63, 0), (7, 56), (12, 12), (5, 40)] {
            let (src, dst) = (NodeId(s), NodeId(d));
            let mut at = src;
            let mut hops = 0;
            loop {
                let port = m.xy_route(at, dst);
                if port == Port::Local {
                    break;
                }
                at = m.neighbor(at, port.direction().unwrap()).expect("route fell off mesh");
                hops += 1;
                assert!(hops <= 64, "routing loop");
            }
            assert_eq!(at, dst);
            assert_eq!(hops, m.hop_distance(src, dst));
        }
    }

    #[test]
    fn quadrant_regions_on_8x8() {
        let map = RegionMap::quadrants(mesh8());
        assert_eq!(map.num_regions(), 4);
        let m = mesh8();
        assert_eq!(map.region_of(m.node_at(0, 0)), RegionId(0));
        assert_eq!(map.region_of(m.node_at(7, 0)), RegionId(1));
        assert_eq!(map.region_of(m.node_at(0, 7)), RegionId(2));
        assert_eq!(map.region_of(m.node_at(7, 7)), RegionId(3));
        // Every region holds exactly 16 nodes.
        for r in 0..4 {
            assert_eq!(map.nodes_in(RegionId(r)).count(), 16);
        }
    }

    #[test]
    fn global_and_per_node_regions() {
        let g = RegionMap::global(mesh8());
        assert_eq!(g.num_regions(), 1);
        assert!(mesh8().nodes().all(|n| g.region_of(n) == RegionId(0)));

        let p = RegionMap::per_node(MeshDims::new(4, 4));
        assert_eq!(p.num_regions(), 16);
        let mut seen: Vec<u8> = MeshDims::new(4, 4).nodes().map(|n| p.region_of(n).0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn hop_distance_symmetric() {
        let m = mesh8();
        for &(a, b) in &[(0u16, 63u16), (10, 53), (8, 8)] {
            assert_eq!(
                m.hop_distance(NodeId(a), NodeId(b)),
                m.hop_distance(NodeId(b), NodeId(a))
            );
        }
    }
}
