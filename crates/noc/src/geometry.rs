//! Mesh topology geometry: node identifiers, coordinates, ports,
//! deterministic X-Y routing and region partitioning for the regional
//! congestion-status OR network.

use std::fmt;

/// Identifier of a network node (one router plus its network interface).
///
/// Nodes are numbered in row-major order: `id = y * cols + x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Creates a node id from a raw row-major index.
    pub fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the raw row-major index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A cardinal direction in the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Towards row 0 (decreasing y).
    North,
    /// Towards higher x.
    East,
    /// Towards higher y.
    South,
    /// Towards column 0 (decreasing x).
    West,
}

impl Direction {
    /// All four directions in port order.
    pub const ALL: [Direction; 4] = [Direction::North, Direction::East, Direction::South, Direction::West];

    /// The opposite direction (the port a neighbour uses to receive from us).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

/// A router port: four mesh directions plus the local (NI) port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Port {
    /// Link to the northern neighbour.
    North,
    /// Link to the eastern neighbour.
    East,
    /// Link to the southern neighbour.
    South,
    /// Link to the western neighbour.
    West,
    /// Injection/ejection port to the node's network interface.
    Local,
}

/// Number of ports on a mesh router.
pub const NUM_PORTS: usize = 5;

impl Port {
    /// All five ports in index order.
    pub const ALL: [Port; NUM_PORTS] = [Port::North, Port::East, Port::South, Port::West, Port::Local];

    /// Dense index of this port in `0..NUM_PORTS`.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::East => 1,
            Port::South => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// Converts a dense index back to a port.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_PORTS`.
    pub fn from_index(idx: usize) -> Port {
        Port::ALL[idx]
    }

    /// The port a neighbour receives through when we send out of this
    /// port (mesh ports swap to their opposite; the local port maps to
    /// itself).
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
            Port::Local => Port::Local,
        }
    }

    /// The mesh direction of this port, or `None` for the local port.
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::North => Some(Direction::North),
            Port::East => Some(Direction::East),
            Port::South => Some(Direction::South),
            Port::West => Some(Direction::West),
            Port::Local => None,
        }
    }
}

impl From<Direction> for Port {
    fn from(d: Direction) -> Port {
        match d {
            Direction::North => Port::North,
            Direction::East => Port::East,
            Direction::South => Port::South,
            Direction::West => Port::West,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
            Port::Local => "L",
        };
        f.write_str(s)
    }
}

/// Dimensions of a 2-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeshDims {
    /// Number of columns (X extent).
    pub cols: u16,
    /// Number of rows (Y extent).
    pub rows: u16,
}

impl MeshDims {
    /// Creates mesh dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        MeshDims { cols, rows }
    }

    /// Total number of nodes.
    pub fn num_nodes(self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// (x, y) coordinates of a node.
    pub fn coords(self, node: NodeId) -> (u16, u16) {
        let idx = node.0;
        (idx % self.cols, idx / self.cols)
    }

    /// Node at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "coordinates out of bounds");
        NodeId(y * self.cols + x)
    }

    /// Returns whether `node` is a valid id for this mesh.
    pub fn contains(self, node: NodeId) -> bool {
        (node.0 as usize) < self.num_nodes()
    }

    /// The neighbour of `node` in direction `dir`, if it exists.
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North => (y > 0).then(|| self.node_at(x, y - 1)),
            Direction::South => (y + 1 < self.rows).then(|| self.node_at(x, y + 1)),
            Direction::West => (x > 0).then(|| self.node_at(x - 1, y)),
            Direction::East => (x + 1 < self.cols).then(|| self.node_at(x + 1, y)),
        }
    }

    /// Deterministic dimension-ordered X-Y routing: the output port a packet
    /// positioned at `at` must take to reach `dst`.
    ///
    /// Routes fully in X first, then in Y; returns [`Port::Local`] when
    /// `at == dst`.
    pub fn xy_route(self, at: NodeId, dst: NodeId) -> Port {
        let (ax, ay) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if ax < dx {
            Port::East
        } else if ax > dx {
            Port::West
        } else if ay < dy {
            Port::South
        } else if ay > dy {
            Port::North
        } else {
            Port::Local
        }
    }

    /// Manhattan hop distance between two nodes.
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Iterator over all node ids in row-major order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    /// Partitions the mesh into up to `shards` horizontal bands of whole
    /// rows, balanced to within one row. Node ids are row-major, so each
    /// band is a **contiguous router-index range** — the unit of work the
    /// sharded stepper hands to one pool lane. More shards than rows
    /// collapses to one band per row; `shards == 0` is treated as 1.
    /// Ranges are non-empty, sorted, and cover `0..num_nodes` exactly.
    pub fn row_bands(self, shards: usize) -> Vec<std::ops::Range<usize>> {
        let rows = self.rows as usize;
        let nb = shards.clamp(1, rows);
        let cols = self.cols as usize;
        (0..nb)
            .map(|b| {
                let r0 = b * rows / nb;
                let r1 = (b + 1) * rows / nb;
                (r0 * cols)..(r1 * cols)
            })
            .collect()
    }
}

/// Identifier of a region of the mesh (used by the regional congestion
/// status OR network, which partitions an 8x8 mesh into four 4x4 regions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u8);

impl RegionId {
    /// Dense index of this region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Partition of a mesh into rectangular regions of `region_cols x
/// region_rows` nodes each.
///
/// The Catnap paper partitions the 8x8 mesh into four 4x4 regions; this type
/// generalizes that to any rectangular tiling (including a single global
/// region or per-node regions, used by the ablation benches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    dims: MeshDims,
    region_cols: u16,
    region_rows: u16,
    regions_x: u16,
    regions_y: u16,
}

impl RegionMap {
    /// Creates a region map tiling `dims` with regions of the given size.
    ///
    /// Region sizes need not divide the mesh evenly; edge regions are
    /// simply smaller.
    ///
    /// # Panics
    ///
    /// Panics if either region dimension is zero.
    pub fn new(dims: MeshDims, region_cols: u16, region_rows: u16) -> Self {
        assert!(region_cols > 0 && region_rows > 0, "region dimensions must be non-zero");
        let regions_x = dims.cols.div_ceil(region_cols);
        let regions_y = dims.rows.div_ceil(region_rows);
        RegionMap {
            dims,
            region_cols,
            region_rows,
            regions_x,
            regions_y,
        }
    }

    /// The paper's configuration: quadrants of 4x4 routers on an 8x8 mesh
    /// (more generally, halves of each dimension rounded up).
    pub fn quadrants(dims: MeshDims) -> Self {
        RegionMap::new(dims, dims.cols.div_ceil(2), dims.rows.div_ceil(2))
    }

    /// One global region covering the whole mesh.
    pub fn global(dims: MeshDims) -> Self {
        RegionMap::new(dims, dims.cols, dims.rows)
    }

    /// One region per node (degenerates RCS to purely local status).
    pub fn per_node(dims: MeshDims) -> Self {
        RegionMap::new(dims, 1, 1)
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions_x as usize * self.regions_y as usize
    }

    /// The region containing `node`.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        let (x, y) = self.dims.coords(node);
        let rx = x / self.region_cols;
        let ry = y / self.region_rows;
        RegionId((ry * self.regions_x + rx) as u8)
    }

    /// Iterator over the nodes belonging to `region`.
    pub fn nodes_in(&self, region: RegionId) -> impl Iterator<Item = NodeId> + '_ {
        self.dims.nodes().filter(move |&n| self.region_of(n) == region)
    }

    /// The mesh dimensions this map partitions.
    pub fn dims(&self) -> MeshDims {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> MeshDims {
        MeshDims::new(8, 8)
    }

    #[test]
    fn node_coords_roundtrip() {
        let m = mesh8();
        for node in m.nodes() {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn num_nodes_matches_dims() {
        assert_eq!(mesh8().num_nodes(), 64);
        assert_eq!(MeshDims::new(4, 4).num_nodes(), 16);
        assert_eq!(MeshDims::new(3, 5).num_nodes(), 15);
    }

    #[test]
    #[should_panic]
    fn zero_dims_panic() {
        MeshDims::new(0, 4);
    }

    #[test]
    fn row_bands_cover_exactly_and_balance() {
        for (cols, rows) in [(8u16, 8u16), (4, 4), (3, 5), (16, 2), (1, 1)] {
            let m = MeshDims::new(cols, rows);
            for shards in [0usize, 1, 2, 3, 4, 7, 8, 64] {
                let bands = m.row_bands(shards);
                assert!(!bands.is_empty());
                assert!(bands.len() <= shards.max(1).min(rows as usize));
                // Contiguous cover of 0..num_nodes, whole rows only.
                let mut next = 0usize;
                for band in &bands {
                    assert_eq!(band.start, next, "bands are contiguous");
                    assert!(band.end > band.start, "bands are non-empty");
                    assert_eq!(band.len() % cols as usize, 0, "bands hold whole rows");
                    next = band.end;
                }
                assert_eq!(next, m.num_nodes());
                // Balanced to within one row.
                let rows_per: Vec<usize> = bands.iter().map(|b| b.len() / cols as usize).collect();
                let (min, max) = (rows_per.iter().min().unwrap(), rows_per.iter().max().unwrap());
                assert!(max - min <= 1, "row balance within one: {rows_per:?}");
            }
        }
    }

    #[test]
    fn neighbors_at_corner() {
        let m = mesh8();
        let origin = m.node_at(0, 0);
        assert_eq!(m.neighbor(origin, Direction::North), None);
        assert_eq!(m.neighbor(origin, Direction::West), None);
        assert_eq!(m.neighbor(origin, Direction::East), Some(m.node_at(1, 0)));
        assert_eq!(m.neighbor(origin, Direction::South), Some(m.node_at(0, 1)));
    }

    #[test]
    fn neighbors_in_middle() {
        let m = mesh8();
        let mid = m.node_at(3, 3);
        assert_eq!(m.neighbor(mid, Direction::North), Some(m.node_at(3, 2)));
        assert_eq!(m.neighbor(mid, Direction::South), Some(m.node_at(3, 4)));
        assert_eq!(m.neighbor(mid, Direction::East), Some(m.node_at(4, 3)));
        assert_eq!(m.neighbor(mid, Direction::West), Some(m.node_at(2, 3)));
    }

    #[test]
    fn opposite_directions() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn port_index_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn port_opposite_matches_direction_opposite() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
            match p.direction() {
                Some(d) => assert_eq!(p.opposite(), Port::from(d.opposite())),
                None => assert_eq!(p.opposite(), Port::Local),
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = mesh8();
        let src = m.node_at(1, 1);
        let dst = m.node_at(5, 6);
        assert_eq!(m.xy_route(src, dst), Port::East);
        // Once X is resolved, route in Y.
        let aligned = m.node_at(5, 1);
        assert_eq!(m.xy_route(aligned, dst), Port::South);
        assert_eq!(m.xy_route(dst, dst), Port::Local);
    }

    #[test]
    fn xy_route_follows_to_destination() {
        let m = mesh8();
        for &(s, d) in &[(0u16, 63u16), (63, 0), (7, 56), (12, 12), (5, 40)] {
            let (src, dst) = (NodeId(s), NodeId(d));
            let mut at = src;
            let mut hops = 0;
            loop {
                let port = m.xy_route(at, dst);
                if port == Port::Local {
                    break;
                }
                at = m.neighbor(at, port.direction().unwrap()).expect("route fell off mesh");
                hops += 1;
                assert!(hops <= 64, "routing loop");
            }
            assert_eq!(at, dst);
            assert_eq!(hops, m.hop_distance(src, dst));
        }
    }

    #[test]
    fn quadrant_regions_on_8x8() {
        let map = RegionMap::quadrants(mesh8());
        assert_eq!(map.num_regions(), 4);
        let m = mesh8();
        assert_eq!(map.region_of(m.node_at(0, 0)), RegionId(0));
        assert_eq!(map.region_of(m.node_at(7, 0)), RegionId(1));
        assert_eq!(map.region_of(m.node_at(0, 7)), RegionId(2));
        assert_eq!(map.region_of(m.node_at(7, 7)), RegionId(3));
        // Every region holds exactly 16 nodes.
        for r in 0..4 {
            assert_eq!(map.nodes_in(RegionId(r)).count(), 16);
        }
    }

    #[test]
    fn global_and_per_node_regions() {
        let g = RegionMap::global(mesh8());
        assert_eq!(g.num_regions(), 1);
        assert!(mesh8().nodes().all(|n| g.region_of(n) == RegionId(0)));

        let p = RegionMap::per_node(MeshDims::new(4, 4));
        assert_eq!(p.num_regions(), 16);
        let mut seen: Vec<u8> = MeshDims::new(4, 4).nodes().map(|n| p.region_of(n).0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn hop_distance_symmetric() {
        let m = mesh8();
        for &(a, b) in &[(0u16, 63u16), (10, 53), (8, 8)] {
            assert_eq!(
                m.hop_distance(NodeId(a), NodeId(b)),
                m.hop_distance(NodeId(b), NodeId(a))
            );
        }
    }
}
