//! Binary codec helpers for checkpointing network state.
//!
//! The per-structure `encode`/`decode` functions live next to the
//! structures they serialize (Rust privacy is module-scoped), but the
//! plain-data types with public fields — flits, stats counters, port
//! tags — are encoded here so the `catnap` core crate can reuse the
//! exact same byte layout for its own state (NI queues, delivered
//! tails). See DESIGN.md §13 for the container format and the
//! capture/reconstruct split.

use crate::flit::{Flit, FlitKind, MessageClass, PacketDescriptor, PacketId};
use crate::geometry::{NodeId, Port};
use crate::network::SchedStats;
use crate::stats::{NetworkStats, RouterActivity};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// Encodes a [`Port`] as its stable index (N=0, E=1, S=2, W=3, L=4).
pub fn put_port(w: &mut ByteWriter, p: Port) {
    w.put_u8(p.index() as u8);
}

/// Decodes a [`Port`] tag.
///
/// # Errors
///
/// [`CodecError::Invalid`] on a tag outside `0..5`.
pub fn get_port(r: &mut ByteReader<'_>) -> Result<Port, CodecError> {
    let tag = r.get_u8()?;
    if tag as usize >= crate::geometry::NUM_PORTS {
        return Err(CodecError::Invalid("port tag"));
    }
    Ok(Port::from_index(tag as usize))
}

/// Encodes a [`FlitKind`] tag.
pub fn put_flit_kind(w: &mut ByteWriter, k: FlitKind) {
    w.put_u8(match k {
        FlitKind::Head => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::Single => 3,
    });
}

/// Decodes a [`FlitKind`] tag.
///
/// # Errors
///
/// [`CodecError::Invalid`] on an unknown tag.
pub fn get_flit_kind(r: &mut ByteReader<'_>) -> Result<FlitKind, CodecError> {
    Ok(match r.get_u8()? {
        0 => FlitKind::Head,
        1 => FlitKind::Body,
        2 => FlitKind::Tail,
        3 => FlitKind::Single,
        _ => return Err(CodecError::Invalid("flit kind tag")),
    })
}

/// Encodes a [`MessageClass`] tag.
pub fn put_message_class(w: &mut ByteWriter, c: MessageClass) {
    w.put_u8(match c {
        MessageClass::Request => 0,
        MessageClass::Forward => 1,
        MessageClass::Response => 2,
        MessageClass::Synthetic => 3,
    });
}

/// Decodes a [`MessageClass`] tag.
///
/// # Errors
///
/// [`CodecError::Invalid`] on an unknown tag.
pub fn get_message_class(r: &mut ByteReader<'_>) -> Result<MessageClass, CodecError> {
    Ok(match r.get_u8()? {
        0 => MessageClass::Request,
        1 => MessageClass::Forward,
        2 => MessageClass::Response,
        3 => MessageClass::Synthetic,
        _ => return Err(CodecError::Invalid("message class tag")),
    })
}

/// Encodes a [`Flit`] (every field, bit-exact).
pub fn put_flit(w: &mut ByteWriter, f: &Flit) {
    w.put_u64(f.packet.0);
    put_flit_kind(w, f.kind);
    w.put_u16(f.src.0);
    w.put_u16(f.dst.0);
    w.put_u16(f.seq);
    w.put_u16(f.packet_len);
    put_message_class(w, f.class);
    put_port(w, f.lookahead);
    w.put_u8(f.vc);
    w.put_u64(f.created_cycle);
    w.put_u64(f.net_inject_cycle);
}

/// Decodes a [`Flit`].
///
/// # Errors
///
/// Propagates reader errors and bad tags.
pub fn get_flit(r: &mut ByteReader<'_>) -> Result<Flit, CodecError> {
    Ok(Flit {
        packet: PacketId(r.get_u64()?),
        kind: get_flit_kind(r)?,
        src: NodeId(r.get_u16()?),
        dst: NodeId(r.get_u16()?),
        seq: r.get_u16()?,
        packet_len: r.get_u16()?,
        class: get_message_class(r)?,
        lookahead: get_port(r)?,
        vc: r.get_u8()?,
        created_cycle: r.get_u64()?,
        net_inject_cycle: r.get_u64()?,
    })
}

/// Encodes a [`PacketDescriptor`].
pub fn put_packet_descriptor(w: &mut ByteWriter, d: &PacketDescriptor) {
    w.put_u64(d.id.0);
    w.put_u16(d.src.0);
    w.put_u16(d.dst.0);
    w.put_u32(d.bits);
    put_message_class(w, d.class);
    w.put_u64(d.created_cycle);
}

/// Decodes a [`PacketDescriptor`].
///
/// # Errors
///
/// Propagates reader errors and bad tags.
pub fn get_packet_descriptor(r: &mut ByteReader<'_>) -> Result<PacketDescriptor, CodecError> {
    Ok(PacketDescriptor {
        id: PacketId(r.get_u64()?),
        src: NodeId(r.get_u16()?),
        dst: NodeId(r.get_u16()?),
        bits: r.get_u32()?,
        class: get_message_class(r)?,
        created_cycle: r.get_u64()?,
    })
}

/// Encodes [`NetworkStats`].
pub fn put_network_stats(w: &mut ByteWriter, s: &NetworkStats) {
    w.put_u64(s.cycles);
    w.put_u64(s.flits_injected);
    w.put_u64(s.flits_ejected);
    w.put_u64(s.packets_ejected);
    w.put_u64(s.net_latency_sum);
    w.put_u64(s.net_latency_max);
    w.put_u64(s.hops_sum);
}

/// Decodes [`NetworkStats`].
///
/// # Errors
///
/// Propagates reader errors.
pub fn get_network_stats(r: &mut ByteReader<'_>) -> Result<NetworkStats, CodecError> {
    Ok(NetworkStats {
        cycles: r.get_u64()?,
        flits_injected: r.get_u64()?,
        flits_ejected: r.get_u64()?,
        packets_ejected: r.get_u64()?,
        net_latency_sum: r.get_u64()?,
        net_latency_max: r.get_u64()?,
        hops_sum: r.get_u64()?,
    })
}

/// Encodes [`RouterActivity`].
pub fn put_router_activity(w: &mut ByteWriter, a: &RouterActivity) {
    w.put_u64(a.buffer_writes);
    w.put_u64(a.buffer_reads);
    w.put_u64(a.xbar_traversals);
    w.put_u64(a.link_flits);
    w.put_u64(a.ejected_flits);
    w.put_u64(a.arb_requests);
    w.put_u64(a.arb_grants);
    w.put_u64(a.head_blocked_cycles);
}

/// Decodes [`RouterActivity`].
///
/// # Errors
///
/// Propagates reader errors.
pub fn get_router_activity(r: &mut ByteReader<'_>) -> Result<RouterActivity, CodecError> {
    Ok(RouterActivity {
        buffer_writes: r.get_u64()?,
        buffer_reads: r.get_u64()?,
        xbar_traversals: r.get_u64()?,
        link_flits: r.get_u64()?,
        ejected_flits: r.get_u64()?,
        arb_requests: r.get_u64()?,
        arb_grants: r.get_u64()?,
        head_blocked_cycles: r.get_u64()?,
    })
}

/// Encodes [`SchedStats`].
pub fn put_sched_stats(w: &mut ByteWriter, s: &SchedStats) {
    w.put_u64(s.router_runs);
    w.put_u64(s.idle_runs);
    w.put_u64(s.wakeup_pops);
    w.put_u64(s.stale_wakeups);
    w.put_u64(s.syncs);
    w.put_u64(s.synced_cycles);
    w.put_u64(s.stalled_runs);
}

/// Decodes [`SchedStats`].
///
/// # Errors
///
/// Propagates reader errors.
pub fn get_sched_stats(r: &mut ByteReader<'_>) -> Result<SchedStats, CodecError> {
    Ok(SchedStats {
        router_runs: r.get_u64()?,
        idle_runs: r.get_u64()?,
        wakeup_pops: r.get_u64()?,
        stale_wakeups: r.get_u64()?,
        syncs: r.get_u64()?,
        synced_cycles: r.get_u64()?,
        stalled_runs: r.get_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_round_trips_bit_exact() {
        let f = Flit {
            packet: PacketId(0xDEAD_BEEF),
            kind: FlitKind::Tail,
            src: NodeId(3),
            dst: NodeId(60),
            seq: 3,
            packet_len: 4,
            class: MessageClass::Response,
            lookahead: Port::West,
            vc: 2,
            created_cycle: 1234,
            net_inject_cycle: 1260,
        };
        let mut w = ByteWriter::new();
        put_flit(&mut w, &f);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_flit(&mut r).unwrap(), f);
        assert!(r.is_empty());
    }

    #[test]
    fn enum_tags_cover_all_variants() {
        for p in Port::ALL {
            let mut w = ByteWriter::new();
            put_port(&mut w, p);
            let bytes = w.into_inner();
            assert_eq!(get_port(&mut ByteReader::new(&bytes)).unwrap(), p);
        }
        for c in MessageClass::ALL {
            let mut w = ByteWriter::new();
            put_message_class(&mut w, c);
            let bytes = w.into_inner();
            assert_eq!(get_message_class(&mut ByteReader::new(&bytes)).unwrap(), c);
        }
        for k in [FlitKind::Head, FlitKind::Body, FlitKind::Tail, FlitKind::Single] {
            let mut w = ByteWriter::new();
            put_flit_kind(&mut w, k);
            let bytes = w.into_inner();
            assert_eq!(get_flit_kind(&mut ByteReader::new(&bytes)).unwrap(), k);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            get_port(&mut ByteReader::new(&[5])),
            Err(CodecError::Invalid("port tag"))
        );
        assert_eq!(
            get_flit_kind(&mut ByteReader::new(&[9])),
            Err(CodecError::Invalid("flit kind tag"))
        );
        assert_eq!(
            get_message_class(&mut ByteReader::new(&[4])),
            Err(CodecError::Invalid("message class tag"))
        );
    }
}
