//! Per-subnet quiescence tracking for the event-horizon stepping
//! engine.
//!
//! A subnet is **quiescent** when nothing is in motion: zero flits in
//! input buffers, crossbar registers, link staging or ejection buffers,
//! and no credit in flight. In that state every subsequent
//! [`Network::step`] is a pure idle tick per router, so the simulator
//! may replace a whole run of them with one closed-form
//! [`Network::fast_forward`] — *provided* the skip ends before the
//! next cycle at which anything could change. The tracker bundles the
//! quiescence predicate with that horizon computation and counts how
//! often each outcome occurred, so the multi-NoC layer (and benches)
//! can report how much of a run was skippable.
//!
//! What bounds the horizon (see DESIGN.md §11 for the full safety
//! argument):
//!
//! * a router in `WakeUp { remaining }` completes its countdown after
//!   `remaining` ticks — the completing tick resets idle counters and
//!   emits the telemetry Wake→Active edge, so it must be simulated;
//! * an Active router (or port, under port gating) on a subnet the
//!   gating policy sweeps every cycle becomes gate-ripe once its idle
//!   counter reaches `t_idle_detect` — the gating cycle must be
//!   simulated so the Active→Sleep edge lands on the right cycle;
//! * Sleep, and Active routers no policy will ever gate, are stable
//!   indefinitely (their counters advance by plain addition).
//!
//! Everything else that happens per cycle in a quiescent subnet — RCS
//! countdowns latching an all-false sample, congestion-detector windows
//! rotating with zero traffic — has a closed form handled (and bounded,
//! where history makes a window "dirty") by the `catnap` core crate,
//! which owns those structures.

use crate::network::Network;
use catnap_telemetry::Sink;

/// The verdict of one quiescence assessment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quiescence {
    /// Flits or credits are in motion; every cycle must be stepped.
    Busy,
    /// Nothing is in motion; up to the contained number of cycles can
    /// be fast-forwarded before a power-state class changes in this
    /// subnet (`u64::MAX` = unbounded by this subnet).
    QuietFor(u64),
}

impl Quiescence {
    /// The skip bound this verdict contributes: 0 when busy.
    pub fn horizon(self) -> u64 {
        match self {
            Quiescence::Busy => 0,
            Quiescence::QuietFor(dt) => dt,
        }
    }
}

/// Tracks quiescence of one subnet across a run.
///
/// Stateless with respect to the verdict (everything is recomputed from
/// O(1) occupancy counters plus an O(routers) horizon scan), but keeps
/// running totals so the skip effectiveness is observable.
#[derive(Clone, Debug, Default)]
pub struct QuiescenceTracker {
    assessments: u64,
    quiescent_hits: u64,
}

impl QuiescenceTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        QuiescenceTracker::default()
    }

    /// Assesses `net`: is it quiescent, and if so, for how many cycles
    /// is it guaranteed to stay transition-free? `may_sleep` tells
    /// whether the active gating policy issues sleep requests to this
    /// subnet each cycle (see [`Network::skip_horizon`]).
    pub fn assess<S: Sink>(&mut self, net: &Network<S>, may_sleep: bool) -> Quiescence {
        self.assessments += 1;
        if !net.is_quiescent() {
            return Quiescence::Busy;
        }
        self.quiescent_hits += 1;
        Quiescence::QuietFor(net.skip_horizon(may_sleep))
    }

    /// Total assessments made.
    pub fn assessments(&self) -> u64 {
        self.assessments
    }

    /// Assessments that found the subnet quiescent.
    pub fn quiescent_hits(&self) -> u64 {
        self.quiescent_hits
    }

    /// Rebuilds a tracker from counters saved via
    /// [`QuiescenceTracker::assessments`] and
    /// [`QuiescenceTracker::quiescent_hits`] (checkpoint resume).
    pub fn from_counters(assessments: u64, quiescent_hits: u64) -> Self {
        QuiescenceTracker {
            assessments,
            quiescent_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::geometry::{MeshDims, NodeId};

    #[test]
    fn tracker_distinguishes_busy_from_quiet() {
        let cfg = NetworkConfig::with_width(128).dims(MeshDims::new(4, 4)).gating_enabled(true);
        let mut net = Network::new(cfg);
        let mut tracker = QuiescenceTracker::new();
        assert_eq!(
            tracker.assess(&net, true),
            Quiescence::QuietFor(4),
            "fresh net: quiet until idle detect"
        );
        let f = net.make_single_flit_packet(NodeId(0), NodeId(15), 0);
        assert!(net.try_inject_flit(NodeId(0), 0, f));
        assert_eq!(tracker.assess(&net, true), Quiescence::Busy);
        assert_eq!(tracker.assess(&net, true).horizon(), 0);
        for _ in 0..60 {
            net.step();
            net.drain_ejected();
        }
        // Delivered and drained: quiet again, with matured idle counters.
        assert_eq!(
            tracker.assess(&net, true),
            Quiescence::QuietFor(0),
            "gate-ripe routers bound the skip to 0"
        );
        assert_eq!(
            tracker.assess(&net, false),
            Quiescence::QuietFor(u64::MAX),
            "ungated subnets are unbounded"
        );
        assert_eq!(tracker.assessments(), 5);
        assert_eq!(tracker.quiescent_hits(), 3);
    }

    #[test]
    fn fast_forward_after_assessment_matches_stepping() {
        let cfg = NetworkConfig::with_width(128).dims(MeshDims::new(4, 4)).gating_enabled(true);
        let mut stepped = Network::new(cfg);
        for _ in 0..10 {
            stepped.step();
        }
        assert!(stepped.request_sleep(NodeId(3)));
        let mut skipped = stepped.clone();
        let mut tracker = QuiescenceTracker::new();
        // No policy sweeps this standalone subnet, so the horizon is
        // unbounded; skip far and compare against real stepping.
        let Quiescence::QuietFor(h) = tracker.assess(&skipped, false) else {
            panic!("drained network must be quiescent");
        };
        assert_eq!(h, u64::MAX);
        for _ in 0..300 {
            stepped.step();
        }
        skipped.fast_forward(300);
        assert_eq!(skipped.cycle(), stepped.cycle());
        assert_eq!(skipped.stats().cycles, stepped.stats().cycles);
        // The event scheduler defers idle accounting; materialize both
        // nets so raw fingerprints are comparable.
        stepped.materialize();
        skipped.materialize();
        for node in stepped.dims().nodes() {
            assert_eq!(
                skipped.router(node).power_fingerprint(),
                stepped.router(node).power_fingerprint(),
                "divergence at {node}"
            );
        }
    }
}
