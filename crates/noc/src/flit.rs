//! Packets and flits: the units of data transfer in the network.
//!
//! A packet of `B` bits travelling on a subnet with datapath width `W`
//! is serialized into `ceil(B / W)` flits. All flits of a packet travel on
//! the same subnet and, per wormhole switching, follow the head flit's
//! path, holding one virtual channel per router until the tail passes.

use crate::geometry::{NodeId, Port};
use std::fmt;

/// Globally unique packet identifier (unique per simulation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Coherence-protocol message class of a packet.
///
/// The paper maps dependent message classes to disjoint virtual channels to
/// guarantee protocol-level deadlock freedom (Section 2.3). Synthetic
/// traffic uses [`MessageClass::Synthetic`], which may use any VC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MessageClass {
    /// Coherence request (GetS/GetM/upgrade); 1-flit control packets.
    Request,
    /// Directory-forwarded request or invalidation; 1-flit control packets.
    Forward,
    /// Data or acknowledgement response; carries a cache block.
    Response,
    /// Synthetic benchmark traffic (no protocol deadlock concerns).
    #[default]
    Synthetic,
}

impl MessageClass {
    /// All classes.
    pub const ALL: [MessageClass; 4] = [
        MessageClass::Request,
        MessageClass::Forward,
        MessageClass::Response,
        MessageClass::Synthetic,
    ];

    /// Bitmask of virtual channels this class may use, given `vcs` VCs per
    /// port.
    ///
    /// With four VCs (the paper's configuration) the mapping is: requests on
    /// VC 0, forwards on VC 1, responses on VCs 2-3, synthetic traffic on
    /// any VC. With fewer VCs the classes share conservatively while keeping
    /// request/response disjoint (the property required for deadlock
    /// freedom in a MESI directory protocol).
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0` or `vcs > 64`.
    pub fn vc_mask(self, vcs: usize) -> u64 {
        assert!(vcs > 0 && vcs <= 64, "vcs must be in 1..=64");
        let all: u64 = if vcs == 64 { u64::MAX } else { (1u64 << vcs) - 1 };
        if vcs == 1 {
            return all;
        }
        match self {
            MessageClass::Synthetic => all,
            MessageClass::Request => 1,
            MessageClass::Forward => {
                if vcs >= 3 {
                    0b10
                } else {
                    0b01
                }
            }
            MessageClass::Response => {
                if vcs >= 3 {
                    // All remaining higher VCs.
                    all & !0b11
                } else {
                    0b10
                }
            }
        }
    }
}

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet; releases the wormhole.
    Tail,
    /// The only flit of a single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// Whether this flit opens a wormhole (carries routing info).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit closes the wormhole.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// A flow-control unit traversing the network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Index of this flit within the packet (0 = head).
    pub seq: u16,
    /// Total number of flits in the packet.
    pub packet_len: u16,
    /// Message class (controls the VC mask).
    pub class: MessageClass,
    /// Output port to take at the router currently buffering this flit.
    ///
    /// Maintained by look-ahead routing: when a flit leaves a router, the
    /// *next* router's output port is computed and stored here, so routing
    /// computation is off the critical path (Galles, Hot Interconnects '96).
    pub lookahead: Port,
    /// Virtual channel this flit travels on (assigned per-hop by the
    /// upstream router's VC allocation).
    pub vc: u8,
    /// Cycle at which the packet was created at the source (for end-to-end
    /// latency, including source queueing).
    pub created_cycle: u64,
    /// Cycle at which the head flit entered the network proper (first
    /// router buffer), for network-only latency.
    pub net_inject_cycle: u64,
}

impl Flit {
    /// An inert filler flit used to initialize fixed-capacity storage
    /// (the inline VC ring buffers). Never enters the network: slots
    /// holding it are outside the live `head..head+len` window.
    pub const PLACEHOLDER: Flit = Flit {
        packet: PacketId(u64::MAX),
        kind: FlitKind::Single,
        src: NodeId(0),
        dst: NodeId(0),
        seq: 0,
        packet_len: 0,
        class: MessageClass::Synthetic,
        lookahead: Port::Local,
        vc: 0,
        created_cycle: 0,
        net_inject_cycle: 0,
    };

    /// Number of flits needed to carry `packet_bits` over a `link_width_bits`
    /// datapath (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `link_width_bits` is zero.
    pub fn flits_for_bits(packet_bits: u32, link_width_bits: u32) -> u16 {
        assert!(link_width_bits > 0, "link width must be non-zero");
        packet_bits.div_ceil(link_width_bits).max(1) as u16
    }
}

/// Descriptor of a packet awaiting injection (the NI-side representation:
/// flits are materialized lazily as they enter the network).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketDescriptor {
    /// Unique packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload plus header size in bits (serialized into flits per subnet
    /// width).
    pub bits: u32,
    /// Message class.
    pub class: MessageClass,
    /// Cycle the packet was created at its source.
    pub created_cycle: u64,
}

impl PacketDescriptor {
    /// Number of flits this packet occupies on a subnet of the given width.
    pub fn len_flits(&self, link_width_bits: u32) -> u16 {
        Flit::flits_for_bits(self.bits, link_width_bits)
    }

    /// Materializes flit `seq` of this packet for a subnet of the given
    /// width. `lookahead` must be the output port at the first router.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the packet length.
    pub fn flit(&self, seq: u16, link_width_bits: u32, lookahead: Port, net_inject_cycle: u64) -> Flit {
        let len = self.len_flits(link_width_bits);
        assert!(seq < len, "flit seq {seq} out of range for packet of {len} flits");
        let kind = match (seq, len) {
            (0, 1) => FlitKind::Single,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Flit {
            packet: self.id,
            kind,
            src: self.src,
            dst: self.dst,
            seq,
            packet_len: len,
            class: self.class,
            lookahead,
            vc: 0,
            created_cycle: self.created_cycle,
            net_inject_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up() {
        assert_eq!(Flit::flits_for_bits(512, 512), 1);
        assert_eq!(Flit::flits_for_bits(512, 128), 4);
        assert_eq!(Flit::flits_for_bits(512, 64), 8);
        assert_eq!(Flit::flits_for_bits(584, 128), 5);
        assert_eq!(Flit::flits_for_bits(72, 512), 1);
        assert_eq!(Flit::flits_for_bits(0, 128), 1, "zero-size packets still take one flit");
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        Flit::flits_for_bits(512, 0);
    }

    #[test]
    fn kinds_for_multi_flit_packet() {
        let d = PacketDescriptor {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(5),
            bits: 512,
            class: MessageClass::Synthetic,
            created_cycle: 0,
        };
        let kinds: Vec<FlitKind> = (0..4).map(|s| d.flit(s, 128, Port::East, 0).kind).collect();
        assert_eq!(
            kinds,
            vec![FlitKind::Head, FlitKind::Body, FlitKind::Body, FlitKind::Tail]
        );
    }

    #[test]
    fn kind_for_single_flit_packet() {
        let d = PacketDescriptor {
            id: PacketId(2),
            src: NodeId(0),
            dst: NodeId(5),
            bits: 72,
            class: MessageClass::Request,
            created_cycle: 10,
        };
        let f = d.flit(0, 512, Port::Local, 12);
        assert_eq!(f.kind, FlitKind::Single);
        assert!(f.kind.is_head() && f.kind.is_tail());
        assert_eq!(f.created_cycle, 10);
        assert_eq!(f.net_inject_cycle, 12);
    }

    #[test]
    fn vc_masks_disjoint_for_protocol_classes() {
        for vcs in [2usize, 3, 4, 8] {
            let req = MessageClass::Request.vc_mask(vcs);
            let rsp = MessageClass::Response.vc_mask(vcs);
            assert_eq!(req & rsp, 0, "request/response VCs must be disjoint at {vcs} VCs");
            assert_ne!(req, 0);
            assert_ne!(rsp, 0);
            assert_ne!(MessageClass::Forward.vc_mask(vcs), 0);
        }
    }

    #[test]
    fn synthetic_uses_all_vcs() {
        assert_eq!(MessageClass::Synthetic.vc_mask(4), 0b1111);
        assert_eq!(MessageClass::Synthetic.vc_mask(1), 0b1);
    }

    #[test]
    fn forward_disjoint_from_response_with_three_plus_vcs() {
        for vcs in [3usize, 4, 6] {
            let fwd = MessageClass::Forward.vc_mask(vcs);
            let rsp = MessageClass::Response.vc_mask(vcs);
            assert_eq!(fwd & rsp, 0);
        }
    }
}
