//! One physical network (subnet): a mesh of routers connected by
//! one-cycle links, with staged (two-phase) transfer so simulation results
//! are independent of router iteration order.

use crate::config::NetworkConfig;
use crate::flit::{Flit, FlitKind, MessageClass, PacketId};
use crate::geometry::{MeshDims, NodeId, Port, NUM_PORTS};
use crate::power_state::{PowerState, WakeReason};
use crate::router::{Router, RouterOutput};
use crate::stats::{GatingActivity, NetworkStats, RouterActivity};
use catnap_telemetry::{Event, NopSink, PowerPhase, Sink};

/// A single physical network-on-chip (one subnet of a Multi-NoC).
///
/// The network advances in discrete cycles via [`Network::step`]. Flits are
/// injected at local ports between steps (by the network interface layer in
/// the `catnap` crate, or directly in tests) and ejected flits are drained
/// via [`Network::drain_ejected`].
///
/// The network is generic over a telemetry [`Sink`], defaulting to
/// [`NopSink`]: the default monomorphization carries no instrumentation
/// at all (every `if S::ENABLED` point is compiled out), while
/// [`Network::with_sink`] builds a recording instance that emits a
/// [`Event::Power`] for every router power-phase transition.
#[derive(Clone, Debug)]
pub struct Network<S: Sink = NopSink> {
    cfg: NetworkConfig,
    routers: Vec<Router>,
    /// Flits that completed switch traversal this cycle and are entering
    /// the link: `(router index, input port, flit)`.
    link_stage: Vec<(usize, Port, Flit)>,
    /// Flits finishing their link cycle: delivered to input buffers at the
    /// start of the next step. `(router index, input port, flit)`.
    staged_flits: Vec<(usize, Port, Flit)>,
    /// Credits in flight: `(router index, output port, vc)`.
    staged_credits: Vec<(usize, Port, u8)>,
    /// Flits ejected this step, awaiting pickup by the NI layer.
    ejected: Vec<(NodeId, Flit)>,
    stats: NetworkStats,
    cycle: u64,
    next_packet_id: u64,
    /// Scratch buffer reused across router steps.
    scratch: RouterOutput,
    /// Precomputed adjacency: `adj[idx][p]` is the router index across
    /// mesh port `p` of router `idx`, or [`NO_NEIGHBOR`] at a mesh edge
    /// (and always for the local port).
    adj: Vec<[usize; NUM_PORTS]>,
    /// Precomputed X-Y routes, indexed `[at * num_nodes + dst]`.
    route_lut: Vec<Port>,
    /// In-flight flits per `(router idx, input port)`, flattened: counts
    /// entries of `link_stage` plus `staged_flits` headed to that input,
    /// so the sleep guards need no linear scan.
    inflight: Vec<u32>,
    /// Disables the drained-router fast path so every router runs the
    /// full `step` each cycle (perf baseline; results are identical).
    force_full_step: bool,
    /// Telemetry sink; [`NopSink`] by default, which erases every
    /// instrumentation point at monomorphization.
    sink: S,
    /// Last power phase reported per router, so transitions that happen
    /// inside `Router::step`/`idle_tick` (wake-up countdowns completing)
    /// are detected by comparison at the end of the step. Empty for the
    /// `NopSink` monomorphization.
    power_shadow: Vec<PowerPhase>,
}

/// Marker in the adjacency table for "no link in this direction".
const NO_NEIGHBOR: usize = usize::MAX;

/// Debug builds cross-check [`Network::fast_forward`] against a
/// cycle-by-cycle replay of cloned routers for skips up to this many
/// cycles (longer skips would make debug runs quadratic; the bounded
/// replay still covers every horizon-limited skip shape, since idle
/// maturation, wake-up countdowns and detector windows are all far
/// shorter than this).
pub const SHADOW_REPLAY_MAX: u64 = 512;

impl Network {
    /// Builds a network from a validated configuration, without
    /// telemetry (the [`NopSink`] monomorphization).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NetworkConfig::validate`]).
    pub fn new(cfg: NetworkConfig) -> Self {
        Network::with_sink(cfg, NopSink)
    }
}

impl<S: Sink> Network<S> {
    /// Builds a network that reports router power-phase transitions to
    /// `sink`. Telemetry is observation-only: the simulation is
    /// bit-identical with any sink (the determinism suite asserts this).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NetworkConfig::validate`]).
    pub fn with_sink(cfg: NetworkConfig, sink: S) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid network configuration: {e}");
        }
        let dims = cfg.dims;
        let routers = dims
            .nodes()
            .map(|node| {
                let mut connected = [false; NUM_PORTS];
                connected[Port::Local.index()] = true;
                for dir in crate::geometry::Direction::ALL {
                    if dims.neighbor(node, dir).is_some() {
                        connected[Port::from(dir).index()] = true;
                    }
                }
                let mut router = Router::new(
                    node,
                    cfg.vcs_per_port,
                    cfg.vc_depth,
                    connected,
                    cfg.gating.t_wakeup,
                    cfg.gating.t_breakeven,
                    cfg.gating.t_idle_detect,
                );
                if cfg.port_gating {
                    router.enable_port_gating();
                }
                router
            })
            .collect();
        let n = dims.num_nodes();
        let adj = dims
            .nodes()
            .map(|node| {
                let mut row = [NO_NEIGHBOR; NUM_PORTS];
                for dir in crate::geometry::Direction::ALL {
                    if let Some(nbr) = dims.neighbor(node, dir) {
                        row[Port::from(dir).index()] = nbr.index();
                    }
                }
                row
            })
            .collect();
        let mut route_lut = Vec::with_capacity(n * n);
        for at in dims.nodes() {
            for dst in dims.nodes() {
                route_lut.push(dims.xy_route(at, dst));
            }
        }
        Network {
            cfg,
            routers,
            link_stage: Vec::new(),
            staged_flits: Vec::new(),
            staged_credits: Vec::new(),
            ejected: Vec::new(),
            stats: NetworkStats::default(),
            cycle: 0,
            next_packet_id: 0,
            scratch: RouterOutput::default(),
            adj,
            route_lut,
            inflight: vec![0; n * NUM_PORTS],
            force_full_step: false,
            sink,
            power_shadow: if S::ENABLED { vec![PowerPhase::Active; n] } else { Vec::new() },
        }
    }

    /// Mutable access to the telemetry sink (to drain a recording sink
    /// or read a counting one).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Hands back the events the sink accumulated so far, leaving it
    /// empty. Returns nothing for sinks that retain nothing.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.sink.drain()
    }

    /// Emits a [`Event::Power`] if `idx`'s router is in a different
    /// phase than last reported. Compiled out entirely for [`NopSink`].
    #[inline]
    fn note_power(&mut self, idx: usize) {
        if S::ENABLED {
            let now = PowerPhase::from(self.routers[idx].power_state());
            let before = self.power_shadow[idx];
            if now != before {
                self.power_shadow[idx] = now;
                self.sink.record(Event::Power {
                    cycle: self.cycle,
                    node: idx as u16,
                    from: before,
                    to: now,
                });
            }
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Mesh dimensions.
    pub fn dims(&self) -> MeshDims {
        self.cfg.dims
    }

    /// Current cycle (number of completed steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Immutable access to a node's router (for congestion metrics).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Whether a node's router is in the active power state.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.routers[node.index()].power_state().is_active()
    }

    /// Power state of a node's router.
    pub fn power_state(&self, node: NodeId) -> PowerState {
        self.routers[node.index()].power_state()
    }

    /// Attempts to inject a flit at `node`'s local port into virtual
    /// channel `vc`. Returns `false` (without side effects) if the router
    /// is not active or the VC has no free slot.
    ///
    /// The caller (network interface) is responsible for wormhole
    /// discipline: flits of one packet must be injected contiguously into
    /// one VC, with `flit.lookahead` set to the route at this first router
    /// (see [`Network::route_at`]).
    pub fn try_inject_flit(&mut self, node: NodeId, vc: usize, mut flit: Flit) -> bool {
        let router = &mut self.routers[node.index()];
        if !router.port_active(Port::Local) || router.local_vc_free_space(vc) == 0 {
            return false;
        }
        flit.vc = vc as u8;
        if let Some(ping_dir) = router.deliver(Port::Local, flit) {
            self.wake_neighbor(node, ping_dir);
        }
        self.stats.flits_injected += 1;
        true
    }

    /// The X-Y route output port for a packet at `at` headed to `dst`
    /// (used by NIs to set the look-ahead field at injection).
    pub fn route_at(&self, at: NodeId, dst: NodeId) -> Port {
        self.route_lut[at.index() * self.cfg.dims.num_nodes() + dst.index()]
    }

    /// Disables (or re-enables) the drained-router fast path in
    /// [`Network::step`]. Results are bit-identical either way; forcing
    /// the full step exists so benchmarks can measure the speedup of the
    /// fast path against the naive walk-everything loop.
    pub fn set_force_full_step(&mut self, force: bool) {
        self.force_full_step = force;
    }

    /// Whether `node` can accept NI injections right now (its router and,
    /// with port gating, its local input port are powered).
    pub fn can_inject(&self, node: NodeId) -> bool {
        self.routers[node.index()].port_active(Port::Local)
    }

    /// Requests a wake-up of `node`'s router (and, with port gating, of
    /// its local input port).
    pub fn request_wake(&mut self, node: NodeId, reason: WakeReason) {
        let cycle = self.cycle;
        let r = &mut self.routers[node.index()];
        r.request_wake(cycle, reason);
        r.request_wake_port(Port::Local, cycle, reason);
        self.note_power(node.index());
    }

    /// Requests wake-up of every router (used when the lower-order
    /// subnet's regional congestion turns on).
    pub fn request_wake_all(&mut self, reason: WakeReason) {
        let cycle = self.cycle;
        for r in &mut self.routers {
            r.request_wake(cycle, reason);
        }
        if S::ENABLED {
            for idx in 0..self.routers.len() {
                self.note_power(idx);
            }
        }
    }

    /// Whether `node`'s router may be safely gated right now: the
    /// router-local guard holds (drained, idle long enough) *and* no
    /// neighbour holds an open wormhole towards it or has flits in flight
    /// to it.
    pub fn can_sleep(&self, node: NodeId) -> bool {
        if !self.cfg.gating_enabled {
            return false;
        }
        let router = &self.routers[node.index()];
        if !router.sleep_guard_ok() {
            return false;
        }
        // No in-flight flits on links towards this node.
        let base = node.index() * NUM_PORTS;
        debug_assert_eq!(
            self.inflight[base..base + NUM_PORTS].iter().map(|&c| c as usize).sum::<usize>(),
            self.staged_flits
                .iter()
                .chain(self.link_stage.iter())
                .filter(|(idx, _, _)| *idx == node.index())
                .count(),
            "in-flight counters out of sync at {node}"
        );
        if self.inflight[base..base + NUM_PORTS].iter().any(|&c| c > 0) {
            return false;
        }
        // No neighbour with an open wormhole or crossbar flit towards us.
        for port in [Port::North, Port::East, Port::South, Port::West] {
            let nbr = self.adj[node.index()][port.index()];
            if nbr == NO_NEIGHBOR {
                continue;
            }
            let towards_us = port.opposite();
            let nr = &self.routers[nbr];
            if nr.outbound_binding_ports()[towards_us.index()] || nr.xbar_holds_toward(towards_us) {
                return false;
            }
        }
        true
    }

    /// Gates `node`'s router if [`Network::can_sleep`] holds. Returns
    /// whether the router was put to sleep.
    pub fn request_sleep(&mut self, node: NodeId) -> bool {
        if self.can_sleep(node) {
            let cycle = self.cycle;
            self.routers[node.index()].enter_sleep(cycle);
            self.note_power(node.index());
            true
        } else {
            false
        }
    }

    /// Whether input port `port` of `node`'s router may be gated: the
    /// port-local guard holds, no flit is in flight on its link, and the
    /// upstream router holds no wormhole towards it. The local port
    /// additionally relies on the NI's wake-on-demand.
    pub fn can_sleep_port(&self, node: NodeId, port: Port) -> bool {
        if !self.cfg.gating_enabled {
            return false;
        }
        let router = &self.routers[node.index()];
        if !router.port_sleep_guard_ok(port) {
            return false;
        }
        debug_assert_eq!(
            self.inflight[node.index() * NUM_PORTS + port.index()] as usize,
            self.staged_flits
                .iter()
                .chain(self.link_stage.iter())
                .filter(|(idx, p, _)| *idx == node.index() && *p == port)
                .count(),
            "in-flight counter out of sync at {node}:{port}"
        );
        if self.inflight[node.index() * NUM_PORTS + port.index()] > 0 {
            return false;
        }
        if port != Port::Local {
            let upstream = self.adj[node.index()][port.index()];
            if upstream != NO_NEIGHBOR {
                let towards_us = port.opposite();
                let ur = &self.routers[upstream];
                if ur.outbound_binding_ports()[towards_us.index()] || ur.xbar_holds_toward(towards_us) {
                    return false;
                }
            }
        }
        true
    }

    /// Gates one input port if [`Network::can_sleep_port`] holds.
    pub fn request_sleep_port(&mut self, node: NodeId, port: Port) -> bool {
        if self.can_sleep_port(node, port) {
            let cycle = self.cycle;
            self.routers[node.index()].enter_port_sleep(port, cycle);
            true
        } else {
            false
        }
    }

    /// Drains flits ejected during the most recent step, with their
    /// destination nodes.
    pub fn drain_ejected(&mut self) -> Vec<(NodeId, Flit)> {
        std::mem::take(&mut self.ejected)
    }

    /// Appends the flits ejected during the most recent step to `buf`,
    /// leaving the internal ejection buffer empty but with its capacity
    /// intact. Allocation-free steady state, unlike
    /// [`Network::drain_ejected`].
    pub fn drain_ejected_into(&mut self, buf: &mut Vec<(NodeId, Flit)>) {
        buf.append(&mut self.ejected);
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;

        // Phase 1: deliver flits that completed their link cycle, and
        // advance flits leaving crossbars onto the link.
        let mut delivered = std::mem::take(&mut self.staged_flits);
        for &(idx, port, flit) in &delivered {
            self.inflight[idx * NUM_PORTS + port.index()] -= 1;
            let node = self.routers[idx].node();
            if let Some(ping_dir) = self.routers[idx].deliver(port, flit) {
                self.wake_neighbor(node, ping_dir);
            }
        }
        // Rotate buffers so their capacity is reused: flits placed on
        // links last cycle are now in transit, and the consumed vector
        // becomes the empty backing store for this cycle's link pushes.
        delivered.clear();
        self.staged_flits = std::mem::replace(&mut self.link_stage, delivered);
        let mut credits = std::mem::take(&mut self.staged_credits);
        for &(idx, port, vc) in &credits {
            self.routers[idx].return_credit(port, vc);
        }
        credits.clear();
        self.staged_credits = credits;

        // Phase 2: step every router; collect outputs into fresh staging.
        //
        // Fast path: a drained router (no buffered flits, empty crossbar
        // register) cannot allocate, traverse, eject, or emit credits or
        // wake pings — its `step` reduces to advancing the idle counters
        // and power-state machines, which `idle_tick` does without ever
        // reading neighbour state. Skipping the full step for such
        // routers is therefore invisible to every observable (goldens,
        // residency counters, activity counters); at light load with
        // gating, the per-cycle cost drops roughly with the fraction of
        // sleeping/idle routers — the simulation-speed analogue of the
        // paper's energy proportionality.
        let n = self.cfg.dims.num_nodes();
        let force_full = self.force_full_step;
        for idx in 0..self.routers.len() {
            if !force_full && self.routers[idx].is_drained() {
                self.routers[idx].idle_tick();
                continue;
            }
            let adj = self.adj[idx];
            let node = self.routers[idx].node();
            // Snapshot which neighbours can accept flits this cycle: the
            // downstream router must be active and (with port gating) so
            // must the specific input port our link feeds.
            let mut neighbor_active = [true; NUM_PORTS];
            for port in [Port::North, Port::East, Port::South, Port::West] {
                let pi = port.index();
                neighbor_active[pi] = match adj[pi] {
                    NO_NEIGHBOR => false,
                    nbr => self.routers[nbr].port_active(port.opposite()),
                };
            }

            let mut out = std::mem::take(&mut self.scratch);
            self.routers[idx].step(&neighbor_active, &mut out);

            for ob in &out.outbound {
                let opi = ob.out_port.index();
                let nbr = adj[opi];
                debug_assert!(nbr != NO_NEIGHBOR, "link to nowhere");
                let in_port = ob.out_port.opposite();
                let mut flit = ob.flit;
                // Look-ahead routing: compute the output port at the next
                // router before the flit arrives there.
                flit.lookahead = self.route_lut[nbr * n + flit.dst.index()];
                self.inflight[nbr * NUM_PORTS + in_port.index()] += 1;
                self.link_stage.push((nbr, in_port, flit));
            }
            for cr in &out.credits {
                let ipi = cr.in_port.index();
                let upstream = adj[ipi];
                debug_assert!(upstream != NO_NEIGHBOR, "credit to nowhere");
                // The upstream router's output port towards us.
                let up_out = cr.in_port.opposite();
                self.staged_credits.push((upstream, up_out, cr.vc));
            }
            for flit in out.ejected.drain(..) {
                self.record_ejection(node, flit);
            }
            for &ping in &out.wake_pings {
                self.wake_neighbor(node, ping);
            }
            self.scratch = out;
        }

        // Telemetry: catch transitions that happened inside the router
        // steps themselves (wake-up countdowns completing in
        // `psm.tick`), which no explicit request call observed.
        if S::ENABLED {
            for idx in 0..self.routers.len() {
                self.note_power(idx);
            }
        }
    }

    fn record_ejection(&mut self, node: NodeId, flit: Flit) {
        debug_assert_eq!(flit.dst, node, "flit ejected at wrong node");
        self.stats.flits_ejected += 1;
        if flit.kind.is_tail() {
            self.stats.packets_ejected += 1;
            let lat = self.cycle.saturating_sub(flit.net_inject_cycle);
            self.stats.net_latency_sum += lat;
            self.stats.net_latency_max = self.stats.net_latency_max.max(lat);
            self.stats.hops_sum += u64::from(self.cfg.dims.hop_distance(flit.src, flit.dst));
        }
        self.ejected.push((node, flit));
    }

    fn wake_neighbor(&mut self, node: NodeId, dir_port: Port) {
        if let Some(dir) = dir_port.direction() {
            if let Some(nbr) = self.cfg.dims.neighbor(node, dir) {
                let cycle = self.cycle;
                let r = &mut self.routers[nbr.index()];
                r.request_wake(cycle, WakeReason::LookaheadSignal);
                // With port gating, wake the specific input port our link
                // feeds.
                r.request_wake_port(Port::from(dir.opposite()), cycle, WakeReason::LookaheadSignal);
                self.note_power(nbr.index());
            }
        }
    }

    /// Sum of router activity counters across the network.
    pub fn total_activity(&self) -> RouterActivity {
        self.routers
            .iter()
            .map(|r| r.activity)
            .fold(RouterActivity::default(), RouterActivity::merged)
    }

    /// Sum of power-gating residency across the network.
    pub fn total_gating(&self) -> GatingActivity {
        self.routers
            .iter()
            .map(|r| r.gating_activity(self.cycle))
            .fold(GatingActivity::default(), GatingActivity::merged)
    }

    /// Per-router gating residency (indexed by node).
    pub fn gating_by_node(&self) -> Vec<GatingActivity> {
        self.routers.iter().map(|r| r.gating_activity(self.cycle)).collect()
    }

    /// Number of routers currently in each power state:
    /// `(active, sleeping, waking)`.
    pub fn power_state_census(&self) -> (usize, usize, usize) {
        let mut census = (0, 0, 0);
        for r in &self.routers {
            match r.power_state() {
                PowerState::Active => census.0 += 1,
                PowerState::Sleep => census.1 += 1,
                PowerState::WakeUp { .. } => census.2 += 1,
            }
        }
        census
    }

    /// Total flits currently buffered, in flight, or in crossbar registers
    /// (for conservation checks in tests). Single pass over the routers,
    /// reading each one's occupancy counter.
    pub fn flits_in_network(&self) -> usize {
        let in_routers: usize = self.routers.iter().map(Router::occupancy).sum();
        in_routers + self.staged_flits.len() + self.link_stage.len()
    }

    /// Whether the subnet is *quiescent*: no flit anywhere (buffers,
    /// crossbar registers, links, staging) and no credit in flight. In
    /// this state a [`Network::step`] degenerates to one `idle_tick`
    /// per router, which is what [`Network::fast_forward`] replaces
    /// with closed-form arithmetic.
    pub fn is_quiescent(&self) -> bool {
        self.staged_credits.is_empty() && self.ejected.is_empty() && self.flits_in_network() == 0
    }

    /// How many consecutive cycles can be skipped before some router of
    /// this subnet changes power-state class (wake-up completing, or —
    /// when `may_sleep` says the gating policy issues sleep requests to
    /// this subnet every cycle — an idle counter maturing past
    /// `t_idle_detect`). See [`Router::skip_horizon`]. Only meaningful
    /// while [`Network::is_quiescent`] holds.
    pub fn skip_horizon(&self, may_sleep: bool) -> u64 {
        self.routers
            .iter()
            .map(|r| r.skip_horizon(may_sleep))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Advances a **quiescent** network by `dt` cycles in O(routers)
    /// arithmetic: the clock, cycle statistics, idle counters and
    /// power-state residencies move exactly as `dt` [`Network::step`]
    /// calls would have moved them, with no per-cycle work. The caller
    /// must keep `dt` within [`Network::skip_horizon`], so no
    /// power-phase transition can fall inside the interval — which is
    /// also why no telemetry event is ever emitted (or missed) here.
    ///
    /// In debug builds, skips up to [`SHADOW_REPLAY_MAX`] cycles are
    /// shadow-replayed: the routers are cloned and ticked cycle by
    /// cycle, and the closed form must match field-for-field.
    pub fn fast_forward(&mut self, dt: u64) {
        debug_assert!(self.is_quiescent(), "fast_forward on a non-quiescent network");
        if dt == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        let shadow: Option<Vec<Router>> = (dt <= SHADOW_REPLAY_MAX).then(|| self.routers.clone());
        self.cycle += dt;
        self.stats.cycles += dt;
        for r in &mut self.routers {
            r.fast_forward(dt);
        }
        #[cfg(debug_assertions)]
        if let Some(mut shadow) = shadow {
            for r in &mut shadow {
                for _ in 0..dt {
                    r.idle_tick();
                }
            }
            for (replayed, skipped) in shadow.iter().zip(&self.routers) {
                debug_assert_eq!(
                    replayed.power_fingerprint(),
                    skipped.power_fingerprint(),
                    "fast_forward({dt}) diverged from cycle-by-cycle replay at {}",
                    skipped.node()
                );
            }
        }
    }

    /// Closes out gating accounting (call once at the end of a run before
    /// reading [`Network::total_gating`]).
    pub fn finalize(&mut self) {
        let cycle = self.cycle;
        for r in &mut self.routers {
            r.finalize(cycle);
        }
    }

    /// Convenience for tests and examples: builds a single-flit synthetic
    /// packet from `src` to `dst` with the correct look-ahead field, ready
    /// for [`Network::try_inject_flit`].
    pub fn make_single_flit_packet(&mut self, src: NodeId, dst: NodeId, created_cycle: u64) -> Flit {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        Flit {
            packet: id,
            kind: FlitKind::Single,
            src,
            dst,
            seq: 0,
            packet_len: 1,
            class: MessageClass::Synthetic,
            lookahead: self.route_at(src, dst),
            vc: 0,
            created_cycle,
            net_inject_cycle: self.cycle + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatingConfig;
    use crate::geometry::MeshDims;

    fn small_net(gating: bool) -> Network {
        let cfg = NetworkConfig::with_width(128)
            .dims(MeshDims::new(4, 4))
            .gating_enabled(gating);
        Network::new(cfg)
    }

    #[test]
    fn single_flit_end_to_end() {
        let mut net = small_net(false);
        let src = NodeId(0);
        let dst = NodeId(15);
        let flit = net.make_single_flit_packet(src, dst, 0);
        assert!(net.try_inject_flit(src, 0, flit));
        let mut ejections = Vec::new();
        for _ in 0..60 {
            net.step();
            ejections.extend(net.drain_ejected());
        }
        assert_eq!(ejections.len(), 1);
        assert_eq!(ejections[0].0, dst);
        assert_eq!(net.stats().packets_ejected, 1);
        // 6 hops on a 4x4 mesh corner-to-corner, ~3 cycles/hop.
        let lat = net.stats().avg_net_latency();
        assert!((18.0..=26.0).contains(&lat), "zero-load latency {lat} out of range");
    }

    #[test]
    fn injection_fails_when_vc_full() {
        let mut net = small_net(false);
        let src = NodeId(0);
        let dst = NodeId(3);
        for _ in 0..4 {
            let f = net.make_single_flit_packet(src, dst, 0);
            assert!(net.try_inject_flit(src, 0, f));
        }
        let f = net.make_single_flit_packet(src, dst, 0);
        assert!(!net.try_inject_flit(src, 0, f), "fifth flit must not fit in depth-4 VC");
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net = small_net(false);
        let dims = net.dims();
        let mut sent = 0u64;
        for round in 0..10 {
            for node in dims.nodes() {
                let dst = NodeId(((node.index() as u16) * 7 + 3 + round) % 16);
                if dst == node {
                    continue;
                }
                let f = net.make_single_flit_packet(node, dst, 0);
                if net.try_inject_flit(node, round as usize % 4, f) {
                    sent += 1;
                }
            }
            net.step();
        }
        for _ in 0..300 {
            net.step();
        }
        net.drain_ejected();
        assert_eq!(net.stats().packets_ejected, sent);
        assert_eq!(net.stats().flits_ejected, net.stats().flits_injected);
    }

    #[test]
    fn gated_network_sleeps_and_recovers() {
        let mut net = small_net(true);
        // Let everything idle out, then gate every router.
        for _ in 0..10 {
            net.step();
        }
        for node in net.dims().nodes() {
            assert!(net.can_sleep(node), "idle router must be gateable");
            assert!(net.request_sleep(node));
        }
        let (active, sleeping, _) = net.power_state_census();
        assert_eq!(active, 0);
        assert_eq!(sleeping, 16);
        // Wake the source and let a packet force wake-ups along its path.
        net.request_wake(NodeId(0), WakeReason::External);
        for _ in 0..GatingConfig::paper().t_wakeup as usize {
            net.step();
        }
        assert!(net.is_active(NodeId(0)));
        let f = net.make_single_flit_packet(NodeId(0), NodeId(15), 0);
        let f = Flit {
            net_inject_cycle: net.cycle() + 1,
            ..f
        };
        assert!(net.try_inject_flit(NodeId(0), 0, f));
        let mut got = Vec::new();
        for _ in 0..200 {
            net.step();
            got.extend(net.drain_ejected());
        }
        assert_eq!(got.len(), 1, "packet must be delivered through sleeping routers via wake-ups");
        // Latency includes wake-up stalls.
        assert!(net.stats().avg_net_latency() > 20.0);
    }

    #[test]
    fn sleep_denied_when_gating_disabled() {
        let mut net = small_net(false);
        for _ in 0..10 {
            net.step();
        }
        assert!(!net.can_sleep(NodeId(5)));
        assert!(!net.request_sleep(NodeId(5)));
    }

    #[test]
    fn sleep_denied_with_inbound_wormhole() {
        let mut net = small_net(true);
        // A 4-flit packet from node 0 to node 3 passes through nodes 1, 2.
        let src = NodeId(0);
        let dst = NodeId(3);
        let mut flits = Vec::new();
        let id = PacketId(999);
        for seq in 0..4u16 {
            let kind = match seq {
                0 => FlitKind::Head,
                3 => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            flits.push(Flit {
                packet: id,
                kind,
                src,
                dst,
                seq,
                packet_len: 4,
                class: MessageClass::Synthetic,
                lookahead: net.route_at(src, dst),
                vc: 0,
                created_cycle: 0,
                net_inject_cycle: 1,
            });
        }
        for f in flits {
            assert!(net.try_inject_flit(src, 0, f));
        }
        // Step until the head reaches node 1 and opens a wormhole onward.
        for _ in 0..3 {
            net.step();
        }
        // Node 2 must not be gateable while the wormhole from node 1 is
        // open or flits are in flight, even if its buffers are empty.
        let mut denied_while_traffic = false;
        for _ in 0..4 {
            if !net.can_sleep(NodeId(2)) {
                denied_while_traffic = true;
            }
            net.step();
        }
        assert!(denied_while_traffic);
        for _ in 0..100 {
            net.step();
        }
        net.drain_ejected();
        assert_eq!(net.stats().packets_ejected, 1);
    }

    #[test]
    fn census_and_conservation() {
        let mut net = small_net(false);
        let (a, s, w) = net.power_state_census();
        assert_eq!((a, s, w), (16, 0, 0));
        for i in 0..8u16 {
            let f = net.make_single_flit_packet(NodeId(i), NodeId(15 - i), 0);
            net.try_inject_flit(NodeId(i), 0, f);
        }
        net.step();
        net.step();
        let in_net = net.flits_in_network() as u64;
        assert_eq!(
            net.stats().flits_injected,
            net.stats().flits_ejected + in_net
        );
    }
}

#[cfg(test)]
mod port_gating_tests {
    use super::*;
    use crate::geometry::MeshDims;

    fn net(gating: bool) -> Network {
        Network::new(
            NetworkConfig::with_width(128)
                .dims(MeshDims::new(4, 4))
                .gating_enabled(gating)
                .port_gating(true),
        )
    }

    #[test]
    fn ports_gate_independently() {
        let mut n = net(true);
        for _ in 0..10 {
            n.step();
        }
        let node = NodeId(5);
        assert!(n.can_sleep_port(node, Port::North));
        assert!(n.request_sleep_port(node, Port::North));
        assert!(!n.router(node).port_active(Port::North));
        assert!(n.router(node).port_active(Port::East), "other ports unaffected");
        assert!(n.router(node).power_state().is_active(), "router itself stays on");
        // Whole-router gating is unavailable in port mode.
        assert!(!n.can_sleep(node));
    }

    #[test]
    fn packet_crosses_gated_ports_via_wakeups() {
        let mut n = net(true);
        for _ in 0..10 {
            n.step();
        }
        let mut gated = 0;
        for node in n.dims().nodes() {
            for port in Port::ALL {
                if n.request_sleep_port(node, port) {
                    gated += 1;
                }
            }
        }
        assert!(gated > 60, "most ports should gate, got {gated}");
        let f = n.make_single_flit_packet(NodeId(0), NodeId(15), 0);
        // The source's local port sleeps: injection fails, wake, retry.
        let mut injected = false;
        let mut got = Vec::new();
        for _ in 0..300 {
            if !injected {
                let mut f2 = f;
                f2.net_inject_cycle = n.cycle() + 1;
                if n.try_inject_flit(NodeId(0), 0, f2) {
                    injected = true;
                } else {
                    n.request_wake(NodeId(0), WakeReason::NiInjection);
                }
            }
            n.step();
            got.extend(n.drain_ejected());
        }
        assert_eq!(got.len(), 1, "packet must wake each port along its path");
    }

    #[test]
    fn port_gating_activity_counts_port_cycles() {
        let mut n = net(true);
        for _ in 0..20 {
            n.step();
        }
        let g = n.total_gating();
        let total = g.active_cycles + g.sleep_cycles + g.wakeup_cycles;
        assert_eq!(total, 5 * 16 * 20, "residency in port-cycles (5 ports x 16 routers)");
    }

    #[test]
    fn gating_disabled_blocks_port_sleep() {
        let mut n = net(false);
        for _ in 0..10 {
            n.step();
        }
        assert!(!n.can_sleep_port(NodeId(3), Port::West));
        assert!(!n.request_sleep_port(NodeId(3), Port::West));
    }
}
