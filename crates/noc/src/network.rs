//! One physical network (subnet): a mesh of routers connected by
//! one-cycle links, with staged (two-phase) transfer so simulation results
//! are independent of router iteration order.

use crate::checkpoint;
use crate::config::NetworkConfig;
use crate::flit::{Flit, FlitKind, MessageClass, PacketId};
use crate::geometry::{MeshDims, NodeId, Port, NUM_PORTS};
use crate::power_state::{PowerState, WakeReason};
use crate::router::{Router, RouterOutput};
use crate::stats::{GatingActivity, NetworkStats, RouterActivity};
use catnap_telemetry::{Event, NopSink, PowerPhase, Sink};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

mod sharded;

pub use sharded::SHARD_DISPATCH_MIN;

/// A single physical network-on-chip (one subnet of a Multi-NoC).
///
/// The network advances in discrete cycles via [`Network::step`]. Flits are
/// injected at local ports between steps (by the network interface layer in
/// the `catnap` crate, or directly in tests) and ejected flits are drained
/// via [`Network::drain_ejected`].
///
/// The network is generic over a telemetry [`Sink`], defaulting to
/// [`NopSink`]: the default monomorphization carries no instrumentation
/// at all (every `if S::ENABLED` point is compiled out), while
/// [`Network::with_sink`] builds a recording instance that emits a
/// [`Event::Power`] for every router power-phase transition.
#[derive(Clone, Debug)]
pub struct Network<S: Sink = NopSink> {
    cfg: NetworkConfig,
    routers: Vec<Router>,
    /// Flits that completed switch traversal this cycle and are entering
    /// the link: `(router index, input port, flit)`.
    link_stage: Vec<(usize, Port, Flit)>,
    /// Flits finishing their link cycle: delivered to input buffers at the
    /// start of the next step. `(router index, input port, flit)`.
    staged_flits: Vec<(usize, Port, Flit)>,
    /// Credits in flight: `(router index, output port, vc)`.
    staged_credits: Vec<(usize, Port, u8)>,
    /// Flits ejected this step, awaiting pickup by the NI layer.
    ejected: Vec<(NodeId, Flit)>,
    stats: NetworkStats,
    cycle: u64,
    next_packet_id: u64,
    /// Scratch buffer reused across router steps.
    scratch: RouterOutput,
    /// Precomputed adjacency: `adj[idx][p]` is the router index across
    /// mesh port `p` of router `idx`, or [`NO_NEIGHBOR`] at a mesh edge
    /// (and always for the local port).
    adj: Vec<[usize; NUM_PORTS]>,
    /// Precomputed X-Y routes, indexed `[at * num_nodes + dst]`.
    route_lut: Vec<Port>,
    /// In-flight flits per `(router idx, input port)`, flattened: counts
    /// entries of `link_stage` plus `staged_flits` headed to that input,
    /// so the sleep guards need no linear scan.
    inflight: Vec<u32>,
    /// Disables the event scheduler entirely so every router runs the
    /// full reference `step` each cycle (perf baseline and differential
    /// twin; results are identical).
    force_full_step: bool,
    /// Event scheduler: the cycle through which each router's *time
    /// accounting* (idle counters, power-state residencies) has been
    /// advanced. Flit-path state (buffers, credits, bindings, crossbar)
    /// is always live. Invariant: `cursor[i] < cycle` implies router `i`
    /// was drained at `cursor[i]` and has received nothing since, so the
    /// deferred stretch is a run of pure idle ticks, materializable in
    /// closed form by [`Network::sync_to`].
    cursor: Vec<u64>,
    /// Scheduling epoch per router: the cycle for which the router is
    /// already queued to run (deduplicates hot-set insertion).
    hot_stamp: Vec<u64>,
    /// Routers queued to run on the *next* step (stamped `cycle + 1`).
    next_hot: Vec<u32>,
    /// Routers queued to run on the current step, popped in index order
    /// (index order is load-bearing: wake completions flip `port_active`
    /// mid-phase at the completing router's position, and later routers
    /// must observe that exactly as the per-cycle loop would). A heap,
    /// not a sorted list, because in-step wake requests may insert
    /// not-yet-reached indices mid-iteration.
    todo: BinaryHeap<Reverse<u32>>,
    /// Time-ordered wakeup queue: `(due_cycle, router, cursor stamp)`.
    /// An entry is valid only while the router's cursor still equals the
    /// stamp it was pushed with (lazy invalidation: any materialization
    /// or re-request simply pushes a fresh entry). A *deferred* router
    /// with a pending wake-up countdown always holds a valid entry whose
    /// `due_cycle` is exactly the cycle its countdown completes.
    wakeups: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// Routers whose whole-router machine is in Sleep (for the policy
    /// layer's all-asleep elision).
    sleepers: usize,
    /// Non-drained routers (meaningful only while the scheduler is
    /// engaged; recomputed when force-full-step is switched off).
    nondrained: usize,
    /// Event-scheduler effectiveness counters (all zero under forced
    /// full stepping — the regression suite asserts the scheduler is
    /// truly bypassed there).
    sched: SchedStats,
    /// Cache of [`Router::port_active_mask`] per router, so a stepping
    /// router's four neighbour-acceptance reads hit one dense byte
    /// array instead of four cache-cold router structs. Refreshed at
    /// every power transition and after every phase-2 run (wake-up
    /// countdowns complete inside the tick); a *deferred* router's mask
    /// is exact because its power class is constant across the deferred
    /// stretch. Only read on the scheduled path — the forced-full-step
    /// loop reads the routers directly, and releasing the escape hatch
    /// recomputes the cache (`reseed_scheduler`).
    active_mask: Vec<u8>,
    /// Reusable buffers and engagement census of the spatially sharded
    /// phase-2 sweep ([`Network::step_sharded`]). Never serialized:
    /// purely scratch plus diagnostics, bit-invisible to results.
    shard: sharded::ShardRuntime,
    /// Telemetry sink; [`NopSink`] by default, which erases every
    /// instrumentation point at monomorphization.
    sink: S,
    /// Last power phase reported per router, so transitions that happen
    /// inside `Router::step`/`idle_tick` (wake-up countdowns completing)
    /// are detected by comparison at the end of the step. Empty for the
    /// `NopSink` monomorphization.
    power_shadow: Vec<PowerPhase>,
}

/// Marker in the adjacency table for "no link in this direction".
const NO_NEIGHBOR: usize = usize::MAX;

/// Effectiveness counters of the event scheduler in [`Network::step`].
/// All remain zero while forced full stepping is active — the
/// escape-hatch regression suite asserts the scheduler is bypassed by
/// observing exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Routers run in phase 2 (full steps plus scheduled idle ticks).
    pub router_runs: u64,
    /// Phase-2 runs that were scheduled idle ticks of drained routers.
    pub idle_runs: u64,
    /// Wakeup-queue entries popped at their due cycle.
    pub wakeup_pops: u64,
    /// Wakeup-queue entries dropped as stale (cursor stamp mismatch).
    pub stale_wakeups: u64,
    /// Deferred idle stretches materialized via the closed form.
    pub syncs: u64,
    /// Total cycles covered by those materializations.
    pub synced_cycles: u64,
    /// Full phase-2 steps of non-drained routers that produced no
    /// outputs at all (no traversal, no credit, no ejection, no ping):
    /// the router was stalled on downstream backpressure.
    pub stalled_runs: u64,
}

/// Debug builds cross-check [`Network::fast_forward`] against a
/// cycle-by-cycle replay of cloned routers for skips up to this many
/// cycles (longer skips would make debug runs quadratic; the bounded
/// replay still covers every horizon-limited skip shape, since idle
/// maturation, wake-up countdowns and detector windows are all far
/// shorter than this).
pub const SHADOW_REPLAY_MAX: u64 = 512;

impl Network {
    /// Builds a network from a validated configuration, without
    /// telemetry (the [`NopSink`] monomorphization).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NetworkConfig::validate`]).
    pub fn new(cfg: NetworkConfig) -> Self {
        Network::with_sink(cfg, NopSink)
    }
}

impl<S: Sink> Network<S> {
    /// Builds a network that reports router power-phase transitions to
    /// `sink`. Telemetry is observation-only: the simulation is
    /// bit-identical with any sink (the determinism suite asserts this).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NetworkConfig::validate`]).
    pub fn with_sink(cfg: NetworkConfig, sink: S) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid network configuration: {e}");
        }
        let dims = cfg.dims;
        let routers: Vec<Router> = dims
            .nodes()
            .map(|node| {
                let mut connected = [false; NUM_PORTS];
                connected[Port::Local.index()] = true;
                for dir in crate::geometry::Direction::ALL {
                    if dims.neighbor(node, dir).is_some() {
                        connected[Port::from(dir).index()] = true;
                    }
                }
                let mut router = Router::new(
                    node,
                    cfg.vcs_per_port,
                    cfg.vc_depth,
                    connected,
                    cfg.gating.t_wakeup,
                    cfg.gating.t_breakeven,
                    cfg.gating.t_idle_detect,
                );
                if cfg.port_gating {
                    router.enable_port_gating();
                }
                router
            })
            .collect();
        let n = dims.num_nodes();
        let adj = dims
            .nodes()
            .map(|node| {
                let mut row = [NO_NEIGHBOR; NUM_PORTS];
                for dir in crate::geometry::Direction::ALL {
                    if let Some(nbr) = dims.neighbor(node, dir) {
                        row[Port::from(dir).index()] = nbr.index();
                    }
                }
                row
            })
            .collect();
        let mut route_lut = Vec::with_capacity(n * n);
        for at in dims.nodes() {
            for dst in dims.nodes() {
                route_lut.push(dims.xy_route(at, dst));
            }
        }
        let active_mask = routers.iter().map(Router::port_active_mask).collect();
        Network {
            cfg,
            routers,
            link_stage: Vec::new(),
            staged_flits: Vec::new(),
            staged_credits: Vec::new(),
            ejected: Vec::new(),
            stats: NetworkStats::default(),
            cycle: 0,
            next_packet_id: 0,
            scratch: RouterOutput::default(),
            adj,
            route_lut,
            inflight: vec![0; n * NUM_PORTS],
            force_full_step: false,
            cursor: vec![0; n],
            hot_stamp: vec![0; n],
            next_hot: Vec::new(),
            todo: BinaryHeap::new(),
            wakeups: BinaryHeap::new(),
            sleepers: 0,
            nondrained: 0,
            sched: SchedStats::default(),
            active_mask,
            shard: sharded::ShardRuntime::default(),
            sink,
            power_shadow: if S::ENABLED {
                vec![PowerPhase::Active; n]
            } else {
                Vec::new()
            },
        }
    }

    /// Mutable access to the telemetry sink (to drain a recording sink
    /// or read a counting one).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Hands back the events the sink accumulated so far, leaving it
    /// empty. Returns nothing for sinks that retain nothing.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.sink.drain()
    }

    /// Emits a [`Event::Power`] if `idx`'s router is in a different
    /// phase than last reported. Compiled out entirely for [`NopSink`].
    #[inline]
    fn note_power(&mut self, idx: usize) {
        if S::ENABLED {
            let now = PowerPhase::from(self.routers[idx].power_state());
            let before = self.power_shadow[idx];
            if now != before {
                self.power_shadow[idx] = now;
                self.sink.record(Event::Power {
                    cycle: self.cycle,
                    node: idx as u16,
                    from: before,
                    to: now,
                });
            }
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Mesh dimensions.
    pub fn dims(&self) -> MeshDims {
        self.cfg.dims
    }

    /// Current cycle (number of completed steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Immutable access to a node's router (for congestion metrics).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Whether a node's router is in the active power state.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.routers[node.index()].power_state().is_active()
    }

    /// Power state of a node's router (lag-aware: a deferred wake-up
    /// countdown reads as it would after materialization).
    pub fn power_state(&self, node: NodeId) -> PowerState {
        let idx = node.index();
        self.routers[idx].power_state_lagged(self.cycle - self.cursor[idx])
    }

    /// Attempts to inject a flit at `node`'s local port into virtual
    /// channel `vc`. Returns `false` (without side effects) if the router
    /// is not active or the VC has no free slot.
    ///
    /// The caller (network interface) is responsible for wormhole
    /// discipline: flits of one packet must be injected contiguously into
    /// one VC, with `flit.lookahead` set to the route at this first router
    /// (see [`Network::route_at`]).
    pub fn try_inject_flit(&mut self, node: NodeId, vc: usize, mut flit: Flit) -> bool {
        let router = &mut self.routers[node.index()];
        if !router.port_active(Port::Local) || router.local_vc_free_space(vc) == 0 {
            return false;
        }
        flit.vc = vc as u8;
        let idx = node.index();
        if !self.force_full_step {
            // The router gains work: materialize its deferred stretch
            // (its tick for the current cycle already happened) and
            // schedule it for the next step.
            self.sync_to(idx, self.cycle);
            if self.routers[idx].is_drained() {
                self.nondrained += 1;
            }
            self.mark_next(idx);
        }
        if let Some(ping_dir) = self.routers[idx].deliver(Port::Local, flit) {
            self.wake_neighbor_prestep(node, ping_dir);
        }
        self.stats.flits_injected += 1;
        true
    }

    /// The X-Y route output port for a packet at `at` headed to `dst`
    /// (used by NIs to set the look-ahead field at injection).
    pub fn route_at(&self, at: NodeId, dst: NodeId) -> Port {
        self.route_lut[at.index() * self.cfg.dims.num_nodes() + dst.index()]
    }

    /// Disables (or re-enables) the event scheduler in
    /// [`Network::step`]. Results are bit-identical either way; forcing
    /// the full step exists so benchmarks can measure the speedup of the
    /// scheduler against the naive walk-everything loop, and so the
    /// differential suite has an independent reference to compare
    /// against. Switching on materializes every deferred router;
    /// switching off re-seeds the scheduler from live state.
    pub fn set_force_full_step(&mut self, force: bool) {
        if force == self.force_full_step {
            return;
        }
        if force {
            self.sync_all();
            self.force_full_step = true;
        } else {
            self.force_full_step = false;
            self.reseed_scheduler();
        }
    }

    /// Materializes every router's deferred idle stretch (cursors catch
    /// up to the current cycle). Results are unchanged — the scheduler's
    /// laziness is purely an internal representation — but raw per-router
    /// reads (e.g. [`Router::power_fingerprint`]) are only meaningful on
    /// a materialized network, so differential tests call this before
    /// comparing router state field-for-field.
    pub fn materialize(&mut self) {
        self.sync_all();
    }

    /// Event-scheduler effectiveness counters. All-zero when the
    /// network has only ever run under `set_force_full_step(true)` —
    /// the escape-hatch regression test relies on that to prove the
    /// scheduler is truly bypassed.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched
    }

    fn sync_all(&mut self) {
        for idx in 0..self.routers.len() {
            self.sync_to(idx, self.cycle);
        }
    }

    /// Rebuilds the scheduler's derived state from the live routers:
    /// non-drained routers are queued for the next step, drained ones
    /// get wakeup-queue entries for any pending countdown. Used when the
    /// forced-full-step escape hatch is released (cursors are already
    /// current in that mode).
    fn reseed_scheduler(&mut self) {
        self.nondrained = 0;
        for idx in 0..self.routers.len() {
            debug_assert_eq!(self.cursor[idx], self.cycle);
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            if self.routers[idx].is_drained() {
                self.reschedule(idx);
            } else {
                self.nondrained += 1;
                self.mark_next(idx);
            }
        }
    }

    /// Materializes router `idx`'s deferred idle stretch through cycle
    /// `target` in closed form. In debug builds the closed form is
    /// shadow-replayed tick by tick (the scheduler-audit extension of
    /// the fast-forward replay machinery).
    fn sync_to(&mut self, idx: usize, target: u64) {
        debug_assert!(self.cursor[idx] <= target, "cursor beyond target at router {idx}");
        let lag = target - self.cursor[idx];
        if lag == 0 {
            return;
        }
        self.sched.syncs += 1;
        self.sched.synced_cycles += lag;
        #[cfg(debug_assertions)]
        let shadow = (lag <= SHADOW_REPLAY_MAX).then(|| self.routers[idx].clone());
        self.routers[idx].fast_forward(lag);
        self.cursor[idx] = target;
        #[cfg(debug_assertions)]
        if let Some(mut shadow) = shadow {
            for _ in 0..lag {
                shadow.idle_tick();
            }
            debug_assert_eq!(
                shadow.power_fingerprint(),
                self.routers[idx].power_fingerprint(),
                "deferred-stretch materialization diverged from replay at {} over {lag} cycles",
                self.routers[idx].node()
            );
        }
    }

    /// Pushes a wakeup-queue entry for router `idx` if it has a pending
    /// wake-up countdown. Called whenever a router settles into (or
    /// mutates while in) the deferred state; entries made stale by later
    /// cursor movement are dropped lazily at pop time.
    fn reschedule(&mut self, idx: usize) {
        if let Some(dt) = self.routers[idx].next_wake_completion() {
            let cursor = self.cursor[idx];
            self.wakeups.push(Reverse((cursor + dt, idx as u32, cursor)));
        }
    }

    /// Queues router `idx` to run on the next step.
    fn mark_next(&mut self, idx: usize) {
        let at = self.cycle + 1;
        if self.hot_stamp[idx] != at {
            self.hot_stamp[idx] = at;
            self.next_hot.push(idx as u32);
        }
    }

    /// Queues router `idx` to run later in the *current* step's phase 2.
    fn mark_in(&mut self, idx: usize, todo: &mut BinaryHeap<Reverse<u32>>) {
        if self.hot_stamp[idx] != self.cycle {
            self.hot_stamp[idx] = self.cycle;
            todo.push(Reverse(idx as u32));
        }
    }

    /// Whether `node` can accept NI injections right now (its router and,
    /// with port gating, its local input port are powered).
    pub fn can_inject(&self, node: NodeId) -> bool {
        self.routers[node.index()].port_active(Port::Local)
    }

    /// Requests a wake-up of `node`'s router (and, with port gating, of
    /// its local input port). Called between steps: the target's tick
    /// for the current cycle already happened, so its deferred stretch
    /// is materialized through `cycle` before the request, and any new
    /// countdown is entered into the wakeup queue.
    pub fn request_wake(&mut self, node: NodeId, reason: WakeReason) {
        let idx = node.index();
        if !self.force_full_step {
            self.sync_to(idx, self.cycle);
        }
        self.apply_wake(idx, Port::Local, reason);
        if !self.force_full_step {
            self.reschedule(idx);
        }
    }

    /// Applies a wake request to router `idx` and input port `port`,
    /// maintaining the sleeper count and telemetry. The caller is
    /// responsible for cursor discipline (sync before, reschedule or
    /// queue after).
    fn apply_wake(&mut self, idx: usize, port: Port, reason: WakeReason) {
        let cycle = self.cycle;
        let r = &mut self.routers[idx];
        if r.power_state().is_sleeping() {
            self.sleepers -= 1;
        }
        r.request_wake(cycle, reason);
        r.request_wake_port(port, cycle, reason);
        self.active_mask[idx] = self.routers[idx].port_active_mask();
        self.note_power(idx);
    }

    /// Requests wake-up of every router (used when the lower-order
    /// subnet's regional congestion turns on).
    pub fn request_wake_all(&mut self, reason: WakeReason) {
        let cycle = self.cycle;
        for idx in 0..self.routers.len() {
            // Only sleeping routers change state (the request is a no-op
            // from Active and WakeUp), so only they need materializing.
            if !self.routers[idx].power_state().is_sleeping() {
                continue;
            }
            if !self.force_full_step {
                self.sync_to(idx, cycle);
            }
            self.routers[idx].request_wake(cycle, reason);
            self.sleepers -= 1;
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            if !self.force_full_step {
                self.reschedule(idx);
            }
        }
        if S::ENABLED {
            for idx in 0..self.routers.len() {
                self.note_power(idx);
            }
        }
    }

    /// Whether `node`'s router may be safely gated right now: the
    /// router-local guard holds (drained, idle long enough) *and* no
    /// neighbour holds an open wormhole towards it or has flits in flight
    /// to it.
    pub fn can_sleep(&self, node: NodeId) -> bool {
        if !self.cfg.gating_enabled {
            return false;
        }
        let router = &self.routers[node.index()];
        if !router.sleep_guard_ok_lagged(self.cycle - self.cursor[node.index()]) {
            return false;
        }
        // No in-flight flits on links towards this node.
        let base = node.index() * NUM_PORTS;
        debug_assert_eq!(
            self.inflight[base..base + NUM_PORTS].iter().map(|&c| c as usize).sum::<usize>(),
            self.staged_flits
                .iter()
                .chain(self.link_stage.iter())
                .filter(|(idx, _, _)| *idx == node.index())
                .count(),
            "in-flight counters out of sync at {node}"
        );
        if self.inflight[base..base + NUM_PORTS].iter().any(|&c| c > 0) {
            return false;
        }
        // No neighbour with an open wormhole or crossbar flit towards us.
        for port in [Port::North, Port::East, Port::South, Port::West] {
            let nbr = self.adj[node.index()][port.index()];
            if nbr == NO_NEIGHBOR {
                continue;
            }
            let towards_us = port.opposite();
            let nr = &self.routers[nbr];
            if nr.outbound_binding_ports()[towards_us.index()] || nr.xbar_holds_toward(towards_us) {
                return false;
            }
        }
        true
    }

    /// Gates `node`'s router if [`Network::can_sleep`] holds. Returns
    /// whether the router was put to sleep.
    pub fn request_sleep(&mut self, node: NodeId) -> bool {
        if self.can_sleep(node) {
            let idx = node.index();
            if !self.force_full_step {
                self.sync_to(idx, self.cycle);
            }
            let cycle = self.cycle;
            self.routers[idx].enter_sleep(cycle);
            self.sleepers += 1;
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            self.note_power(idx);
            true
        } else {
            false
        }
    }

    /// Whether input port `port` of `node`'s router may be gated: the
    /// port-local guard holds, no flit is in flight on its link, and the
    /// upstream router holds no wormhole towards it. The local port
    /// additionally relies on the NI's wake-on-demand.
    pub fn can_sleep_port(&self, node: NodeId, port: Port) -> bool {
        if !self.cfg.gating_enabled {
            return false;
        }
        let router = &self.routers[node.index()];
        if !router.port_sleep_guard_ok_lagged(port, self.cycle - self.cursor[node.index()]) {
            return false;
        }
        debug_assert_eq!(
            self.inflight[node.index() * NUM_PORTS + port.index()] as usize,
            self.staged_flits
                .iter()
                .chain(self.link_stage.iter())
                .filter(|(idx, p, _)| *idx == node.index() && *p == port)
                .count(),
            "in-flight counter out of sync at {node}:{port}"
        );
        if self.inflight[node.index() * NUM_PORTS + port.index()] > 0 {
            return false;
        }
        if port != Port::Local {
            let upstream = self.adj[node.index()][port.index()];
            if upstream != NO_NEIGHBOR {
                let towards_us = port.opposite();
                let ur = &self.routers[upstream];
                if ur.outbound_binding_ports()[towards_us.index()] || ur.xbar_holds_toward(towards_us) {
                    return false;
                }
            }
        }
        true
    }

    /// Gates one input port if [`Network::can_sleep_port`] holds.
    pub fn request_sleep_port(&mut self, node: NodeId, port: Port) -> bool {
        if self.can_sleep_port(node, port) {
            let idx = node.index();
            if !self.force_full_step {
                self.sync_to(idx, self.cycle);
            }
            let cycle = self.cycle;
            self.routers[idx].enter_port_sleep(port, cycle);
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            if !self.force_full_step {
                // The sync moved the cursor: any still-waking sibling
                // port needs a fresh wakeup-queue entry.
                self.reschedule(idx);
            }
            true
        } else {
            false
        }
    }

    /// Drains flits ejected during the most recent step, with their
    /// destination nodes.
    pub fn drain_ejected(&mut self) -> Vec<(NodeId, Flit)> {
        std::mem::take(&mut self.ejected)
    }

    /// Appends the flits ejected during the most recent step to `buf`,
    /// leaving the internal ejection buffer empty but with its capacity
    /// intact. Allocation-free steady state, unlike
    /// [`Network::drain_ejected`].
    pub fn drain_ejected_into(&mut self, buf: &mut Vec<(NodeId, Flit)>) {
        buf.append(&mut self.ejected);
    }

    /// Advances the network by one cycle.
    ///
    /// Default mode is the event scheduler: a cycle only touches routers
    /// that have work (non-drained), receive a delivery, or whose
    /// wake-up countdown expires this cycle; everything else stays
    /// deferred (its idle time materialized lazily by
    /// [`Network::sync_to`]). With [`Network::set_force_full_step`] the
    /// original scan-everything loop runs instead; both are bit-identical
    /// (asserted by the differential suite in `tests/eventdriven.rs`).
    pub fn step(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;
        if self.force_full_step {
            self.step_full();
        } else {
            self.step_scheduled();
        }
    }

    /// One cycle of the event scheduler.
    fn step_scheduled(&mut self) {
        let todo = self.begin_scheduled_cycle();
        self.finish_scheduled_phase2(todo);
    }

    /// Run-set collection and phase 1 of a scheduled cycle (everything
    /// before routers tick). Returns the phase-2 run set; the caller
    /// finishes the cycle with [`Network::finish_scheduled_phase2`] or
    /// the sharded sweep. Serial by construction: deliveries and their
    /// wake pings mutate routers across the whole mesh.
    fn begin_scheduled_cycle(&mut self) -> BinaryHeap<Reverse<u32>> {
        let cycle = self.cycle;

        // Collect this cycle's run set: routers marked by the previous
        // step, plus wakeup-queue entries coming due. Entries whose
        // stamp no longer matches the cursor are stale (the router was
        // materialized or re-requested since) and are dropped.
        let mut todo = std::mem::take(&mut self.todo);
        debug_assert!(todo.is_empty());
        for idx in self.next_hot.drain(..) {
            todo.push(Reverse(idx));
        }
        while let Some(&Reverse((due, idx, stamp))) = self.wakeups.peek() {
            if due > cycle {
                break;
            }
            self.wakeups.pop();
            let i = idx as usize;
            if self.cursor[i] != stamp {
                self.sched.stale_wakeups += 1;
                continue;
            }
            self.sched.wakeup_pops += 1;
            debug_assert_eq!(due, cycle, "valid wakeup entry slipped into the past");
            self.sync_to(i, cycle - 1);
            self.mark_in(i, &mut todo);
        }

        // Phase 1: deliver flits that completed their link cycle, and
        // advance flits leaving crossbars onto the link. Delivery
        // targets join the run set (cycle-edge staging means their
        // deferred stretch ends exactly at the previous cycle edge).
        let mut delivered = std::mem::take(&mut self.staged_flits);
        for &(idx, port, flit) in &delivered {
            self.inflight[idx * NUM_PORTS + port.index()] -= 1;
            self.sync_to(idx, cycle - 1);
            if self.routers[idx].is_drained() {
                self.nondrained += 1;
            }
            let node = self.routers[idx].node();
            let ping = self.routers[idx].deliver(port, flit);
            self.mark_in(idx, &mut todo);
            if let Some(ping_dir) = ping {
                // Position 0: every router's tick for this cycle is
                // still ahead.
                self.wake_neighbor_instep(node, ping_dir, 0, &mut todo);
            }
        }
        // Rotate buffers so their capacity is reused: flits placed on
        // links last cycle are now in transit, and the consumed vector
        // becomes the empty backing store for this cycle's link pushes.
        delivered.clear();
        self.staged_flits = std::mem::replace(&mut self.link_stage, delivered);
        let mut credits = std::mem::take(&mut self.staged_credits);
        for &(idx, port, vc) in &credits {
            // Credit returns are time-invariant and cannot create work
            // for a drained router (nothing buffered to send), so the
            // receiver is not scheduled.
            self.routers[idx].return_credit(port, vc);
        }
        credits.clear();
        self.staged_credits = credits;
        todo
    }

    /// Phase 2 of a scheduled cycle, serial reference form: run the hot
    /// set in ascending index order on the calling thread.
    fn finish_scheduled_phase2(&mut self, mut todo: BinaryHeap<Reverse<u32>>) {
        let cycle = self.cycle;
        let n = self.cfg.dims.num_nodes();
        // Run the hot set in index order. Mid-iteration wake
        // requests may insert indices ahead of the iteration point; the
        // heap keeps the order. When the hot set covers a large part of
        // the mesh (saturated subnet), a dense ascending index scan
        // visits the same routers in the same order without the heap's
        // per-element log cost; requests that land ahead of the scan
        // position are picked up by their `hot_stamp` (`mark_in` still
        // pushes to the heap, which the dense mode simply discards).
        let mut stepped: Vec<u32> = Vec::new();
        if todo.len() * 4 >= n {
            for idx in 0..n {
                if self.hot_stamp[idx] == cycle {
                    self.run_scheduled_router(idx, cycle, &mut todo, &mut stepped);
                }
            }
            todo.clear();
        } else {
            while let Some(Reverse(idxu)) = todo.pop() {
                self.run_scheduled_router(idxu as usize, cycle, &mut todo, &mut stepped);
            }
        }
        self.todo = todo;

        // Telemetry: catch transitions that happened inside the router
        // steps themselves (wake-up countdowns completing in
        // `psm.tick`), which no explicit request call observed. Only
        // routers that ticked this cycle can have transitioned; the run
        // set was popped in ascending index order, so the sweep emits
        // events in the same order as the full loop's 0..n sweep.
        if S::ENABLED {
            for &idx in &stepped {
                self.note_power(idx as usize);
            }
        }
    }

    /// Runs one router of the current cycle's hot set (phase 2 of
    /// [`Network::step_scheduled`]): tick the router, stage its link
    /// traversals and credit returns, record ejections, and propagate
    /// in-step wake requests. Refreshes the `active_mask` cache after
    /// the tick so later routers in the same phase observe wake-up
    /// countdowns that completed inside it.
    fn run_scheduled_router(
        &mut self,
        idx: usize,
        cycle: u64,
        todo: &mut BinaryHeap<Reverse<u32>>,
        stepped: &mut Vec<u32>,
    ) {
        debug_assert_eq!(self.cursor[idx], cycle - 1, "scheduled router not at the cycle edge");
        self.sched.router_runs += 1;
        if self.routers[idx].is_drained() {
            self.sched.idle_runs += 1;
            self.routers[idx].idle_tick();
            self.cursor[idx] = cycle;
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            self.reschedule(idx);
        } else {
            let n = self.cfg.dims.num_nodes();
            let adj = self.adj[idx];
            let node = self.routers[idx].node();
            // Snapshot which neighbours can accept flits this cycle:
            // the downstream router must be active and (with port
            // gating) so must the specific input port our link
            // feeds. Deferred neighbours read exactly: their state
            // class is constant across the deferred stretch, and the
            // mask cache is refreshed at every power transition.
            let mut neighbor_active = [true; NUM_PORTS];
            for port in [Port::North, Port::East, Port::South, Port::West] {
                let pi = port.index();
                neighbor_active[pi] = match adj[pi] {
                    NO_NEIGHBOR => false,
                    nbr => self.active_mask[nbr] & (1u8 << port.opposite().index()) != 0,
                };
            }

            let mut out = std::mem::take(&mut self.scratch);
            self.routers[idx].step(&neighbor_active, &mut out);
            self.cursor[idx] = cycle;
            self.active_mask[idx] = self.routers[idx].port_active_mask();
            if out.outbound.is_empty() && out.credits.is_empty() && out.ejected.is_empty() && out.wake_pings.is_empty()
            {
                self.sched.stalled_runs += 1;
            }

            for ob in &out.outbound {
                let opi = ob.out_port.index();
                let nbr = adj[opi];
                debug_assert!(nbr != NO_NEIGHBOR, "link to nowhere");
                let in_port = ob.out_port.opposite();
                let mut flit = ob.flit;
                // Look-ahead routing: compute the output port at the
                // next router before the flit arrives there.
                flit.lookahead = self.route_lut[nbr * n + flit.dst.index()];
                self.inflight[nbr * NUM_PORTS + in_port.index()] += 1;
                self.link_stage.push((nbr, in_port, flit));
            }
            for cr in &out.credits {
                let ipi = cr.in_port.index();
                let upstream = adj[ipi];
                debug_assert!(upstream != NO_NEIGHBOR, "credit to nowhere");
                // The upstream router's output port towards us.
                let up_out = cr.in_port.opposite();
                self.staged_credits.push((upstream, up_out, cr.vc));
            }
            for flit in out.ejected.drain(..) {
                self.record_ejection(node, flit);
            }
            for &ping in &out.wake_pings {
                self.wake_neighbor_instep(node, ping, idx, todo);
            }
            self.scratch = out;

            if self.routers[idx].is_drained() {
                self.nondrained -= 1;
                self.reschedule(idx);
            } else {
                self.mark_next(idx);
            }
        }
        if S::ENABLED {
            stepped.push(idx as u32);
        }
    }

    /// One cycle of the original scan-everything loop (the
    /// forced-full-step escape hatch): every router computes its
    /// neighbour mask and runs the reference step, with no scheduler
    /// machinery engaged. Cursors are kept current so the modes can be
    /// switched mid-run.
    fn step_full(&mut self) {
        // Phase 1: deliver flits that completed their link cycle, and
        // advance flits leaving crossbars onto the link.
        let mut delivered = std::mem::take(&mut self.staged_flits);
        for &(idx, port, flit) in &delivered {
            self.inflight[idx * NUM_PORTS + port.index()] -= 1;
            let node = self.routers[idx].node();
            if let Some(ping_dir) = self.routers[idx].deliver(port, flit) {
                self.wake_neighbor_full(node, ping_dir);
            }
        }
        delivered.clear();
        self.staged_flits = std::mem::replace(&mut self.link_stage, delivered);
        let mut credits = std::mem::take(&mut self.staged_credits);
        for &(idx, port, vc) in &credits {
            self.routers[idx].return_credit(port, vc);
        }
        credits.clear();
        self.staged_credits = credits;

        // Phase 2: step every router; collect outputs into fresh staging.
        let n = self.cfg.dims.num_nodes();
        let cycle = self.cycle;
        for idx in 0..self.routers.len() {
            let adj = self.adj[idx];
            let node = self.routers[idx].node();
            let mut neighbor_active = [true; NUM_PORTS];
            for port in [Port::North, Port::East, Port::South, Port::West] {
                let pi = port.index();
                neighbor_active[pi] = match adj[pi] {
                    NO_NEIGHBOR => false,
                    nbr => self.routers[nbr].port_active(port.opposite()),
                };
            }

            let mut out = std::mem::take(&mut self.scratch);
            self.routers[idx].step_reference(&neighbor_active, &mut out);
            self.cursor[idx] = cycle;

            for ob in &out.outbound {
                let opi = ob.out_port.index();
                let nbr = adj[opi];
                debug_assert!(nbr != NO_NEIGHBOR, "link to nowhere");
                let in_port = ob.out_port.opposite();
                let mut flit = ob.flit;
                flit.lookahead = self.route_lut[nbr * n + flit.dst.index()];
                self.inflight[nbr * NUM_PORTS + in_port.index()] += 1;
                self.link_stage.push((nbr, in_port, flit));
            }
            for cr in &out.credits {
                let ipi = cr.in_port.index();
                let upstream = adj[ipi];
                debug_assert!(upstream != NO_NEIGHBOR, "credit to nowhere");
                let up_out = cr.in_port.opposite();
                self.staged_credits.push((upstream, up_out, cr.vc));
            }
            for flit in out.ejected.drain(..) {
                self.record_ejection(node, flit);
            }
            for &ping in &out.wake_pings {
                self.wake_neighbor_full(node, ping);
            }
            self.scratch = out;
        }

        if S::ENABLED {
            for idx in 0..self.routers.len() {
                self.note_power(idx);
            }
        }
    }

    fn record_ejection(&mut self, node: NodeId, flit: Flit) {
        debug_assert_eq!(flit.dst, node, "flit ejected at wrong node");
        self.stats.flits_ejected += 1;
        if flit.kind.is_tail() {
            self.stats.packets_ejected += 1;
            let lat = self.cycle.saturating_sub(flit.net_inject_cycle);
            self.stats.net_latency_sum += lat;
            self.stats.net_latency_max = self.stats.net_latency_max.max(lat);
            self.stats.hops_sum += u64::from(self.cfg.dims.hop_distance(flit.src, flit.dst));
        }
        self.ejected.push((node, flit));
    }

    /// Look-ahead wake ping arriving *between* steps (injection time).
    /// The target's tick for the current cycle has already happened in
    /// canonical order, so the deferred stretch is materialized through
    /// the current cycle before the request lands.
    fn wake_neighbor_prestep(&mut self, node: NodeId, dir_port: Port) {
        if let Some(dir) = dir_port.direction() {
            if let Some(nbr) = self.cfg.dims.neighbor(node, dir) {
                let idx = nbr.index();
                if !self.force_full_step {
                    self.sync_to(idx, self.cycle);
                }
                self.apply_wake(idx, Port::from(dir.opposite()), WakeReason::LookaheadSignal);
                if !self.force_full_step {
                    self.reschedule(idx);
                }
            }
        }
    }

    /// Look-ahead wake ping raised *inside* a step, by the router at
    /// phase-2 position `pos` (phase-1 deliveries pass `pos == 0`: every
    /// router's tick is still ahead). Exactness hinges on where the
    /// target's tick for this cycle falls relative to the request in the
    /// canonical full loop:
    ///
    /// - target index `< pos`, or target already ticked (`cursor ==
    ///   cycle`): the canonical tick precedes the request, so the
    ///   deferred stretch is absorbed in closed form through the current
    ///   cycle and the request lands after it;
    /// - otherwise the target ticks later in this same cycle: the
    ///   request lands with the target at the cycle edge, and the target
    ///   joins the current run set so its tick happens in phase 2.
    fn wake_neighbor_instep(&mut self, node: NodeId, dir_port: Port, pos: usize, todo: &mut BinaryHeap<Reverse<u32>>) {
        if let Some(dir) = dir_port.direction() {
            if let Some(nbr) = self.cfg.dims.neighbor(node, dir) {
                let idx = nbr.index();
                let cycle = self.cycle;
                let in_port = Port::from(dir.opposite());
                if idx < pos || self.cursor[idx] == cycle {
                    self.sync_to(idx, cycle);
                    self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                    self.reschedule(idx);
                } else {
                    self.sync_to(idx, cycle - 1);
                    self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                    self.mark_in(idx, todo);
                }
            }
        }
    }

    /// Look-ahead wake ping under forced full stepping: no scheduler
    /// bookkeeping, matching the original loop verbatim (cursors are
    /// already kept current by [`Network::step_full`]).
    fn wake_neighbor_full(&mut self, node: NodeId, dir_port: Port) {
        if let Some(dir) = dir_port.direction() {
            if let Some(nbr) = self.cfg.dims.neighbor(node, dir) {
                self.apply_wake(nbr.index(), Port::from(dir.opposite()), WakeReason::LookaheadSignal);
            }
        }
    }

    /// Whether every router is in the `Sleep` power state. O(1) via the
    /// scheduler's census counter; conservatively `false` under forced
    /// full stepping (the counter is not consulted there) and under port
    /// gating (whole-router sleep never entered).
    pub fn all_asleep(&self) -> bool {
        !self.force_full_step && self.sleepers == self.routers.len()
    }

    /// Whether no router holds any flit in its input buffers or crossbar
    /// register. O(1) via the scheduler's census counter; conservatively
    /// `false` under forced full stepping. Flits on links or in staging
    /// are *not* covered — pair with [`Network::is_quiescent`] when that
    /// matters.
    pub fn all_drained(&self) -> bool {
        !self.force_full_step && self.nondrained == 0
    }

    /// Number of routers currently holding flits (the scheduler's
    /// non-drained census). O(1); a cheap upper-bound estimate of how
    /// much phase-2 work the next step will do. The multi-NoC layer
    /// compares it against a crossover threshold to decide whether
    /// stepping this subnet is worth a thread-pool dispatch.
    pub fn busy_routers(&self) -> usize {
        self.nondrained
    }

    /// Sum of router activity counters across the network.
    pub fn total_activity(&self) -> RouterActivity {
        self.routers
            .iter()
            .map(|r| r.activity)
            .fold(RouterActivity::default(), RouterActivity::merged)
    }

    /// Sum of power-gating residency across the network (lag-aware:
    /// deferred stretches are credited to their routers' current state
    /// class without materializing them).
    pub fn total_gating(&self) -> GatingActivity {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| r.gating_activity_lagged(self.cycle, self.cycle - self.cursor[i]))
            .fold(GatingActivity::default(), GatingActivity::merged)
    }

    /// Per-router gating residency (indexed by node; lag-aware).
    pub fn gating_by_node(&self) -> Vec<GatingActivity> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| r.gating_activity_lagged(self.cycle, self.cycle - self.cursor[i]))
            .collect()
    }

    /// Number of routers currently in each power state:
    /// `(active, sleeping, waking)`.
    pub fn power_state_census(&self) -> (usize, usize, usize) {
        let mut census = (0, 0, 0);
        for r in &self.routers {
            match r.power_state() {
                PowerState::Active => census.0 += 1,
                PowerState::Sleep => census.1 += 1,
                PowerState::WakeUp { .. } => census.2 += 1,
            }
        }
        census
    }

    /// Total flits currently buffered, in flight, or in crossbar registers
    /// (for conservation checks in tests). Single pass over the routers,
    /// reading each one's occupancy counter.
    pub fn flits_in_network(&self) -> usize {
        let in_routers: usize = self.routers.iter().map(Router::occupancy).sum();
        in_routers + self.staged_flits.len() + self.link_stage.len()
    }

    /// Whether the subnet is *quiescent*: no flit anywhere (buffers,
    /// crossbar registers, links, staging) and no credit in flight. In
    /// this state a [`Network::step`] degenerates to one `idle_tick`
    /// per router, which is what [`Network::fast_forward`] replaces
    /// with closed-form arithmetic.
    pub fn is_quiescent(&self) -> bool {
        self.staged_credits.is_empty() && self.ejected.is_empty() && self.flits_in_network() == 0
    }

    /// How many consecutive cycles can be skipped before some router of
    /// this subnet changes power-state class (wake-up completing, or —
    /// when `may_sleep` says the gating policy issues sleep requests to
    /// this subnet every cycle — an idle counter maturing past
    /// `t_idle_detect`). See [`Router::skip_horizon`]. Only meaningful
    /// while [`Network::is_quiescent`] holds.
    pub fn skip_horizon(&self, may_sleep: bool) -> u64 {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let h = r.skip_horizon(may_sleep);
                if h == u64::MAX {
                    h
                } else {
                    // Deferred routers computed their horizon as of
                    // their cursor; the lag has already elapsed.
                    h.saturating_sub(self.cycle - self.cursor[i])
                }
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Advances a **quiescent** network by `dt` cycles in O(routers)
    /// arithmetic: the clock, cycle statistics, idle counters and
    /// power-state residencies move exactly as `dt` [`Network::step`]
    /// calls would have moved them, with no per-cycle work. The caller
    /// must keep `dt` within [`Network::skip_horizon`], so no
    /// power-phase transition can fall inside the interval — which is
    /// also why no telemetry event is ever emitted (or missed) here.
    ///
    /// In debug builds, skips up to [`SHADOW_REPLAY_MAX`] cycles are
    /// shadow-replayed: the routers are cloned and ticked cycle by
    /// cycle, and the closed form must match field-for-field.
    pub fn fast_forward(&mut self, dt: u64) {
        debug_assert!(self.is_quiescent(), "fast_forward on a non-quiescent network");
        if dt == 0 {
            return;
        }
        // Materialize any deferred stretches first (each router's own
        // closed form, shadow-audited in debug builds), so the skip
        // below starts from a fully synchronized network exactly as
        // before the scheduler existed.
        self.sync_all();
        #[cfg(debug_assertions)]
        let shadow: Option<Vec<Router>> = (dt <= SHADOW_REPLAY_MAX).then(|| self.routers.clone());
        self.cycle += dt;
        self.stats.cycles += dt;
        for r in &mut self.routers {
            r.fast_forward(dt);
        }
        if !self.force_full_step {
            let cycle = self.cycle;
            for idx in 0..self.routers.len() {
                self.cursor[idx] = cycle;
                // Cursor moved: refresh any pending wake-completion
                // entry (old ones are invalidated by their stamp).
                self.reschedule(idx);
            }
        }
        #[cfg(debug_assertions)]
        if let Some(mut shadow) = shadow {
            for r in &mut shadow {
                for _ in 0..dt {
                    r.idle_tick();
                }
            }
            for (replayed, skipped) in shadow.iter().zip(&self.routers) {
                debug_assert_eq!(
                    replayed.power_fingerprint(),
                    skipped.power_fingerprint(),
                    "fast_forward({dt}) diverged from cycle-by-cycle replay at {}",
                    skipped.node()
                );
            }
        }
    }

    /// Closes out gating accounting (call once at the end of a run before
    /// reading [`Network::total_gating`]). Materializes all deferred
    /// stretches first so the routers' own counters are final.
    pub fn finalize(&mut self) {
        self.sync_all();
        let cycle = self.cycle;
        for r in &mut self.routers {
            r.finalize(cycle);
        }
    }

    /// Serializes the subnet's complete simulation state (checkpointing).
    ///
    /// Must be called at a cycle edge (between steps). Deferred idle
    /// stretches are materialized first so every router's counters are
    /// exact; materialization is representation-only, so saving does not
    /// perturb the run. What is captured: clock, packet-id counter,
    /// statistics, every router, and all link/staging/ejection buffers.
    /// What is *not* captured and instead reconstructed by
    /// [`Network::load_state`]: the adjacency/route tables (functions of
    /// the config), the in-flight counters (recounted from staging), the
    /// event-scheduler queues (reseeded from live state), and the
    /// telemetry sink (a resumed recording sink starts empty — the trace
    /// *suffix* after the checkpoint is bit-identical, which is what the
    /// checkpoint suite asserts). Scheduler effectiveness counters are
    /// carried over verbatim, but a resumed run may count slightly fewer
    /// stale wakeup entries than a straight-through run (reseeding drops
    /// entries lazy invalidation would have counted); simulation results
    /// are unaffected.
    pub fn save_state(&mut self, w: &mut ByteWriter) {
        self.sync_all();
        w.put_u64(self.cycle);
        w.put_u64(self.next_packet_id);
        w.put_bool(self.force_full_step);
        checkpoint::put_network_stats(w, &self.stats);
        checkpoint::put_sched_stats(w, &self.sched);
        for r in &self.routers {
            r.encode(w);
        }
        w.put_usize(self.link_stage.len());
        for (idx, port, flit) in &self.link_stage {
            w.put_u32(*idx as u32);
            checkpoint::put_port(w, *port);
            checkpoint::put_flit(w, flit);
        }
        w.put_usize(self.staged_flits.len());
        for (idx, port, flit) in &self.staged_flits {
            w.put_u32(*idx as u32);
            checkpoint::put_port(w, *port);
            checkpoint::put_flit(w, flit);
        }
        w.put_usize(self.staged_credits.len());
        for (idx, port, vc) in &self.staged_credits {
            w.put_u32(*idx as u32);
            checkpoint::put_port(w, *port);
            w.put_u8(*vc);
        }
        w.put_usize(self.ejected.len());
        for (node, flit) in &self.ejected {
            w.put_u16(node.0);
            checkpoint::put_flit(w, flit);
        }
    }

    /// Overlays serialized state from [`Network::save_state`] onto this
    /// network, which must have been built from the *same configuration*
    /// (the config itself is not in the byte stream; the core crate's
    /// checkpoint container guards it with a fingerprint). Derived
    /// structures — in-flight counters, occupancy caches, the event
    /// scheduler's queues and censuses, telemetry shadows — are all
    /// recomputed from the decoded state.
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the stream is truncated or internally
    /// inconsistent (bad tags, router/index out of range). On error the
    /// network is left in an unspecified but memory-safe state and must
    /// be discarded.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n = self.routers.len();
        self.cycle = r.get_u64()?;
        self.next_packet_id = r.get_u64()?;
        self.force_full_step = r.get_bool()?;
        self.stats = checkpoint::get_network_stats(r)?;
        self.sched = checkpoint::get_sched_stats(r)?;
        for idx in 0..n {
            let router = Router::decode(r)?;
            if router.node().index() != idx {
                return Err(CodecError::Invalid("router out of order"));
            }
            self.routers[idx] = router;
        }
        let decode_staged = |r: &mut ByteReader<'_>| -> Result<Vec<(usize, Port, Flit)>, CodecError> {
            let len = r.get_usize()?;
            if len > n * NUM_PORTS * 64 {
                return Err(CodecError::Invalid("staging buffer implausibly large"));
            }
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                let idx = r.get_u32()? as usize;
                if idx >= n {
                    return Err(CodecError::Invalid("staged router index out of range"));
                }
                let port = checkpoint::get_port(r)?;
                let flit = checkpoint::get_flit(r)?;
                out.push((idx, port, flit));
            }
            Ok(out)
        };
        self.link_stage = decode_staged(r)?;
        self.staged_flits = decode_staged(r)?;
        let credits_len = r.get_usize()?;
        if credits_len > n * NUM_PORTS * 64 {
            return Err(CodecError::Invalid("credit staging implausibly large"));
        }
        self.staged_credits.clear();
        for _ in 0..credits_len {
            let idx = r.get_u32()? as usize;
            if idx >= n {
                return Err(CodecError::Invalid("staged credit index out of range"));
            }
            let port = checkpoint::get_port(r)?;
            let vc = r.get_u8()?;
            self.staged_credits.push((idx, port, vc));
        }
        let ejected_len = r.get_usize()?;
        if ejected_len > n * 64 {
            return Err(CodecError::Invalid("ejection buffer implausibly large"));
        }
        self.ejected.clear();
        for _ in 0..ejected_len {
            let node = NodeId(r.get_u16()?);
            if node.index() >= n {
                return Err(CodecError::Invalid("ejected node out of range"));
            }
            let flit = checkpoint::get_flit(r)?;
            self.ejected.push((node, flit));
        }

        // Everything below is derived: recomputed, never deserialized.
        self.scratch = RouterOutput::default();
        self.inflight = vec![0; n * NUM_PORTS];
        for &(idx, port, _) in self.link_stage.iter().chain(&self.staged_flits) {
            self.inflight[idx * NUM_PORTS + port.index()] += 1;
        }
        let cycle = self.cycle;
        self.cursor = vec![cycle; n];
        self.hot_stamp = vec![0; n];
        self.next_hot.clear();
        self.todo.clear();
        self.wakeups.clear();
        for idx in 0..n {
            self.active_mask[idx] = self.routers[idx].port_active_mask();
        }
        self.sleepers = self.routers.iter().filter(|r| r.power_state().is_sleeping()).count();
        self.nondrained = 0;
        if S::ENABLED {
            self.power_shadow = self.routers.iter().map(|r| PowerPhase::from(r.power_state())).collect();
        }
        if !self.force_full_step {
            self.reseed_scheduler();
        }
        Ok(())
    }

    /// Convenience for tests and examples: builds a single-flit synthetic
    /// packet from `src` to `dst` with the correct look-ahead field, ready
    /// for [`Network::try_inject_flit`].
    pub fn make_single_flit_packet(&mut self, src: NodeId, dst: NodeId, created_cycle: u64) -> Flit {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        Flit {
            packet: id,
            kind: FlitKind::Single,
            src,
            dst,
            seq: 0,
            packet_len: 1,
            class: MessageClass::Synthetic,
            lookahead: self.route_at(src, dst),
            vc: 0,
            created_cycle,
            net_inject_cycle: self.cycle + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatingConfig;
    use crate::geometry::MeshDims;

    fn small_net(gating: bool) -> Network {
        let cfg = NetworkConfig::with_width(128).dims(MeshDims::new(4, 4)).gating_enabled(gating);
        Network::new(cfg)
    }

    #[test]
    fn single_flit_end_to_end() {
        let mut net = small_net(false);
        let src = NodeId(0);
        let dst = NodeId(15);
        let flit = net.make_single_flit_packet(src, dst, 0);
        assert!(net.try_inject_flit(src, 0, flit));
        let mut ejections = Vec::new();
        for _ in 0..60 {
            net.step();
            ejections.extend(net.drain_ejected());
        }
        assert_eq!(ejections.len(), 1);
        assert_eq!(ejections[0].0, dst);
        assert_eq!(net.stats().packets_ejected, 1);
        // 6 hops on a 4x4 mesh corner-to-corner, ~3 cycles/hop.
        let lat = net.stats().avg_net_latency();
        assert!((18.0..=26.0).contains(&lat), "zero-load latency {lat} out of range");
    }

    #[test]
    fn injection_fails_when_vc_full() {
        let mut net = small_net(false);
        let src = NodeId(0);
        let dst = NodeId(3);
        for _ in 0..4 {
            let f = net.make_single_flit_packet(src, dst, 0);
            assert!(net.try_inject_flit(src, 0, f));
        }
        let f = net.make_single_flit_packet(src, dst, 0);
        assert!(!net.try_inject_flit(src, 0, f), "fifth flit must not fit in depth-4 VC");
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net = small_net(false);
        let dims = net.dims();
        let mut sent = 0u64;
        for round in 0..10 {
            for node in dims.nodes() {
                let dst = NodeId(((node.index() as u16) * 7 + 3 + round) % 16);
                if dst == node {
                    continue;
                }
                let f = net.make_single_flit_packet(node, dst, 0);
                if net.try_inject_flit(node, round as usize % 4, f) {
                    sent += 1;
                }
            }
            net.step();
        }
        for _ in 0..300 {
            net.step();
        }
        net.drain_ejected();
        assert_eq!(net.stats().packets_ejected, sent);
        assert_eq!(net.stats().flits_ejected, net.stats().flits_injected);
    }

    #[test]
    fn gated_network_sleeps_and_recovers() {
        let mut net = small_net(true);
        // Let everything idle out, then gate every router.
        for _ in 0..10 {
            net.step();
        }
        for node in net.dims().nodes() {
            assert!(net.can_sleep(node), "idle router must be gateable");
            assert!(net.request_sleep(node));
        }
        let (active, sleeping, _) = net.power_state_census();
        assert_eq!(active, 0);
        assert_eq!(sleeping, 16);
        // Wake the source and let a packet force wake-ups along its path.
        net.request_wake(NodeId(0), WakeReason::External);
        for _ in 0..GatingConfig::paper().t_wakeup as usize {
            net.step();
        }
        assert!(net.is_active(NodeId(0)));
        let f = net.make_single_flit_packet(NodeId(0), NodeId(15), 0);
        let f = Flit {
            net_inject_cycle: net.cycle() + 1,
            ..f
        };
        assert!(net.try_inject_flit(NodeId(0), 0, f));
        let mut got = Vec::new();
        for _ in 0..200 {
            net.step();
            got.extend(net.drain_ejected());
        }
        assert_eq!(
            got.len(),
            1,
            "packet must be delivered through sleeping routers via wake-ups"
        );
        // Latency includes wake-up stalls.
        assert!(net.stats().avg_net_latency() > 20.0);
    }

    #[test]
    fn sleep_denied_when_gating_disabled() {
        let mut net = small_net(false);
        for _ in 0..10 {
            net.step();
        }
        assert!(!net.can_sleep(NodeId(5)));
        assert!(!net.request_sleep(NodeId(5)));
    }

    #[test]
    fn sleep_denied_with_inbound_wormhole() {
        let mut net = small_net(true);
        // A 4-flit packet from node 0 to node 3 passes through nodes 1, 2.
        let src = NodeId(0);
        let dst = NodeId(3);
        let mut flits = Vec::new();
        let id = PacketId(999);
        for seq in 0..4u16 {
            let kind = match seq {
                0 => FlitKind::Head,
                3 => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            flits.push(Flit {
                packet: id,
                kind,
                src,
                dst,
                seq,
                packet_len: 4,
                class: MessageClass::Synthetic,
                lookahead: net.route_at(src, dst),
                vc: 0,
                created_cycle: 0,
                net_inject_cycle: 1,
            });
        }
        for f in flits {
            assert!(net.try_inject_flit(src, 0, f));
        }
        // Step until the head reaches node 1 and opens a wormhole onward.
        for _ in 0..3 {
            net.step();
        }
        // Node 2 must not be gateable while the wormhole from node 1 is
        // open or flits are in flight, even if its buffers are empty.
        let mut denied_while_traffic = false;
        for _ in 0..4 {
            if !net.can_sleep(NodeId(2)) {
                denied_while_traffic = true;
            }
            net.step();
        }
        assert!(denied_while_traffic);
        for _ in 0..100 {
            net.step();
        }
        net.drain_ejected();
        assert_eq!(net.stats().packets_ejected, 1);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut net = small_net(true);
        let dims = net.dims();
        // Build up non-trivial state: multi-hop traffic in flight plus
        // some gated routers.
        for round in 0..6u16 {
            for node in dims.nodes() {
                let dst = NodeId((node.index() as u16 * 5 + 2 + round) % 16);
                if dst == node {
                    continue;
                }
                let f = net.make_single_flit_packet(node, dst, 0);
                net.try_inject_flit(node, round as usize % 4, f);
            }
            net.step();
        }
        for _ in 0..30 {
            net.step();
        }
        for node in dims.nodes() {
            net.request_sleep(node);
        }
        net.step();

        let mut w = ByteWriter::new();
        net.save_state(&mut w);
        let bytes = w.into_inner();
        let mut resumed = small_net(true);
        let mut r = ByteReader::new(&bytes);
        resumed.load_state(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after load");

        // Drive both for a while, with fresh traffic, and compare.
        for round in 0..40u16 {
            for net in [&mut net, &mut resumed] {
                if round % 3 == 0 {
                    let src = NodeId(round % 16);
                    let dst = NodeId((round * 7 + 1) % 16);
                    if src != dst {
                        let cycle = net.cycle();
                        let f = net.make_single_flit_packet(src, dst, cycle);
                        if !net.try_inject_flit(src, 0, f) {
                            net.request_wake(src, WakeReason::NiInjection);
                        }
                    }
                }
                net.step();
            }
            assert_eq!(net.drain_ejected(), resumed.drain_ejected(), "ejections diverged");
        }
        assert_eq!(net.stats(), resumed.stats());
        net.materialize();
        resumed.materialize();
        for node in dims.nodes() {
            assert_eq!(
                net.router(node).power_fingerprint(),
                resumed.router(node).power_fingerprint(),
                "power state diverged at {node}"
            );
        }
    }

    #[test]
    fn census_and_conservation() {
        let mut net = small_net(false);
        let (a, s, w) = net.power_state_census();
        assert_eq!((a, s, w), (16, 0, 0));
        for i in 0..8u16 {
            let f = net.make_single_flit_packet(NodeId(i), NodeId(15 - i), 0);
            net.try_inject_flit(NodeId(i), 0, f);
        }
        net.step();
        net.step();
        let in_net = net.flits_in_network() as u64;
        assert_eq!(net.stats().flits_injected, net.stats().flits_ejected + in_net);
    }
}

#[cfg(test)]
mod port_gating_tests {
    use super::*;
    use crate::geometry::MeshDims;

    fn net(gating: bool) -> Network {
        Network::new(
            NetworkConfig::with_width(128)
                .dims(MeshDims::new(4, 4))
                .gating_enabled(gating)
                .port_gating(true),
        )
    }

    #[test]
    fn ports_gate_independently() {
        let mut n = net(true);
        for _ in 0..10 {
            n.step();
        }
        let node = NodeId(5);
        assert!(n.can_sleep_port(node, Port::North));
        assert!(n.request_sleep_port(node, Port::North));
        assert!(!n.router(node).port_active(Port::North));
        assert!(n.router(node).port_active(Port::East), "other ports unaffected");
        assert!(n.router(node).power_state().is_active(), "router itself stays on");
        // Whole-router gating is unavailable in port mode.
        assert!(!n.can_sleep(node));
    }

    #[test]
    fn packet_crosses_gated_ports_via_wakeups() {
        let mut n = net(true);
        for _ in 0..10 {
            n.step();
        }
        let mut gated = 0;
        for node in n.dims().nodes() {
            for port in Port::ALL {
                if n.request_sleep_port(node, port) {
                    gated += 1;
                }
            }
        }
        assert!(gated > 60, "most ports should gate, got {gated}");
        let f = n.make_single_flit_packet(NodeId(0), NodeId(15), 0);
        // The source's local port sleeps: injection fails, wake, retry.
        let mut injected = false;
        let mut got = Vec::new();
        for _ in 0..300 {
            if !injected {
                let mut f2 = f;
                f2.net_inject_cycle = n.cycle() + 1;
                if n.try_inject_flit(NodeId(0), 0, f2) {
                    injected = true;
                } else {
                    n.request_wake(NodeId(0), WakeReason::NiInjection);
                }
            }
            n.step();
            got.extend(n.drain_ejected());
        }
        assert_eq!(got.len(), 1, "packet must wake each port along its path");
    }

    #[test]
    fn port_gating_activity_counts_port_cycles() {
        let mut n = net(true);
        for _ in 0..20 {
            n.step();
        }
        let g = n.total_gating();
        let total = g.active_cycles + g.sleep_cycles + g.wakeup_cycles;
        assert_eq!(total, 5 * 16 * 20, "residency in port-cycles (5 ports x 16 routers)");
    }

    #[test]
    fn gating_disabled_blocks_port_sleep() {
        let mut n = net(false);
        for _ in 0..10 {
            n.step();
        }
        assert!(!n.can_sleep_port(NodeId(3), Port::West));
        assert!(!n.request_sleep_port(NodeId(3), Port::West));
    }
}
