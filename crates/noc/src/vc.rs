//! Virtual-channel input buffers and wormhole bindings.

use crate::flit::Flit;
use crate::geometry::Port;
use std::collections::VecDeque;

/// The downstream resources a packet at the head of an input VC has been
/// allocated: an output port and a VC at the downstream router. Held from
/// successful VC allocation until the tail flit leaves (wormhole
/// switching).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Binding {
    /// Output port at this router.
    pub out_port: Port,
    /// Virtual channel at the downstream router's input port.
    pub out_vc: u8,
}

/// One virtual-channel input buffer of a router port.
#[derive(Clone, Debug)]
pub struct InputVc {
    buf: VecDeque<Flit>,
    depth: usize,
    binding: Option<Binding>,
    /// Cycles the head flit has waited without winning switch allocation
    /// (for the blocking-delay congestion metric).
    pub head_blocked_cycles: u64,
}

impl InputVc {
    /// Creates an empty VC buffer of the given depth (in flits).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "VC depth must be non-zero");
        InputVc {
            buf: VecDeque::with_capacity(depth),
            depth,
            binding: None,
            head_blocked_cycles: 0,
        }
    }

    /// Number of buffered flits.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Free flit slots.
    pub fn free_space(&self) -> usize {
        self.depth - self.buf.len()
    }

    /// Buffer depth in flits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (a credit protocol violation).
    pub fn push(&mut self, flit: Flit) {
        assert!(self.buf.len() < self.depth, "VC buffer overflow: credit protocol violated");
        self.buf.push_back(flit);
    }

    /// The flit at the head of the buffer.
    pub fn front(&self) -> Option<&Flit> {
        self.buf.front()
    }

    /// Dequeues the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.buf.pop_front()
    }

    /// Current wormhole binding, if the packet at the head has been
    /// allocated downstream resources.
    pub fn binding(&self) -> Option<Binding> {
        self.binding
    }

    /// Records a successful VC allocation.
    ///
    /// # Panics
    ///
    /// Panics if a binding is already held.
    pub fn bind(&mut self, binding: Binding) {
        assert!(self.binding.is_none(), "VC already holds a wormhole binding");
        self.binding = Some(binding);
    }

    /// Releases the wormhole binding (after the tail flit departs).
    ///
    /// # Panics
    ///
    /// Panics if no binding is held.
    pub fn unbind(&mut self) -> Binding {
        self.binding.take().expect("no wormhole binding to release")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, MessageClass, PacketId};
    use crate::geometry::NodeId;

    fn flit(seq: u16) -> Flit {
        Flit {
            packet: PacketId(7),
            kind: FlitKind::Body,
            src: NodeId(0),
            dst: NodeId(1),
            seq,
            packet_len: 4,
            class: MessageClass::Synthetic,
            lookahead: Port::East,
            vc: 0,
            created_cycle: 0,
            net_inject_cycle: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut vc = InputVc::new(4);
        for s in 0..4 {
            vc.push(flit(s));
        }
        assert_eq!(vc.len(), 4);
        assert_eq!(vc.free_space(), 0);
        for s in 0..4 {
            assert_eq!(vc.pop().unwrap().seq, s);
        }
        assert!(vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut vc = InputVc::new(2);
        vc.push(flit(0));
        vc.push(flit(1));
        vc.push(flit(2));
    }

    #[test]
    fn binding_lifecycle() {
        let mut vc = InputVc::new(4);
        assert!(vc.binding().is_none());
        let b = Binding {
            out_port: Port::South,
            out_vc: 2,
        };
        vc.bind(b);
        assert_eq!(vc.binding(), Some(b));
        assert_eq!(vc.unbind(), b);
        assert!(vc.binding().is_none());
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_bind_panics() {
        let mut vc = InputVc::new(4);
        let b = Binding {
            out_port: Port::South,
            out_vc: 2,
        };
        vc.bind(b);
        vc.bind(b);
    }

    #[test]
    #[should_panic]
    fn zero_depth_panics() {
        InputVc::new(0);
    }
}
