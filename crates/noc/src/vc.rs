//! Virtual-channel input buffers and wormhole bindings.

use crate::checkpoint;
use crate::flit::Flit;
use crate::geometry::Port;
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// Largest supported VC buffer depth, in flits. VC buffers store their
/// flits inline (no heap allocation per VC), so the compile-time
/// capacity bounds the configurable depth;
/// `NetworkConfig::validate` rejects deeper configurations. The paper's
/// routers use depth 4; 16 covers the deep-buffer edge-case configs.
pub const MAX_VC_DEPTH: usize = 16;

/// The downstream resources a packet at the head of an input VC has been
/// allocated: an output port and a VC at the downstream router. Held from
/// successful VC allocation until the tail flit leaves (wormhole
/// switching).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Binding {
    /// Output port at this router.
    pub out_port: Port,
    /// Virtual channel at the downstream router's input port.
    pub out_vc: u8,
}

/// One virtual-channel input buffer of a router port.
///
/// Flit storage is an inline fixed-capacity ring ([`MAX_VC_DEPTH`]
/// slots of the `Copy` flit type): a router's VC array is one
/// contiguous allocation, and enqueue/dequeue are index arithmetic with
/// no heap traffic on the hot path. Slots outside the live window hold
/// [`Flit::PLACEHOLDER`].
#[derive(Clone, Debug)]
pub struct InputVc {
    slots: [Flit; MAX_VC_DEPTH],
    /// Index of the head flit in `slots`.
    head: u8,
    /// Number of buffered flits.
    len: u8,
    depth: u8,
    binding: Option<Binding>,
    /// Cycles the head flit has waited without winning switch allocation
    /// (for the blocking-delay congestion metric).
    pub head_blocked_cycles: u64,
}

impl InputVc {
    /// Creates an empty VC buffer of the given depth (in flits).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds [`MAX_VC_DEPTH`].
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "VC depth must be non-zero");
        assert!(
            depth <= MAX_VC_DEPTH,
            "VC depth {depth} exceeds the inline ring capacity {MAX_VC_DEPTH}"
        );
        InputVc {
            slots: [Flit::PLACEHOLDER; MAX_VC_DEPTH],
            head: 0,
            len: 0,
            depth: depth as u8,
            binding: None,
            head_blocked_cycles: 0,
        }
    }

    /// Number of buffered flits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free flit slots.
    pub fn free_space(&self) -> usize {
        (self.depth - self.len) as usize
    }

    /// Buffer depth in flits.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (a credit protocol violation).
    pub fn push(&mut self, flit: Flit) {
        assert!(self.len < self.depth, "VC buffer overflow: credit protocol violated");
        let tail = (self.head as usize + self.len as usize) % MAX_VC_DEPTH;
        self.slots[tail] = flit;
        self.len += 1;
    }

    /// The flit at the head of the buffer.
    pub fn front(&self) -> Option<&Flit> {
        (self.len > 0).then(|| &self.slots[self.head as usize])
    }

    /// Dequeues the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let flit = std::mem::replace(&mut self.slots[self.head as usize], Flit::PLACEHOLDER);
        self.head = ((self.head as usize + 1) % MAX_VC_DEPTH) as u8;
        self.len -= 1;
        Some(flit)
    }

    /// Current wormhole binding, if the packet at the head has been
    /// allocated downstream resources.
    pub fn binding(&self) -> Option<Binding> {
        self.binding
    }

    /// Records a successful VC allocation.
    ///
    /// # Panics
    ///
    /// Panics if a binding is already held.
    pub fn bind(&mut self, binding: Binding) {
        assert!(self.binding.is_none(), "VC already holds a wormhole binding");
        self.binding = Some(binding);
    }

    /// Releases the wormhole binding (after the tail flit departs).
    ///
    /// # Panics
    ///
    /// Panics if no binding is held.
    pub fn unbind(&mut self) -> Binding {
        self.binding.take().expect("no wormhole binding to release")
    }

    /// Serializes this VC buffer: depth, the live flits in FIFO order,
    /// the wormhole binding, and the blocked-cycle counter. The ring's
    /// physical head position is *not* captured — it is not observable
    /// (decode re-packs the flits from slot 0), so checkpoints taken at
    /// different ring phases of identical logical state are identical.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.depth);
        w.put_u8(self.len);
        for i in 0..self.len as usize {
            let slot = (self.head as usize + i) % MAX_VC_DEPTH;
            checkpoint::put_flit(w, &self.slots[slot]);
        }
        match self.binding {
            None => w.put_bool(false),
            Some(b) => {
                w.put_bool(true);
                checkpoint::put_port(w, b.out_port);
                w.put_u8(b.out_vc);
            }
        }
        w.put_u64(self.head_blocked_cycles);
    }

    /// Rebuilds a VC buffer serialized by [`InputVc::encode`].
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let depth = r.get_u8()? as usize;
        if depth == 0 || depth > MAX_VC_DEPTH {
            return Err(CodecError::Invalid("VC depth out of range"));
        }
        let len = r.get_u8()? as usize;
        if len > depth {
            return Err(CodecError::Invalid("VC occupancy exceeds depth"));
        }
        let mut vc = InputVc::new(depth);
        for _ in 0..len {
            vc.push(checkpoint::get_flit(r)?);
        }
        if r.get_bool()? {
            vc.binding = Some(Binding {
                out_port: checkpoint::get_port(r)?,
                out_vc: r.get_u8()?,
            });
        }
        vc.head_blocked_cycles = r.get_u64()?;
        Ok(vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, MessageClass, PacketId};
    use crate::geometry::NodeId;

    fn flit(seq: u16) -> Flit {
        Flit {
            packet: PacketId(7),
            kind: FlitKind::Body,
            src: NodeId(0),
            dst: NodeId(1),
            seq,
            packet_len: 4,
            class: MessageClass::Synthetic,
            lookahead: Port::East,
            vc: 0,
            created_cycle: 0,
            net_inject_cycle: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut vc = InputVc::new(4);
        for s in 0..4 {
            vc.push(flit(s));
        }
        assert_eq!(vc.len(), 4);
        assert_eq!(vc.free_space(), 0);
        for s in 0..4 {
            assert_eq!(vc.pop().unwrap().seq, s);
        }
        assert!(vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut vc = InputVc::new(2);
        vc.push(flit(0));
        vc.push(flit(1));
        vc.push(flit(2));
    }

    #[test]
    fn binding_lifecycle() {
        let mut vc = InputVc::new(4);
        assert!(vc.binding().is_none());
        let b = Binding {
            out_port: Port::South,
            out_vc: 2,
        };
        vc.bind(b);
        assert_eq!(vc.binding(), Some(b));
        assert_eq!(vc.unbind(), b);
        assert!(vc.binding().is_none());
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_bind_panics() {
        let mut vc = InputVc::new(4);
        let b = Binding {
            out_port: Port::South,
            out_vc: 2,
        };
        vc.bind(b);
        vc.bind(b);
    }

    #[test]
    #[should_panic]
    fn zero_depth_panics() {
        InputVc::new(0);
    }

    #[test]
    #[should_panic(expected = "inline ring capacity")]
    fn over_capacity_depth_panics() {
        InputVc::new(MAX_VC_DEPTH + 1);
    }

    #[test]
    fn ring_wraps_preserving_fifo_order() {
        // Interleave pushes and pops long enough to wrap the ring many
        // times at every fill level.
        for depth in 1..=MAX_VC_DEPTH {
            let mut vc = InputVc::new(depth);
            let mut next_in = 0u16;
            let mut next_out = 0u16;
            for round in 0..100 {
                let burst = 1 + (round % depth);
                for _ in 0..burst.min(vc.free_space()) {
                    vc.push(flit(next_in));
                    next_in += 1;
                }
                assert_eq!(vc.front().map(|f| f.seq), Some(next_out));
                for _ in 0..1 + (round % 2) {
                    if let Some(f) = vc.pop() {
                        assert_eq!(f.seq, next_out, "FIFO order broken at depth {depth}");
                        next_out += 1;
                    }
                }
            }
            while let Some(f) = vc.pop() {
                assert_eq!(f.seq, next_out);
                next_out += 1;
            }
            assert_eq!(next_in, next_out, "every pushed flit popped exactly once");
        }
    }
}
