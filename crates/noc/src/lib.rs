#![warn(missing_docs)]

//! # catnap-noc
//!
//! A cycle-level wormhole-switched, virtual-channel, mesh network-on-chip
//! simulator. This crate provides the *mechanisms* used by the Catnap
//! architecture (ISCA 2013): a concentrated 2-D mesh of input-buffered
//! routers with a speculative two-stage pipeline, look-ahead X-Y routing,
//! credit-based virtual-channel flow control, and a per-router power-state
//! machine (active / sleep / wake-up) that supports runtime power gating.
//!
//! One [`Network`] models a *single* physical network (one subnet of a
//! Multi-NoC). Multi-network orchestration, subnet selection and
//! power-gating *policies* live in the `catnap` crate, which drives one
//! `Network` per subnet.
//!
//! ## Model summary
//!
//! * Topology: `cols x rows` mesh ([`MeshDims`]); each node concentrates
//!   several tiles behind one router (concentration is handled by the
//!   network interface in the `catnap` crate).
//! * Router: 5 ports (North/East/South/West/Local), `vcs_per_port` virtual
//!   channels per port, `vc_depth` flits per VC, separable round-robin
//!   switch allocation, one flit per input port per cycle.
//! * Pipeline: stage 1 = speculative virtual-channel + switch allocation
//!   (route is already known via look-ahead routing), stage 2 = switch
//!   traversal, followed by a one-cycle link — three cycles per hop at zero
//!   load.
//! * Power gating: a router can be put to sleep when its buffers have been
//!   empty for [`GatingConfig::t_idle_detect`] consecutive cycles and no
//!   upstream router holds a wormhole binding towards it; waking takes
//!   [`GatingConfig::t_wakeup`] cycles, partially hidden by wake-up signals
//!   sent at look-ahead routing time.
//!
//! ## Example
//!
//! ```
//! use catnap_noc::{Network, NetworkConfig, Flit, NodeId};
//!
//! let cfg = NetworkConfig::catnap_subnet_128b();
//! let mut net = Network::new(cfg);
//! let src = NodeId::new(0);
//! let dst = NodeId::new(63);
//! // Inject a single-flit packet directly at the local port (normally the
//! // network interface in the `catnap` crate does this).
//! let flit = net.make_single_flit_packet(src, dst, 0);
//! assert!(net.try_inject_flit(src, 0, flit));
//! for cycle in 0..100 {
//!     net.step();
//! }
//! assert_eq!(net.stats().flits_ejected, 1);
//! ```

pub mod checkpoint;
pub mod config;
pub mod flit;
pub mod geometry;
pub mod network;
pub mod power_state;
pub mod quiescence;
pub mod router;
pub mod stats;
pub mod vc;

pub use config::{GatingConfig, NetworkConfig};
pub use flit::{Flit, FlitKind, MessageClass, PacketDescriptor, PacketId};
pub use geometry::{Direction, MeshDims, NodeId, PartitionShape, Port, RegionId, RegionMap};
pub use network::{Network, SchedStats, SHADOW_REPLAY_MAX, SHARD_DISPATCH_MIN};
pub use power_state::{PowerState, ResidencySnapshot, WakeReason};
pub use quiescence::{Quiescence, QuiescenceTracker};
pub use router::{Router, RouterPowerFingerprint};
pub use stats::{NetworkStats, RouterActivity};
pub use vc::MAX_VC_DEPTH;
