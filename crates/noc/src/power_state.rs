//! Per-router power-state machine for runtime power gating.
//!
//! A router is in one of three states (paper Section 3.1):
//!
//! * **Active** — full supply voltage; operates normally.
//! * **Sleep** — power supply cut by the sleep transistor; consumes no
//!   leakage power. Entered in a single cycle.
//! * **Wake-up** — charging local supply back to Vdd for
//!   [`GatingConfig::t_wakeup`](crate::GatingConfig::t_wakeup) cycles; the
//!   router consumes power but cannot transmit flits yet.
//!
//! The machine also keeps the accounting needed for the Compensated Sleep
//! Cycles metric (Hu et al., ISLPED '04): every sleep period is charged
//! `t_breakeven` cycles of leakage-equivalent energy for switching the sleep
//! transistor and recharging decoupling capacitance.

use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// Power state of a router.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PowerState {
    /// Powered and operational.
    Active,
    /// Power gated; no leakage, cannot hold or forward flits.
    Sleep,
    /// Transitioning from sleep to active; `remaining` cycles left.
    WakeUp {
        /// Cycles until the router becomes active.
        remaining: u32,
    },
}

impl PowerState {
    /// Whether the router can process flits this cycle.
    pub fn is_active(self) -> bool {
        self == PowerState::Active
    }

    /// Whether the router is fully gated.
    pub fn is_sleeping(self) -> bool {
        self == PowerState::Sleep
    }
}

/// Telemetry sees power states with the wake-up countdown erased: a
/// trace records *when* the phase changed, not how many charge cycles
/// remain. `catnap-telemetry` sits below this crate in the dependency
/// graph, so the conversion lives here.
impl From<PowerState> for catnap_telemetry::PowerPhase {
    fn from(state: PowerState) -> Self {
        match state {
            PowerState::Active => catnap_telemetry::PowerPhase::Active,
            PowerState::Sleep => catnap_telemetry::PowerPhase::Sleep,
            PowerState::WakeUp { .. } => catnap_telemetry::PowerPhase::Wake,
        }
    }
}

/// Why a wake-up was requested (for diagnostics and policy evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeReason {
    /// The regional congestion status of the next-lower-order subnet turned
    /// on (Catnap policy, Section 3.3).
    RegionalCongestion,
    /// An upstream router's look-ahead routing computation determined this
    /// router is the next hop of an arriving packet.
    LookaheadSignal,
    /// The local network interface holds a packet bound for this router.
    NiInjection,
    /// An explicit request from an external controller or test.
    External,
}

/// Power-state machine plus gating statistics for one router.
#[derive(Clone, Debug)]
pub struct PowerStateMachine {
    state: PowerState,
    t_wakeup: u32,
    t_breakeven: u32,
    /// Cycle the current sleep period began (valid while sleeping).
    sleep_started: u64,
    /// Total cycles spent asleep.
    pub sleep_cycles: u64,
    /// Total cycles spent in the wake-up transition.
    pub wakeup_cycles: u64,
    /// Total cycles spent active.
    pub active_cycles: u64,
    /// Number of completed or in-progress sleep periods (active→sleep
    /// transitions).
    pub sleep_transitions: u64,
    /// Sum over completed sleep periods of `max(0, length - t_breakeven)`:
    /// the compensated sleep cycles.
    pub compensated_sleep_cycles: u64,
    /// Sum over completed sleep periods of their raw length.
    pub raw_sleep_period_cycles: u64,
    /// Count of wake reasons, indexed like [`WakeReason`] discriminants.
    pub wake_reasons: [u64; 4],
}

impl PowerStateMachine {
    /// Creates an active machine with the given gating timing.
    pub fn new(t_wakeup: u32, t_breakeven: u32) -> Self {
        PowerStateMachine {
            state: PowerState::Active,
            t_wakeup,
            t_breakeven,
            sleep_started: 0,
            sleep_cycles: 0,
            wakeup_cycles: 0,
            active_cycles: 0,
            sleep_transitions: 0,
            compensated_sleep_cycles: 0,
            raw_sleep_period_cycles: 0,
            wake_reasons: [0; 4],
        }
    }

    /// Current state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Puts the router to sleep. The caller must have verified the sleep
    /// guard (empty buffers, no inbound traffic).
    ///
    /// # Panics
    ///
    /// Panics if the router is not active.
    pub fn enter_sleep(&mut self, cycle: u64) {
        assert_eq!(self.state, PowerState::Active, "can only sleep from the active state");
        self.state = PowerState::Sleep;
        self.sleep_started = cycle;
        self.sleep_transitions += 1;
    }

    /// Requests a wake-up. Idempotent: waking an active or already-waking
    /// router is a no-op (but the reason is still recorded for sleeping
    /// routers only).
    pub fn request_wake(&mut self, cycle: u64, reason: WakeReason) {
        if self.state == PowerState::Sleep {
            let period = cycle.saturating_sub(self.sleep_started);
            self.raw_sleep_period_cycles += period;
            self.compensated_sleep_cycles += period.saturating_sub(self.t_breakeven as u64);
            self.wake_reasons[reason as usize] += 1;
            if self.t_wakeup == 0 {
                self.state = PowerState::Active;
            } else {
                self.state = PowerState::WakeUp {
                    remaining: self.t_wakeup,
                };
            }
        }
    }

    /// Advances the machine by one cycle, accruing state-residency counters
    /// and completing wake-up countdowns.
    pub fn tick(&mut self) {
        match self.state {
            PowerState::Active => self.active_cycles += 1,
            PowerState::Sleep => self.sleep_cycles += 1,
            PowerState::WakeUp { remaining } => {
                self.wakeup_cycles += 1;
                if remaining <= 1 {
                    self.state = PowerState::Active;
                } else {
                    self.state = PowerState::WakeUp {
                        remaining: remaining - 1,
                    };
                }
            }
        }
    }

    /// The state [`PowerStateMachine::tick`] would leave the machine in,
    /// without mutating it or touching residency counters. Used by the
    /// sharded stepper to precompute neighbour acceptance masks for
    /// routers that will tick this cycle (the only self-induced mid-cycle
    /// transition is a wake-up countdown completing).
    pub fn state_after_tick(&self) -> PowerState {
        match self.state {
            PowerState::WakeUp { remaining } if remaining <= 1 => PowerState::Active,
            PowerState::WakeUp { remaining } => PowerState::WakeUp {
                remaining: remaining - 1,
            },
            s => s,
        }
    }

    /// Advances the machine by `dt` cycles in O(1), equivalent to `dt`
    /// calls of [`PowerStateMachine::tick`] **provided no state
    /// transition falls inside the interval**. Active and Sleep are
    /// stable (nothing external calls `enter_sleep`/`request_wake`
    /// during a fast-forwarded stretch by construction); a wake-up
    /// countdown is only stable for `remaining - 1` more ticks, which
    /// the caller's skip horizon must respect.
    ///
    /// # Panics
    ///
    /// Panics if `dt` would complete a wake-up countdown (the horizon
    /// computation is wrong in that case — the completing tick must be
    /// simulated normally so telemetry sees the Wake→Active edge).
    pub fn fast_forward(&mut self, dt: u64) {
        match self.state {
            PowerState::Active => self.active_cycles += dt,
            PowerState::Sleep => self.sleep_cycles += dt,
            PowerState::WakeUp { remaining } => {
                assert!(
                    dt < remaining as u64,
                    "fast-forward of {dt} across a wake-up completion ({remaining} remaining)"
                );
                self.wakeup_cycles += dt;
                self.state = PowerState::WakeUp {
                    remaining: remaining - dt as u32,
                };
            }
        }
    }

    /// How many further ticks this machine is guaranteed transition-free
    /// on its own: `None` for the stable states, `remaining - 1` for a
    /// wake-up countdown (the completing tick itself must be stepped).
    pub fn stable_ticks(&self) -> Option<u64> {
        match self.state {
            PowerState::Active | PowerState::Sleep => None,
            PowerState::WakeUp { remaining } => Some(remaining.saturating_sub(1) as u64),
        }
    }

    /// Full observable state, for shadow-replay equality checks.
    pub fn residency_snapshot(&self) -> ResidencySnapshot {
        ResidencySnapshot {
            state: self.state,
            sleep_started: self.sleep_started,
            sleep_cycles: self.sleep_cycles,
            wakeup_cycles: self.wakeup_cycles,
            active_cycles: self.active_cycles,
            sleep_transitions: self.sleep_transitions,
            compensated_sleep_cycles: self.compensated_sleep_cycles,
            raw_sleep_period_cycles: self.raw_sleep_period_cycles,
            wake_reasons: self.wake_reasons,
        }
    }

    /// Compensated sleep cycles including the in-progress period (if any)
    /// up to `cycle`.
    pub fn compensated_at(&self, cycle: u64) -> u64 {
        let mut csc = self.compensated_sleep_cycles;
        if self.state == PowerState::Sleep {
            let period = cycle.saturating_sub(self.sleep_started);
            csc += period.saturating_sub(self.t_breakeven as u64);
        }
        csc
    }

    /// Closes out an in-progress sleep period at simulation end so the CSC
    /// accounting covers the full run. Idempotent: the open period is
    /// restarted at `cycle` so neither a second `finalize` nor
    /// [`PowerStateMachine::compensated_at`] double-counts it.
    pub fn finalize(&mut self, cycle: u64) {
        if self.state == PowerState::Sleep {
            let period = cycle.saturating_sub(self.sleep_started);
            self.raw_sleep_period_cycles += period;
            self.compensated_sleep_cycles += period.saturating_sub(self.t_breakeven as u64);
            self.sleep_started = cycle;
        }
    }

    /// Serializes the full machine state (checkpointing).
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        match self.state {
            PowerState::Active => w.put_u8(0),
            PowerState::Sleep => w.put_u8(1),
            PowerState::WakeUp { remaining } => {
                w.put_u8(2);
                w.put_u32(remaining);
            }
        }
        w.put_u32(self.t_wakeup);
        w.put_u32(self.t_breakeven);
        w.put_u64(self.sleep_started);
        w.put_u64(self.sleep_cycles);
        w.put_u64(self.wakeup_cycles);
        w.put_u64(self.active_cycles);
        w.put_u64(self.sleep_transitions);
        w.put_u64(self.compensated_sleep_cycles);
        w.put_u64(self.raw_sleep_period_cycles);
        for n in self.wake_reasons {
            w.put_u64(n);
        }
    }

    /// Rebuilds a machine serialized by [`PowerStateMachine::encode`].
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let state = match r.get_u8()? {
            0 => PowerState::Active,
            1 => PowerState::Sleep,
            2 => {
                let remaining = r.get_u32()?;
                if remaining == 0 {
                    return Err(CodecError::Invalid("zero wake-up countdown"));
                }
                PowerState::WakeUp { remaining }
            }
            _ => return Err(CodecError::Invalid("power state tag")),
        };
        let mut m = PowerStateMachine::new(r.get_u32()?, r.get_u32()?);
        m.state = state;
        m.sleep_started = r.get_u64()?;
        m.sleep_cycles = r.get_u64()?;
        m.wakeup_cycles = r.get_u64()?;
        m.active_cycles = r.get_u64()?;
        m.sleep_transitions = r.get_u64()?;
        m.compensated_sleep_cycles = r.get_u64()?;
        m.raw_sleep_period_cycles = r.get_u64()?;
        for slot in m.wake_reasons.iter_mut() {
            *slot = r.get_u64()?;
        }
        Ok(m)
    }
}

/// Every observable field of a [`PowerStateMachine`], used by the
/// debug-mode shadow replay to assert a closed-form fast-forward equals
/// cycle-by-cycle ticking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResidencySnapshot {
    /// Current power state.
    pub state: PowerState,
    /// Start cycle of the open sleep period.
    pub sleep_started: u64,
    /// Total sleep cycles.
    pub sleep_cycles: u64,
    /// Total wake-up cycles.
    pub wakeup_cycles: u64,
    /// Total active cycles.
    pub active_cycles: u64,
    /// Sleep-period count.
    pub sleep_transitions: u64,
    /// Compensated sleep cycles over closed periods.
    pub compensated_sleep_cycles: u64,
    /// Raw sleep cycles over closed periods.
    pub raw_sleep_period_cycles: u64,
    /// Wake-reason histogram.
    pub wake_reasons: [u64; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_takes_t_wakeup_cycles() {
        let mut m = PowerStateMachine::new(10, 12);
        m.enter_sleep(0);
        assert!(m.state().is_sleeping());
        m.request_wake(5, WakeReason::External);
        assert_eq!(m.state(), PowerState::WakeUp { remaining: 10 });
        for _ in 0..9 {
            m.tick();
            assert!(!m.state().is_active());
        }
        m.tick();
        assert!(m.state().is_active());
        assert_eq!(m.wakeup_cycles, 10);
    }

    #[test]
    fn csc_subtracts_breakeven_per_period() {
        let mut m = PowerStateMachine::new(10, 12);
        // Period of 50 cycles: contributes 38.
        m.enter_sleep(0);
        m.request_wake(50, WakeReason::RegionalCongestion);
        assert_eq!(m.compensated_sleep_cycles, 38);
        assert_eq!(m.raw_sleep_period_cycles, 50);
        // Unprofitable period of 5 cycles: contributes 0, not negative.
        for _ in 0..10 {
            m.tick();
        }
        m.enter_sleep(100);
        m.request_wake(105, WakeReason::LookaheadSignal);
        assert_eq!(m.compensated_sleep_cycles, 38);
        assert_eq!(m.raw_sleep_period_cycles, 55);
        assert_eq!(m.sleep_transitions, 2);
    }

    #[test]
    fn wake_is_idempotent() {
        let mut m = PowerStateMachine::new(4, 12);
        m.enter_sleep(0);
        m.request_wake(8, WakeReason::NiInjection);
        let before = m.state();
        m.request_wake(9, WakeReason::External);
        assert_eq!(m.state(), before, "second wake must not restart the countdown");
        assert_eq!(m.wake_reasons[WakeReason::NiInjection as usize], 1);
        assert_eq!(m.wake_reasons[WakeReason::External as usize], 0);
    }

    #[test]
    #[should_panic]
    fn cannot_sleep_while_waking() {
        let mut m = PowerStateMachine::new(4, 12);
        m.enter_sleep(0);
        m.request_wake(1, WakeReason::External);
        m.enter_sleep(2);
    }

    #[test]
    fn residency_counters_partition_time() {
        let mut m = PowerStateMachine::new(3, 12);
        for _ in 0..5 {
            m.tick();
        }
        m.enter_sleep(5);
        for _ in 0..7 {
            m.tick();
        }
        m.request_wake(12, WakeReason::External);
        for _ in 0..8 {
            m.tick();
        }
        assert_eq!(m.active_cycles + m.sleep_cycles + m.wakeup_cycles, 20);
        assert_eq!(m.sleep_cycles, 7);
        assert_eq!(m.wakeup_cycles, 3);
        assert_eq!(m.active_cycles, 10);
    }

    #[test]
    fn finalize_accounts_open_period() {
        let mut m = PowerStateMachine::new(10, 12);
        m.enter_sleep(100);
        m.finalize(200);
        assert_eq!(m.raw_sleep_period_cycles, 100);
        assert_eq!(m.compensated_sleep_cycles, 88);
    }

    #[test]
    fn fast_forward_matches_ticks_in_every_state() {
        // Active, Sleep, and a partial wake-up countdown.
        for setup in 0..3u8 {
            let mk = || {
                let mut m = PowerStateMachine::new(10, 12);
                if setup >= 1 {
                    m.tick();
                    m.enter_sleep(1);
                }
                if setup == 2 {
                    m.tick();
                    m.request_wake(2, WakeReason::External);
                }
                m
            };
            let mut ticked = mk();
            let mut skipped = mk();
            let dt = if setup == 2 { 9 } else { 1000 };
            for _ in 0..dt {
                ticked.tick();
            }
            skipped.fast_forward(dt);
            assert_eq!(
                skipped.residency_snapshot(),
                ticked.residency_snapshot(),
                "setup {setup}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wake-up completion")]
    fn fast_forward_across_wake_completion_panics() {
        let mut m = PowerStateMachine::new(4, 12);
        m.enter_sleep(0);
        m.request_wake(1, WakeReason::External);
        assert_eq!(m.stable_ticks(), Some(3));
        m.fast_forward(4);
    }

    #[test]
    fn zero_wakeup_latency_wakes_immediately() {
        let mut m = PowerStateMachine::new(0, 12);
        m.enter_sleep(0);
        m.request_wake(3, WakeReason::External);
        assert!(m.state().is_active());
    }
}
