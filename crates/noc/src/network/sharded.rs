//! Spatially sharded phase 2: the mesh is partitioned into disjoint
//! spatial shards — row bands, column bands, or 2-D tiles
//! ([`PartitionShape`]) — and each shard's slice of the cycle's run set
//! is ticked by one pool lane, **bit-identically** to the serial
//! ascending-index sweep in [`Network::finish_scheduled_phase2`].
//!
//! Every shard is a list of contiguous router-index *segments* (a row
//! band is one segment; a column band or tile is one segment per row it
//! spans), and the segments of all shards tile `0..n` exactly. The
//! sweep hands each lane mutable slices of exactly its own segments, so
//! the partition shape never touches safety; what it changes is merge
//! order, handled below.
//!
//! Why this can be exact (DESIGN.md §14/§16 carry the full argument):
//!
//! * Flits, credits and ejections produced by a phase-2 tick are
//!   *staged* — nothing a router emits this cycle is observable by any
//!   other router until the next cycle edge (§9). Shards therefore only
//!   collect them, recording a buffer watermark at the end of each
//!   segment. The serial merge walks all segments in ascending segment
//!   order (which interleaves across shards for non-contiguous shapes)
//!   and splices each segment's window of its shard's buffers back
//!   together — routers within a segment are ticked ascending, and the
//!   segments tile the index space ascending, so the concatenation
//!   restores the exact ascending-source ordering of the staging
//!   buffers, for any partition shape.
//! * The only same-cycle coupling between ticking routers is the
//!   neighbour-acceptance mask read: router `i` reads neighbour `j`'s
//!   mask *post-tick* if `j < i` and *pre-tick* otherwise. Without port
//!   gating, and with wake-up latencies of at least two cycles, the
//!   post-tick mask of every run-set member is a pure function of its
//!   own pre-cycle state ([`Router::port_active_mask_after_tick`]):
//!   mid-phase wake *requests* land on sleeping (mask 0) or waking
//!   (mask 0) routers and leave the mask 0 for the rest of the cycle.
//!   Both mask generations are therefore snapshotted up front and read
//!   immutably by every shard — this argument never depended on shard
//!   geometry.
//! * Wake pings raised by ticking routers are not applied by the
//!   shards; each shard records `(source index, direction)` and the
//!   merge replays them serially in ascending source order, replicating
//!   the serial sweep's interleaving of ping application and deferred-
//!   router ticks exactly (the replay keeps a pending set of woken
//!   deferred routers and ticks each one at its canonical position).
//!
//! Configurations outside that envelope (port gating, or wake-up in
//! fewer than 2 cycles) and degenerate calls (1 shard, serial pool,
//! forced-full-step mode) fall back to the serial path, which is
//! bit-identical by definition.

use super::{Network, NO_NEIGHBOR};
use crate::flit::Flit;
use crate::geometry::{NodeId, PartitionShape, Port, NUM_PORTS};
use crate::power_state::WakeReason;
use crate::router::{Router, RouterOutput};
use catnap_telemetry::Sink;
use catnap_util::ThreadPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

/// Below this run-set size the serial phase 2 wins: fan-out costs a
/// condvar wake and a steal handshake per band, which only pays for
/// itself when each band has a meaningful pile of routers to tick.
/// This is the *static* crossover — [`Network::step_sharded`] applies
/// it verbatim, while the adaptive dispatch controller (`catnap` crate)
/// passes its own learned threshold to
/// [`Network::step_sharded_opts`]. Purely scheduling; bit-identity is
/// unconditional.
pub const SHARD_DISPATCH_MIN: usize = 48;

/// Cumulative watermarks into a shard's output buffers, recorded after
/// each swept segment so the merge can splice exactly that segment's
/// window back into the global staging buffers.
#[derive(Clone, Copy, Debug, Default)]
struct SegMark {
    links: usize,
    credits: usize,
    ejected: usize,
    pings: usize,
    next_hot: usize,
    resched: usize,
    stepped: usize,
}

/// Per-shard output collection: everything a shard's sweep would have
/// pushed into the network-global staging buffers, kept local so the
/// sweep runs without synchronisation and the serial merge can splice
/// the buffers back together in canonical (ascending source) order.
#[derive(Clone, Debug, Default)]
pub(crate) struct BandScratch {
    /// Router-step scratch, reused across the shard's routers.
    out: RouterOutput,
    /// Link-stage entries `(dst router, in port, flit)`.
    links: Vec<(usize, Port, Flit)>,
    /// Credit returns `(upstream router, out port, vc)`.
    credits: Vec<(usize, Port, u8)>,
    /// Ejected flits with their nodes.
    ejected: Vec<(NodeId, Flit)>,
    /// Wake pings `(source router index, direction port)`.
    pings: Vec<(u32, Port)>,
    /// Routers to queue for the next cycle.
    next_hot: Vec<u32>,
    /// Wakeup-queue entries `(due, router, cursor stamp)`.
    resched: Vec<(u64, u32, u64)>,
    /// Routers that became drained this tick.
    drained_delta: u64,
    /// [`super::SchedStats`] deltas.
    router_runs: u64,
    idle_runs: u64,
    stalled_runs: u64,
    /// Ticked routers, for the telemetry sweep (ascending within each
    /// segment by construction).
    stepped: Vec<u32>,
    /// One cumulative watermark per swept segment, in this shard's
    /// (ascending) segment order.
    seg_marks: Vec<SegMark>,
    /// Merge cursor: how many of this shard's segments have been
    /// spliced back so far.
    merged: usize,
}

impl BandScratch {
    /// Records the end-of-segment watermark; called by the sweeping lane
    /// after each segment.
    fn mark(&mut self) {
        self.seg_marks.push(SegMark {
            links: self.links.len(),
            credits: self.credits.len(),
            ejected: self.ejected.len(),
            pings: self.pings.len(),
            next_hot: self.next_hot.len(),
            resched: self.resched.len(),
            stepped: self.stepped.len(),
        });
    }

    /// Resets all buffers and counters after the merge consumed them.
    fn clear(&mut self) {
        self.links.clear();
        self.credits.clear();
        self.ejected.clear();
        self.pings.clear();
        self.next_hot.clear();
        self.resched.clear();
        self.stepped.clear();
        self.seg_marks.clear();
        self.merged = 0;
        self.drained_delta = 0;
        self.router_runs = 0;
        self.idle_runs = 0;
        self.stalled_runs = 0;
    }
}

/// Reusable buffers and diagnostics of the sharded stepper, owned by
/// the [`Network`] so steady-state sharded cycles allocate nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardRuntime {
    /// This cycle's run set, sorted ascending.
    runset: Vec<u32>,
    /// Acceptance masks at the cycle edge (pre any phase-2 tick).
    mask_pre: Vec<u8>,
    /// Predicted post-tick masks: `mask_pre` overwritten at run-set
    /// members with [`Router::port_active_mask_after_tick`].
    mask_post: Vec<u8>,
    /// One scratch per shard, drained (and thereby cleared) by the merge.
    bands: Vec<BandScratch>,
    /// Cached partition, flattened to `(owning shard, router range)`
    /// segments sorted ascending by start — the segments tile `0..n`
    /// exactly. Rebuilt only when `parts_key` changes.
    seg_order: Vec<(u32, Range<usize>)>,
    /// `(shape, shard count)` the cached partition was built for.
    parts_key: Option<(PartitionShape, usize)>,
    /// Number of shards in the cached partition (post-clamping).
    nparts: usize,
    /// Owning shard of each *non-empty* segment this cycle, in segment
    /// order; the merge walks this to restore ascending-source order.
    merge_plan: Vec<u32>,
    /// Ticked routers across shards and replay, for the telemetry sweep.
    stepped: Vec<u32>,
    /// Merged wake pings in ascending source order.
    pings: Vec<(u32, Port)>,
    /// Cycles that actually ran the parallel sweep (fallbacks and
    /// below-threshold cycles excluded). Diagnostics only: tests use it
    /// to assert the sharded path truly engaged.
    engaged_steps: u64,
}

impl<S: Sink> Network<S> {
    /// Whether this configuration is inside the sharded stepper's
    /// exactness envelope: no port gating (gated input ports create
    /// true same-cycle ordering dependencies between neighbours), and
    /// wake-up latency of at least two cycles when gating is on (an
    /// instantly- or next-tick-completing wake flips acceptance masks
    /// mid-phase in ways only the serial order observes). Outside the
    /// envelope [`Network::step_sharded`] silently runs the serial
    /// step, so results are identical either way.
    pub fn shardable(&self) -> bool {
        !self.cfg.port_gating && (!self.cfg.gating_enabled || self.cfg.gating.t_wakeup >= 2)
    }

    /// Number of cycles the parallel band sweep actually executed (as
    /// opposed to falling back to the serial path). Diagnostics only;
    /// never serialized.
    pub fn sharded_steps(&self) -> u64 {
        self.shard.engaged_steps
    }

    /// Advances the network by one cycle, ticking phase 2 in up to
    /// `shards` spatial shards on `pool`. Bit-identical to
    /// [`Network::step`] at every shard count — falls back to it
    /// outright when sharding cannot apply (see
    /// [`Network::shardable`]), when `shards <= 1`, when the pool is
    /// serial, or when this cycle's run set is too small to pay for
    /// fan-out. Uses the static [`SHARD_DISPATCH_MIN`] crossover and a
    /// partition shape picked from the mesh aspect ratio
    /// ([`PartitionShape::pick`]).
    pub fn step_sharded(&mut self, pool: &ThreadPool, shards: usize) {
        let shape = PartitionShape::pick(self.cfg.dims, shards);
        self.step_sharded_opts(pool, shards, shape, SHARD_DISPATCH_MIN);
    }

    /// [`Network::step_sharded`] with explicit scheduling knobs: the
    /// partition `shape` and the minimum run-set size `min_runset` at
    /// which fan-out engages (`usize::MAX` forces the serial phase 2,
    /// small values force the parallel sweep). Both knobs are pure
    /// scheduling — results are bit-identical to [`Network::step`] for
    /// every combination; the adaptive dispatch controller in the
    /// `catnap` crate drives them from learned cost estimates.
    pub fn step_sharded_opts(&mut self, pool: &ThreadPool, shards: usize, shape: PartitionShape, min_runset: usize) {
        if self.force_full_step || shards <= 1 || pool.parallelism() <= 1 || !self.shardable() {
            self.step();
            return;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        let mut todo = self.begin_scheduled_cycle();

        let mut rt = std::mem::take(&mut self.shard);
        rt.runset.clear();
        rt.runset.extend(todo.iter().map(|&Reverse(i)| i));
        rt.runset.sort_unstable();
        todo.clear();
        if rt.runset.len() < min_runset.max(2) {
            for &i in &rt.runset {
                todo.push(Reverse(i));
            }
            self.shard = rt;
            self.finish_scheduled_phase2(todo);
            return;
        }
        self.todo = todo;

        // Snapshot both mask generations (see the module docs): every
        // shard reads neighbours through these immutable snapshots
        // instead of the live `active_mask` cache.
        rt.mask_pre.clear();
        rt.mask_pre.extend_from_slice(&self.active_mask);
        rt.mask_post.clear();
        rt.mask_post.extend_from_slice(&self.active_mask);
        for &i in &rt.runset {
            rt.mask_post[i as usize] = self.routers[i as usize].port_active_mask_after_tick();
        }

        // (Re)build the flattened segment partition when the shape or
        // shard count changes; steady state reuses the cache.
        if rt.parts_key != Some((shape, shards)) {
            let parts = self.cfg.dims.partition(shape, shards);
            rt.seg_order.clear();
            for (s, segs) in parts.iter().enumerate() {
                for seg in segs {
                    rt.seg_order.push((s as u32, seg.clone()));
                }
            }
            rt.seg_order.sort_unstable_by_key(|(_, r)| r.start);
            rt.nparts = parts.len();
            rt.parts_key = Some((shape, shards));
        }
        if rt.bands.len() < rt.nparts {
            rt.bands.resize_with(rt.nparts, BandScratch::default);
        }

        // Split the per-router state vectors into disjoint segment
        // slices (the segments tile `0..n` ascending, so consumption is
        // strictly sequential), group each shard's segments, and sweep
        // the shards in parallel. Everything a lane touches is either
        // its own slices or an immutable snapshot.
        {
            let ctx = SweepCtx {
                adj: &self.adj[..],
                route_lut: &self.route_lut[..],
                mask_pre: &rt.mask_pre[..],
                mask_post: &rt.mask_post[..],
                n: self.cfg.dims.num_nodes(),
                cycle: self.cycle,
                telemetry: S::ENABLED,
            };
            let mut routers_rest = &mut self.routers[..];
            let mut cursor_rest = &mut self.cursor[..];
            let mut hot_rest = &mut self.hot_stamp[..];
            let mut mask_rest = &mut self.active_mask[..];
            let mut runset_rest = &rt.runset[..];
            rt.merge_plan.clear();
            let mut per_shard: Vec<Vec<SegSlices<'_>>> = Vec::new();
            per_shard.resize_with(rt.nparts, Vec::new);
            let mut consumed = 0usize;
            for (owner, range) in &rt.seg_order {
                debug_assert_eq!(range.start, consumed, "segments must tile 0..n ascending");
                consumed = range.end;
                let len = range.end - range.start;
                let (routers, rr) = routers_rest.split_at_mut(len);
                routers_rest = rr;
                let (cursor, cr) = cursor_rest.split_at_mut(len);
                cursor_rest = cr;
                let (hot_stamp, hr) = hot_rest.split_at_mut(len);
                hot_rest = hr;
                let (mask, mr) = mask_rest.split_at_mut(len);
                mask_rest = mr;
                let split = runset_rest.partition_point(|&i| (i as usize) < range.end);
                let (runset, rsr) = runset_rest.split_at(split);
                runset_rest = rsr;
                if runset.is_empty() {
                    continue;
                }
                rt.merge_plan.push(*owner);
                per_shard[*owner as usize].push(SegSlices {
                    base: range.start,
                    routers,
                    cursor,
                    hot_stamp,
                    mask,
                    runset,
                });
            }
            debug_assert_eq!(consumed, ctx.n, "partition must cover the whole mesh");

            let mut bands_rest = &mut rt.bands[..];
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(rt.nparts);
            for segs in per_shard {
                let (scratch, br) = bands_rest.split_first_mut().expect("one scratch per shard");
                bands_rest = br;
                if segs.is_empty() {
                    continue;
                }
                jobs.push(Box::new(move || {
                    for seg in segs {
                        band_sweep(seg, ctx, scratch);
                        scratch.mark();
                    }
                }));
            }
            pool.run(jobs);
        }

        // Serial merge in ascending segment order: the merge plan names
        // each non-empty segment's owning shard, and the watermark pair
        // `[seg_marks[merged-1], seg_marks[merged])` brackets exactly
        // that segment's window of the shard's buffers. Routers ascend
        // within a segment and segments ascend globally, so splicing the
        // windows in plan order restores the exact ascending-source
        // ordering the serial sweep would have built — for any shape.
        rt.stepped.clear();
        rt.pings.clear();
        for &owner in &rt.merge_plan {
            let b = &mut rt.bands[owner as usize];
            let prev = if b.merged == 0 {
                SegMark::default()
            } else {
                b.seg_marks[b.merged - 1]
            };
            let cur = b.seg_marks[b.merged];
            b.merged += 1;
            for &(nbr, in_port, flit) in &b.links[prev.links..cur.links] {
                self.inflight[nbr * NUM_PORTS + in_port.index()] += 1;
                self.link_stage.push((nbr, in_port, flit));
            }
            self.staged_credits.extend_from_slice(&b.credits[prev.credits..cur.credits]);
            for i in prev.ejected..cur.ejected {
                let (node, flit) = b.ejected[i];
                self.record_ejection(node, flit);
            }
            self.next_hot.extend_from_slice(&b.next_hot[prev.next_hot..cur.next_hot]);
            for &(due, idx, stamp) in &b.resched[prev.resched..cur.resched] {
                self.wakeups.push(Reverse((due, idx, stamp)));
            }
            rt.stepped.extend_from_slice(&b.stepped[prev.stepped..cur.stepped]);
            rt.pings.extend_from_slice(&b.pings[prev.pings..cur.pings]);
        }
        for b in &mut rt.bands {
            debug_assert_eq!(b.merged, b.seg_marks.len(), "merge must drain every segment");
            self.nondrained -= b.drained_delta as usize;
            self.sched.router_runs += b.router_runs;
            self.sched.idle_runs += b.idle_runs;
            self.sched.stalled_runs += b.stalled_runs;
            b.clear();
        }

        // Replay the deferred wake pings at their canonical positions.
        self.replay_pings(&rt.pings, &mut rt.stepped);

        // Telemetry: same sweep as the serial path, in ascending index
        // order (band ticks are ascending already; replay ticks splice
        // in by sorting).
        if S::ENABLED {
            rt.stepped.sort_unstable();
            for i in 0..rt.stepped.len() {
                self.note_power(rt.stepped[i] as usize);
            }
        }
        rt.stepped.clear();
        rt.pings.clear();
        rt.engaged_steps += 1;
        self.shard = rt;
    }

    /// Serially replays the wake pings the bands deferred, in ascending
    /// source order, replicating [`Network::wake_neighbor_instep`]'s
    /// canonical interleaving:
    ///
    /// * target index below the source: the canonical loop had already
    ///   ticked the target (or absorbed its stretch), so the request
    ///   lands on the materialized router — `sync_to(cycle)`, wake,
    ///   reschedule.
    /// * target at or above the source and already ticked or pending
    ///   (`hot_stamp == cycle`): the canonical request is an observable
    ///   no-op — run-set members are never asleep at phase 2, and an
    ///   already-woken pending target ignores the duplicate request.
    /// * otherwise: the wake lands at the cycle edge and the target
    ///   joins the *pending* set, ticked exactly when the canonical
    ///   ascending scan would have reached it (before the first ping
    ///   whose source index exceeds it, or at the end).
    fn replay_pings(&mut self, pings: &[(u32, Port)], stepped: &mut Vec<u32>) {
        let cycle = self.cycle;
        let mut pending: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        for &(src, dir_port) in pings {
            while let Some(&Reverse(idx)) = pending.peek() {
                if idx < src {
                    pending.pop();
                    self.replay_tick(idx as usize, stepped);
                } else {
                    break;
                }
            }
            let Some(dir) = dir_port.direction() else { continue };
            let node = self.routers[src as usize].node();
            let Some(nbr) = self.cfg.dims.neighbor(node, dir) else {
                continue;
            };
            let idx = nbr.index();
            let in_port = Port::from(dir.opposite());
            if (idx as u32) < src {
                self.sync_to(idx, cycle);
                self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                self.reschedule(idx);
            } else if self.hot_stamp[idx] == cycle {
                // Already ticked by a band, or already woken and
                // pending: observable no-op (see above).
            } else {
                self.sync_to(idx, cycle - 1);
                self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                self.hot_stamp[idx] = cycle;
                pending.push(Reverse(idx as u32));
            }
        }
        while let Some(Reverse(idx)) = pending.pop() {
            self.replay_tick(idx as usize, stepped);
        }
    }

    /// Ticks one pending replay target: the drained-router branch of
    /// [`Network::run_scheduled_router`], verbatim (a pinged deferred
    /// router is always drained — a non-drained router would have been
    /// in the run set).
    fn replay_tick(&mut self, idx: usize, stepped: &mut Vec<u32>) {
        debug_assert_eq!(self.cursor[idx], self.cycle - 1);
        debug_assert!(self.routers[idx].is_drained(), "pinged deferred router holds flits");
        self.sched.router_runs += 1;
        self.sched.idle_runs += 1;
        self.routers[idx].idle_tick();
        self.cursor[idx] = self.cycle;
        self.active_mask[idx] = self.routers[idx].port_active_mask();
        self.reschedule(idx);
        if S::ENABLED {
            stepped.push(idx as u32);
        }
    }
}

/// One segment's mutable slices of the per-router state (offset by
/// `base`) plus its slice of the cycle's sorted run set. A shard's lane
/// receives one of these per segment it owns.
struct SegSlices<'a> {
    base: usize,
    routers: &'a mut [Router],
    cursor: &'a mut [u64],
    hot_stamp: &'a mut [u64],
    mask: &'a mut [u8],
    runset: &'a [u32],
}

/// The shared immutable context every sweeping lane reads: adjacency,
/// the route LUT, both mask-generation snapshots, and cycle scalars.
#[derive(Clone, Copy)]
struct SweepCtx<'a> {
    adj: &'a [[usize; NUM_PORTS]],
    route_lut: &'a [Port],
    mask_pre: &'a [u8],
    mask_post: &'a [u8],
    n: usize,
    cycle: u64,
    telemetry: bool,
}

/// One segment's phase-2 sweep: [`Network::run_scheduled_router`] in
/// pure per-segment form — identical tick logic and output ordering,
/// with all cross-segment effects (staging pushes, wake pings,
/// scheduler queues) collected into the owning shard's [`BandScratch`]
/// instead of applied.
fn band_sweep(s: SegSlices<'_>, ctx: SweepCtx<'_>, b: &mut BandScratch) {
    let cycle = ctx.cycle;
    for &idxu in s.runset {
        let gi = idxu as usize;
        let li = gi - s.base;
        debug_assert_eq!(s.cursor[li], cycle - 1, "scheduled router not at the cycle edge");
        b.router_runs += 1;
        if s.routers[li].is_drained() {
            b.idle_runs += 1;
            s.routers[li].idle_tick();
            s.cursor[li] = cycle;
            s.mask[li] = s.routers[li].port_active_mask();
            debug_assert_eq!(s.mask[li], ctx.mask_post[gi], "post-tick mask mispredicted");
            if let Some(dt) = s.routers[li].next_wake_completion() {
                b.resched.push((cycle + dt, idxu, cycle));
            }
        } else {
            let adj = ctx.adj[gi];
            let node = s.routers[li].node();
            // The neighbour-generation rule: lower-indexed neighbours
            // read post-tick (the serial scan has notionally passed
            // them), higher-indexed ones pre-tick. Non-run-set routers
            // have identical masks in both snapshots.
            let mut neighbor_active = [true; NUM_PORTS];
            for port in [Port::North, Port::East, Port::South, Port::West] {
                let pi = port.index();
                neighbor_active[pi] = match adj[pi] {
                    NO_NEIGHBOR => false,
                    nbr => {
                        let m = if nbr < gi {
                            ctx.mask_post[nbr]
                        } else {
                            ctx.mask_pre[nbr]
                        };
                        m & (1u8 << port.opposite().index()) != 0
                    }
                };
            }

            let mut out = std::mem::take(&mut b.out);
            s.routers[li].step(&neighbor_active, &mut out);
            s.cursor[li] = cycle;
            s.mask[li] = s.routers[li].port_active_mask();
            debug_assert_eq!(s.mask[li], ctx.mask_post[gi], "post-tick mask mispredicted");
            if out.outbound.is_empty() && out.credits.is_empty() && out.ejected.is_empty() && out.wake_pings.is_empty()
            {
                b.stalled_runs += 1;
            }

            for ob in &out.outbound {
                let nbr = adj[ob.out_port.index()];
                debug_assert!(nbr != NO_NEIGHBOR, "link to nowhere");
                let in_port = ob.out_port.opposite();
                let mut flit = ob.flit;
                flit.lookahead = ctx.route_lut[nbr * ctx.n + flit.dst.index()];
                b.links.push((nbr, in_port, flit));
            }
            for cr in &out.credits {
                let upstream = adj[cr.in_port.index()];
                debug_assert!(upstream != NO_NEIGHBOR, "credit to nowhere");
                b.credits.push((upstream, cr.in_port.opposite(), cr.vc));
            }
            for flit in out.ejected.drain(..) {
                b.ejected.push((node, flit));
            }
            for &ping in &out.wake_pings {
                b.pings.push((idxu, ping));
            }
            b.out = out;

            if s.routers[li].is_drained() {
                b.drained_delta += 1;
                if let Some(dt) = s.routers[li].next_wake_completion() {
                    b.resched.push((cycle + dt, idxu, cycle));
                }
            } else {
                // `mark_next`, segment-locally: stamp and queue for the
                // next cycle (each run-set member runs exactly once, so
                // the dedup guard always passes).
                s.hot_stamp[li] = cycle + 1;
                b.next_hot.push(idxu);
            }
        }
        if ctx.telemetry {
            b.stepped.push(idxu);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::NetworkConfig;
    use crate::geometry::{MeshDims, NodeId, PartitionShape};
    use crate::network::Network;
    use catnap_util::codec::ByteWriter;
    use catnap_util::{SimRng, ThreadPool};

    fn net(gating: bool, port_gating: bool) -> Network {
        let cfg = NetworkConfig::with_width(128)
            .dims(MeshDims::new(8, 8))
            .gating_enabled(gating)
            .port_gating(port_gating);
        Network::new(cfg)
    }

    fn state_bytes(n: &mut Network) -> Vec<u8> {
        let mut w = ByteWriter::new();
        n.save_state(&mut w);
        w.into_inner()
    }

    /// Drives `serial` and `sharded` with identical random traffic,
    /// stepping the first serially and the second through the sharded
    /// path, asserting byte-identical serialized state along the way.
    fn differential(gating: bool, shards: usize, pool: &ThreadPool) {
        differential_opts(gating, shards, None, super::SHARD_DISPATCH_MIN, pool);
    }

    /// [`differential`] with explicit partition shape and dispatch
    /// floor, exercising [`Network::step_sharded_opts`] directly.
    fn differential_opts(
        gating: bool,
        shards: usize,
        shape: Option<PartitionShape>,
        min_runset: usize,
        pool: &ThreadPool,
    ) {
        let mut a = net(gating, false);
        let mut b = net(gating, false);
        let mut rng = SimRng::new(42);
        let nodes = 64u64;
        for cycle in 0..900u64 {
            // Bursty load with a long quiet tail so gating engages and
            // heavy enough that the run set clears the dispatch floor.
            let rate = if cycle % 300 < 120 { 0.35 } else { 0.002 };
            for n in 0..nodes {
                if rng.gen_bool(rate) {
                    let src = NodeId(n as u16);
                    let dst = NodeId(rng.u64_below(nodes) as u16);
                    if src != dst {
                        let fa = a.make_single_flit_packet(src, dst, cycle);
                        let fb = b.make_single_flit_packet(src, dst, cycle);
                        assert_eq!(a.try_inject_flit(src, 0, fa), b.try_inject_flit(src, 0, fb));
                    }
                }
            }
            // Crude gating policy so sleep/wake paths run: try to gate
            // everything periodically.
            if gating && cycle % 7 == 0 {
                for i in 0..64u16 {
                    let ra = a.request_sleep(NodeId(i));
                    let rb = b.request_sleep(NodeId(i));
                    assert_eq!(ra, rb, "sleep divergence at node {i} cycle {cycle}");
                }
            }
            a.step();
            match shape {
                Some(sh) => b.step_sharded_opts(pool, shards, sh, min_runset),
                None => b.step_sharded(pool, shards),
            }
            assert_eq!(a.cycle(), b.cycle());
            assert_eq!(a.stats().flits_ejected, b.stats().flits_ejected, "cycle {cycle}");
            a.drain_ejected();
            b.drain_ejected();
            if cycle % 150 == 149 {
                assert_eq!(
                    state_bytes(&mut a),
                    state_bytes(&mut b),
                    "state diverged by cycle {cycle} (gating={gating}, shards={shards}, shape={shape:?})"
                );
            }
        }
        assert_eq!(state_bytes(&mut a), state_bytes(&mut b));
        if min_runset < usize::MAX {
            assert!(b.sharded_steps() > 0, "sharded path never engaged (shards={shards})");
        } else {
            assert_eq!(b.sharded_steps(), 0, "min_runset=MAX must pin the serial phase 2");
        }
    }

    #[test]
    fn sharded_step_is_bit_identical_without_gating() {
        let pool = ThreadPool::new(4);
        for shards in [2, 3, 4, 8] {
            differential(false, shards, &pool);
        }
    }

    #[test]
    fn sharded_step_is_bit_identical_with_gating() {
        let pool = ThreadPool::new(4);
        for shards in [2, 3, 4, 8] {
            differential(true, shards, &pool);
        }
    }

    #[test]
    fn column_bands_are_bit_identical() {
        let pool = ThreadPool::new(4);
        let min = super::SHARD_DISPATCH_MIN;
        differential_opts(false, 3, Some(PartitionShape::ColBands), min, &pool);
        differential_opts(true, 4, Some(PartitionShape::ColBands), min, &pool);
        differential_opts(true, 8, Some(PartitionShape::ColBands), min, &pool);
    }

    #[test]
    fn tiles2d_are_bit_identical() {
        let pool = ThreadPool::new(4);
        let min = super::SHARD_DISPATCH_MIN;
        differential_opts(false, 3, Some(PartitionShape::Tiles2d), min, &pool);
        differential_opts(true, 4, Some(PartitionShape::Tiles2d), min, &pool);
        differential_opts(true, 8, Some(PartitionShape::Tiles2d), min, &pool);
    }

    #[test]
    fn tiny_dispatch_floor_is_bit_identical() {
        // min_runset=2 forces the parallel sweep on nearly every cycle,
        // hammering sparse run sets and the ping replay across shapes.
        let pool = ThreadPool::new(4);
        for shape in PartitionShape::ALL {
            differential_opts(true, 4, Some(shape), 2, &pool);
        }
    }

    #[test]
    fn max_dispatch_floor_pins_serial_phase2() {
        let pool = ThreadPool::new(4);
        differential_opts(true, 4, Some(PartitionShape::RowBands), usize::MAX, &pool);
    }

    #[test]
    fn port_gating_falls_back_to_serial() {
        let pool = ThreadPool::new(4);
        let mut n = net(true, true);
        assert!(!n.shardable());
        for _ in 0..50 {
            n.step_sharded(&pool, 4);
        }
        assert_eq!(n.sharded_steps(), 0, "fallback must not engage the band sweep");
    }
}
