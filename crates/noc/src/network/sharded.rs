//! Spatially sharded phase 2: the mesh is partitioned into contiguous
//! row bands and each band's slice of the cycle's run set is ticked by
//! one pool lane, **bit-identically** to the serial ascending-index
//! sweep in [`Network::finish_scheduled_phase2`].
//!
//! Why this can be exact (DESIGN.md §14 carries the full argument):
//!
//! * Flits, credits and ejections produced by a phase-2 tick are
//!   *staged* — nothing a router emits this cycle is observable by any
//!   other router until the next cycle edge (§9). Bands therefore only
//!   collect them; a serial merge in band order reproduces the exact
//!   ascending-source ordering of the staging buffers.
//! * The only same-cycle coupling between ticking routers is the
//!   neighbour-acceptance mask read: router `i` reads neighbour `j`'s
//!   mask *post-tick* if `j < i` and *pre-tick* otherwise. Without port
//!   gating, and with wake-up latencies of at least two cycles, the
//!   post-tick mask of every run-set member is a pure function of its
//!   own pre-cycle state ([`Router::port_active_mask_after_tick`]):
//!   mid-phase wake *requests* land on sleeping (mask 0) or waking
//!   (mask 0) routers and leave the mask 0 for the rest of the cycle.
//!   Both mask generations are therefore snapshotted up front and read
//!   immutably by every band.
//! * Wake pings raised by ticking routers are not applied by the bands;
//!   each band records `(source index, direction)` and the merge
//!   replays them serially in ascending source order, replicating the
//!   serial sweep's interleaving of ping application and deferred-
//!   router ticks exactly (the replay keeps a pending set of woken
//!   deferred routers and ticks each one at its canonical position).
//!
//! Configurations outside that envelope (port gating, or wake-up in
//! fewer than 2 cycles) and degenerate calls (1 shard, serial pool,
//! forced-full-step mode) fall back to the serial path, which is
//! bit-identical by definition.

use super::{Network, NO_NEIGHBOR};
use crate::flit::Flit;
use crate::geometry::{NodeId, Port, NUM_PORTS};
use crate::power_state::WakeReason;
use crate::router::{Router, RouterOutput};
use catnap_telemetry::Sink;
use catnap_util::ThreadPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Below this run-set size the serial phase 2 wins: fan-out costs a
/// condvar wake and a steal handshake per band, which only pays for
/// itself when each band has a meaningful pile of routers to tick.
const SHARD_DISPATCH_MIN: usize = 48;

/// Per-band output collection: everything a band's sweep would have
/// pushed into the network-global staging buffers, kept local so the
/// sweep runs without synchronisation and the serial merge can splice
/// the buffers back together in canonical (ascending source) order.
#[derive(Clone, Debug, Default)]
pub(crate) struct BandScratch {
    /// Router-step scratch, reused across the band's routers.
    out: RouterOutput,
    /// Link-stage entries `(dst router, in port, flit)`.
    links: Vec<(usize, Port, Flit)>,
    /// Credit returns `(upstream router, out port, vc)`.
    credits: Vec<(usize, Port, u8)>,
    /// Ejected flits with their nodes.
    ejected: Vec<(NodeId, Flit)>,
    /// Wake pings `(source router index, direction port)`.
    pings: Vec<(u32, Port)>,
    /// Routers to queue for the next cycle.
    next_hot: Vec<u32>,
    /// Wakeup-queue entries `(due, router, cursor stamp)`.
    resched: Vec<(u64, u32, u64)>,
    /// Routers that became drained this tick.
    drained_delta: u64,
    /// [`super::SchedStats`] deltas.
    router_runs: u64,
    idle_runs: u64,
    stalled_runs: u64,
    /// Ticked routers, for the telemetry sweep (ascending within the
    /// band by construction).
    stepped: Vec<u32>,
}

/// Reusable buffers and diagnostics of the sharded stepper, owned by
/// the [`Network`] so steady-state sharded cycles allocate nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardRuntime {
    /// This cycle's run set, sorted ascending.
    runset: Vec<u32>,
    /// Acceptance masks at the cycle edge (pre any phase-2 tick).
    mask_pre: Vec<u8>,
    /// Predicted post-tick masks: `mask_pre` overwritten at run-set
    /// members with [`Router::port_active_mask_after_tick`].
    mask_post: Vec<u8>,
    /// One scratch per band, drained (and thereby cleared) by the merge.
    bands: Vec<BandScratch>,
    /// Ticked routers across bands and replay, for the telemetry sweep.
    stepped: Vec<u32>,
    /// Merged wake pings in ascending source order.
    pings: Vec<(u32, Port)>,
    /// Cycles that actually ran the parallel band sweep (fallbacks and
    /// below-threshold cycles excluded). Diagnostics only: tests use it
    /// to assert the sharded path truly engaged.
    engaged_steps: u64,
}

impl<S: Sink> Network<S> {
    /// Whether this configuration is inside the sharded stepper's
    /// exactness envelope: no port gating (gated input ports create
    /// true same-cycle ordering dependencies between neighbours), and
    /// wake-up latency of at least two cycles when gating is on (an
    /// instantly- or next-tick-completing wake flips acceptance masks
    /// mid-phase in ways only the serial order observes). Outside the
    /// envelope [`Network::step_sharded`] silently runs the serial
    /// step, so results are identical either way.
    pub fn shardable(&self) -> bool {
        !self.cfg.port_gating && (!self.cfg.gating_enabled || self.cfg.gating.t_wakeup >= 2)
    }

    /// Number of cycles the parallel band sweep actually executed (as
    /// opposed to falling back to the serial path). Diagnostics only;
    /// never serialized.
    pub fn sharded_steps(&self) -> u64 {
        self.shard.engaged_steps
    }

    /// Advances the network by one cycle, ticking phase 2 in up to
    /// `shards` spatial bands on `pool`. Bit-identical to
    /// [`Network::step`] at every shard count — falls back to it
    /// outright when sharding cannot apply (see
    /// [`Network::shardable`]), when `shards <= 1`, when the pool is
    /// serial, or when this cycle's run set is too small to pay for
    /// fan-out.
    pub fn step_sharded(&mut self, pool: &ThreadPool, shards: usize) {
        if self.force_full_step || shards <= 1 || pool.parallelism() <= 1 || !self.shardable() {
            self.step();
            return;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        let mut todo = self.begin_scheduled_cycle();

        let mut rt = std::mem::take(&mut self.shard);
        rt.runset.clear();
        rt.runset.extend(todo.iter().map(|&Reverse(i)| i));
        rt.runset.sort_unstable();
        todo.clear();
        if rt.runset.len() < SHARD_DISPATCH_MIN {
            for &i in &rt.runset {
                todo.push(Reverse(i));
            }
            self.shard = rt;
            self.finish_scheduled_phase2(todo);
            return;
        }
        self.todo = todo;

        // Snapshot both mask generations (see the module docs): every
        // band reads neighbours through these immutable snapshots
        // instead of the live `active_mask` cache.
        rt.mask_pre.clear();
        rt.mask_pre.extend_from_slice(&self.active_mask);
        rt.mask_post.clear();
        rt.mask_post.extend_from_slice(&self.active_mask);
        for &i in &rt.runset {
            rt.mask_post[i as usize] = self.routers[i as usize].port_active_mask_after_tick();
        }

        let ranges = self.cfg.dims.row_bands(shards);
        if rt.bands.len() < ranges.len() {
            rt.bands.resize_with(ranges.len(), BandScratch::default);
        }

        // Split the per-router state vectors into disjoint band slices
        // and sweep the bands in parallel. Everything a band touches is
        // either its own slice or an immutable snapshot.
        {
            let n = self.cfg.dims.num_nodes();
            let cycle = self.cycle;
            let adj = &self.adj[..];
            let route_lut = &self.route_lut[..];
            let mask_pre = &rt.mask_pre[..];
            let mask_post = &rt.mask_post[..];
            let telemetry = S::ENABLED;

            let mut routers_rest = &mut self.routers[..];
            let mut cursor_rest = &mut self.cursor[..];
            let mut hot_rest = &mut self.hot_stamp[..];
            let mut mask_rest = &mut self.active_mask[..];
            let mut runset_rest = &rt.runset[..];
            let mut bands_rest = &mut rt.bands[..];
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
            for range in &ranges {
                let len = range.end - range.start;
                let (routers, rr) = routers_rest.split_at_mut(len);
                routers_rest = rr;
                let (cursor, cr) = cursor_rest.split_at_mut(len);
                cursor_rest = cr;
                let (hot_stamp, hr) = hot_rest.split_at_mut(len);
                hot_rest = hr;
                let (mask, mr) = mask_rest.split_at_mut(len);
                mask_rest = mr;
                let split = runset_rest.partition_point(|&i| (i as usize) < range.end);
                let (runset, rsr) = runset_rest.split_at(split);
                runset_rest = rsr;
                let (scratch, br) = bands_rest.split_first_mut().expect("one scratch per band");
                bands_rest = br;
                if runset.is_empty() {
                    continue;
                }
                let base = range.start;
                jobs.push(Box::new(move || {
                    band_sweep(BandSlices {
                        base,
                        routers,
                        cursor,
                        hot_stamp,
                        mask,
                        runset,
                        adj,
                        route_lut,
                        mask_pre,
                        mask_post,
                        n,
                        cycle,
                        telemetry,
                        scratch,
                    })
                }));
            }
            pool.run(jobs);
        }

        // Serial merge in band order: band b's routers all precede band
        // b+1's, so concatenating per-band output restores the exact
        // ascending-source ordering the serial sweep would have built.
        rt.stepped.clear();
        rt.pings.clear();
        for b in &mut rt.bands {
            for (nbr, in_port, flit) in b.links.drain(..) {
                self.inflight[nbr * NUM_PORTS + in_port.index()] += 1;
                self.link_stage.push((nbr, in_port, flit));
            }
            self.staged_credits.append(&mut b.credits);
            for (node, flit) in b.ejected.drain(..) {
                self.record_ejection(node, flit);
            }
            self.next_hot.append(&mut b.next_hot);
            for (due, idx, stamp) in b.resched.drain(..) {
                self.wakeups.push(Reverse((due, idx, stamp)));
            }
            self.nondrained -= b.drained_delta as usize;
            self.sched.router_runs += b.router_runs;
            self.sched.idle_runs += b.idle_runs;
            self.sched.stalled_runs += b.stalled_runs;
            b.drained_delta = 0;
            b.router_runs = 0;
            b.idle_runs = 0;
            b.stalled_runs = 0;
            rt.stepped.append(&mut b.stepped);
            rt.pings.append(&mut b.pings);
        }

        // Replay the deferred wake pings at their canonical positions.
        self.replay_pings(&rt.pings, &mut rt.stepped);

        // Telemetry: same sweep as the serial path, in ascending index
        // order (band ticks are ascending already; replay ticks splice
        // in by sorting).
        if S::ENABLED {
            rt.stepped.sort_unstable();
            for i in 0..rt.stepped.len() {
                self.note_power(rt.stepped[i] as usize);
            }
        }
        rt.stepped.clear();
        rt.pings.clear();
        rt.engaged_steps += 1;
        self.shard = rt;
    }

    /// Serially replays the wake pings the bands deferred, in ascending
    /// source order, replicating [`Network::wake_neighbor_instep`]'s
    /// canonical interleaving:
    ///
    /// * target index below the source: the canonical loop had already
    ///   ticked the target (or absorbed its stretch), so the request
    ///   lands on the materialized router — `sync_to(cycle)`, wake,
    ///   reschedule.
    /// * target at or above the source and already ticked or pending
    ///   (`hot_stamp == cycle`): the canonical request is an observable
    ///   no-op — run-set members are never asleep at phase 2, and an
    ///   already-woken pending target ignores the duplicate request.
    /// * otherwise: the wake lands at the cycle edge and the target
    ///   joins the *pending* set, ticked exactly when the canonical
    ///   ascending scan would have reached it (before the first ping
    ///   whose source index exceeds it, or at the end).
    fn replay_pings(&mut self, pings: &[(u32, Port)], stepped: &mut Vec<u32>) {
        let cycle = self.cycle;
        let mut pending: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        for &(src, dir_port) in pings {
            while let Some(&Reverse(idx)) = pending.peek() {
                if idx < src {
                    pending.pop();
                    self.replay_tick(idx as usize, stepped);
                } else {
                    break;
                }
            }
            let Some(dir) = dir_port.direction() else { continue };
            let node = self.routers[src as usize].node();
            let Some(nbr) = self.cfg.dims.neighbor(node, dir) else {
                continue;
            };
            let idx = nbr.index();
            let in_port = Port::from(dir.opposite());
            if (idx as u32) < src {
                self.sync_to(idx, cycle);
                self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                self.reschedule(idx);
            } else if self.hot_stamp[idx] == cycle {
                // Already ticked by a band, or already woken and
                // pending: observable no-op (see above).
            } else {
                self.sync_to(idx, cycle - 1);
                self.apply_wake(idx, in_port, WakeReason::LookaheadSignal);
                self.hot_stamp[idx] = cycle;
                pending.push(Reverse(idx as u32));
            }
        }
        while let Some(Reverse(idx)) = pending.pop() {
            self.replay_tick(idx as usize, stepped);
        }
    }

    /// Ticks one pending replay target: the drained-router branch of
    /// [`Network::run_scheduled_router`], verbatim (a pinged deferred
    /// router is always drained — a non-drained router would have been
    /// in the run set).
    fn replay_tick(&mut self, idx: usize, stepped: &mut Vec<u32>) {
        debug_assert_eq!(self.cursor[idx], self.cycle - 1);
        debug_assert!(self.routers[idx].is_drained(), "pinged deferred router holds flits");
        self.sched.router_runs += 1;
        self.sched.idle_runs += 1;
        self.routers[idx].idle_tick();
        self.cursor[idx] = self.cycle;
        self.active_mask[idx] = self.routers[idx].port_active_mask();
        self.reschedule(idx);
        if S::ENABLED {
            stepped.push(idx as u32);
        }
    }
}

/// Everything one band's sweep touches: its own mutable slices of the
/// per-router state (offset by `base`), the cycle's sorted run-set
/// segment, and the shared immutable snapshots.
struct BandSlices<'a> {
    base: usize,
    routers: &'a mut [Router],
    cursor: &'a mut [u64],
    hot_stamp: &'a mut [u64],
    mask: &'a mut [u8],
    runset: &'a [u32],
    adj: &'a [[usize; NUM_PORTS]],
    route_lut: &'a [Port],
    mask_pre: &'a [u8],
    mask_post: &'a [u8],
    n: usize,
    cycle: u64,
    telemetry: bool,
    scratch: &'a mut BandScratch,
}

/// One band's phase-2 sweep: [`Network::run_scheduled_router`] in pure
/// per-band form — identical tick logic and output ordering, with all
/// cross-band effects (staging pushes, wake pings, scheduler queues)
/// collected into the band's [`BandScratch`] instead of applied.
fn band_sweep(s: BandSlices<'_>) {
    let b = s.scratch;
    let cycle = s.cycle;
    for &idxu in s.runset {
        let gi = idxu as usize;
        let li = gi - s.base;
        debug_assert_eq!(s.cursor[li], cycle - 1, "scheduled router not at the cycle edge");
        b.router_runs += 1;
        if s.routers[li].is_drained() {
            b.idle_runs += 1;
            s.routers[li].idle_tick();
            s.cursor[li] = cycle;
            s.mask[li] = s.routers[li].port_active_mask();
            debug_assert_eq!(s.mask[li], s.mask_post[gi], "post-tick mask mispredicted");
            if let Some(dt) = s.routers[li].next_wake_completion() {
                b.resched.push((cycle + dt, idxu, cycle));
            }
        } else {
            let adj = s.adj[gi];
            let node = s.routers[li].node();
            // The neighbour-generation rule: lower-indexed neighbours
            // read post-tick (the serial scan has notionally passed
            // them), higher-indexed ones pre-tick. Non-run-set routers
            // have identical masks in both snapshots.
            let mut neighbor_active = [true; NUM_PORTS];
            for port in [Port::North, Port::East, Port::South, Port::West] {
                let pi = port.index();
                neighbor_active[pi] = match adj[pi] {
                    NO_NEIGHBOR => false,
                    nbr => {
                        let m = if nbr < gi { s.mask_post[nbr] } else { s.mask_pre[nbr] };
                        m & (1u8 << port.opposite().index()) != 0
                    }
                };
            }

            let mut out = std::mem::take(&mut b.out);
            s.routers[li].step(&neighbor_active, &mut out);
            s.cursor[li] = cycle;
            s.mask[li] = s.routers[li].port_active_mask();
            debug_assert_eq!(s.mask[li], s.mask_post[gi], "post-tick mask mispredicted");
            if out.outbound.is_empty() && out.credits.is_empty() && out.ejected.is_empty() && out.wake_pings.is_empty()
            {
                b.stalled_runs += 1;
            }

            for ob in &out.outbound {
                let nbr = adj[ob.out_port.index()];
                debug_assert!(nbr != NO_NEIGHBOR, "link to nowhere");
                let in_port = ob.out_port.opposite();
                let mut flit = ob.flit;
                flit.lookahead = s.route_lut[nbr * s.n + flit.dst.index()];
                b.links.push((nbr, in_port, flit));
            }
            for cr in &out.credits {
                let upstream = adj[cr.in_port.index()];
                debug_assert!(upstream != NO_NEIGHBOR, "credit to nowhere");
                b.credits.push((upstream, cr.in_port.opposite(), cr.vc));
            }
            for flit in out.ejected.drain(..) {
                b.ejected.push((node, flit));
            }
            for &ping in &out.wake_pings {
                b.pings.push((idxu, ping));
            }
            b.out = out;

            if s.routers[li].is_drained() {
                b.drained_delta += 1;
                if let Some(dt) = s.routers[li].next_wake_completion() {
                    b.resched.push((cycle + dt, idxu, cycle));
                }
            } else {
                // `mark_next`, band-locally: stamp and queue for the
                // next cycle (each run-set member runs exactly once, so
                // the dedup guard always passes).
                s.hot_stamp[li] = cycle + 1;
                b.next_hot.push(idxu);
            }
        }
        if s.telemetry {
            b.stepped.push(idxu);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::NetworkConfig;
    use crate::geometry::{MeshDims, NodeId};
    use crate::network::Network;
    use catnap_util::codec::ByteWriter;
    use catnap_util::{SimRng, ThreadPool};

    fn net(gating: bool, port_gating: bool) -> Network {
        let cfg = NetworkConfig::with_width(128)
            .dims(MeshDims::new(8, 8))
            .gating_enabled(gating)
            .port_gating(port_gating);
        Network::new(cfg)
    }

    fn state_bytes(n: &mut Network) -> Vec<u8> {
        let mut w = ByteWriter::new();
        n.save_state(&mut w);
        w.into_inner()
    }

    /// Drives `serial` and `sharded` with identical random traffic,
    /// stepping the first serially and the second through the sharded
    /// path, asserting byte-identical serialized state along the way.
    fn differential(gating: bool, shards: usize, pool: &ThreadPool) {
        let mut a = net(gating, false);
        let mut b = net(gating, false);
        let mut rng = SimRng::new(42);
        let nodes = 64u64;
        for cycle in 0..900u64 {
            // Bursty load with a long quiet tail so gating engages and
            // heavy enough that the run set clears the dispatch floor.
            let rate = if cycle % 300 < 120 { 0.35 } else { 0.002 };
            for n in 0..nodes {
                if rng.gen_bool(rate) {
                    let src = NodeId(n as u16);
                    let dst = NodeId(rng.u64_below(nodes) as u16);
                    if src != dst {
                        let fa = a.make_single_flit_packet(src, dst, cycle);
                        let fb = b.make_single_flit_packet(src, dst, cycle);
                        assert_eq!(a.try_inject_flit(src, 0, fa), b.try_inject_flit(src, 0, fb));
                    }
                }
            }
            // Crude gating policy so sleep/wake paths run: try to gate
            // everything periodically.
            if gating && cycle % 7 == 0 {
                for i in 0..64u16 {
                    let ra = a.request_sleep(NodeId(i));
                    let rb = b.request_sleep(NodeId(i));
                    assert_eq!(ra, rb, "sleep divergence at node {i} cycle {cycle}");
                }
            }
            a.step();
            b.step_sharded(pool, shards);
            assert_eq!(a.cycle(), b.cycle());
            assert_eq!(a.stats().flits_ejected, b.stats().flits_ejected, "cycle {cycle}");
            a.drain_ejected();
            b.drain_ejected();
            if cycle % 150 == 149 {
                assert_eq!(
                    state_bytes(&mut a),
                    state_bytes(&mut b),
                    "state diverged by cycle {cycle} (gating={gating}, shards={shards})"
                );
            }
        }
        assert_eq!(state_bytes(&mut a), state_bytes(&mut b));
        assert!(b.sharded_steps() > 0, "sharded path never engaged (shards={shards})");
    }

    #[test]
    fn sharded_step_is_bit_identical_without_gating() {
        let pool = ThreadPool::new(4);
        for shards in [2, 3, 4, 8] {
            differential(false, shards, &pool);
        }
    }

    #[test]
    fn sharded_step_is_bit_identical_with_gating() {
        let pool = ThreadPool::new(4);
        for shards in [2, 3, 4, 8] {
            differential(true, shards, &pool);
        }
    }

    #[test]
    fn port_gating_falls_back_to_serial() {
        let pool = ThreadPool::new(4);
        let mut n = net(true, true);
        assert!(!n.shardable());
        for _ in 0..50 {
            n.step_sharded(&pool, 4);
        }
        assert_eq!(n.sharded_steps(), 0, "fallback must not engage the band sweep");
    }
}
