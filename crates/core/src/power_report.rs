//! Power accounting for a whole Multi-NoC run (all subnets, shared NIs,
//! and the RCS OR networks).

use crate::multinoc::{MultiNoc, Snapshot};
use catnap_power::model::{NetworkPowerModel, RouterPowerModel};
use catnap_power::{PowerBreakdown, TechParams};

/// Power of a Multi-NoC over a measurement window.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiNocPowerReport {
    /// Configuration name.
    pub name: String,
    /// Dynamic power by component, watts.
    pub dynamic: PowerBreakdown,
    /// Static power by component after gating, watts.
    pub static_: PowerBreakdown,
    /// Fraction of router-cycles that were compensated sleep cycles.
    pub csc_fraction: f64,
}

catnap_util::impl_to_json_struct!(MultiNocPowerReport {
    name,
    dynamic,
    static_,
    csc_fraction
});

impl MultiNocPowerReport {
    /// Total network power in watts.
    pub fn total(&self) -> f64 {
        self.dynamic.total() + self.static_.total()
    }
}

impl<S: catnap_telemetry::Sink> MultiNoc<S> {
    /// Router power model for this design's subnets.
    pub fn router_power_model(&self, tech: TechParams) -> RouterPowerModel {
        let cfg = self.config();
        RouterPowerModel {
            width_bits: cfg.subnet_width_bits,
            vcs: cfg.vcs,
            vc_depth: cfg.vc_depth,
            vdd: cfg.vdd,
            freq_hz: cfg.freq_hz,
            tech,
        }
    }

    /// Computes network power over the window between two snapshots.
    pub fn power_between(&self, earlier: &Snapshot, later: &Snapshot, tech: TechParams) -> MultiNocPowerReport {
        let cfg = self.config();
        let d = later.delta(earlier);
        let cycles = d.cycle;
        if cycles == 0 {
            return MultiNocPowerReport {
                name: cfg.name.clone(),
                dynamic: PowerBreakdown::default(),
                static_: PowerBreakdown::default(),
                csc_fraction: 0.0,
            };
        }
        let router = self.router_power_model(tech);
        let link_factor = if cfg.subnets > 1 {
            tech.multi_link_crossover_factor
        } else {
            1.0
        };
        let model = NetworkPowerModel::for_mesh(cfg.dims, router, link_factor);
        let time_s = cycles as f64 / cfg.freq_hz;

        let mut dynamic = PowerBreakdown::default();
        let mut static_ = PowerBreakdown::default();
        let port_mode = cfg.gating_policy.is_port_granularity();
        for s in 0..cfg.subnets {
            let rep = if port_mode {
                model.report_fine_grained(
                    &d.activity_per_subnet[s],
                    &d.gating_per_subnet[s],
                    cycles,
                    cfg.gating_cfg.t_breakeven,
                )
            } else {
                model.report(
                    &d.activity_per_subnet[s],
                    &d.gating_per_subnet[s],
                    cycles,
                    cfg.gating_cfg.t_breakeven,
                )
            };
            dynamic += rep.dynamic;
            static_ += rep.static_;
        }

        // Shared NI: dynamic energy per flit transit (injections plus
        // ejections across all subnets), leakage for a queue sized for the
        // aggregate datapath (16 flits of the aggregate width).
        let transits: u64 =
            d.injected_flits_per_subnet.iter().sum::<u64>() + d.ejected_flits_per_subnet.iter().sum::<u64>();
        dynamic.ni = router.ni_energy_j(transits) / time_s;
        let nodes = cfg.dims.num_nodes() as f64;
        let ni_bits = cfg.ni_queue_flits as f64 * cfg.aggregate_width_bits() as f64;
        static_.ni = nodes * ni_bits * tech.leak_w_per_buffer_bit * tech.leakage_scale(cfg.vdd);

        // RCS OR networks: switching energy, charged to control.
        dynamic.control += d.or_switch_events as f64 * tech.or_network_pj_per_switch * 1e-12 / time_s;

        let gating = d.total_gating();
        MultiNocPowerReport {
            name: cfg.name.clone(),
            dynamic,
            static_,
            csc_fraction: gating.csc_fraction(),
        }
    }

    /// Power over the whole run so far.
    pub fn power_report(&self, tech: TechParams) -> MultiNocPowerReport {
        let zero = Snapshot::zero(self.num_subnets());
        let now = self.snapshot();
        self.power_between(&zero, &now, tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiNocConfig;
    use catnap_traffic::generator::PacketSink;
    use catnap_traffic::{SyntheticPattern, SyntheticWorkload};

    fn run(cfg: MultiNocConfig, rate: f64, cycles: u64) -> (MultiNoc, MultiNocPowerReport) {
        let mut net = MultiNoc::new(cfg);
        let mut load = SyntheticWorkload::new(SyntheticPattern::UniformRandom, rate, 512, net.dims(), 99);
        for _ in 0..cycles {
            load.drive(&mut net);
            net.step();
        }
        let rep = net.power_report(TechParams::catnap_32nm());
        (net, rep)
    }

    #[test]
    fn ungated_single_noc_static_near_anchor() {
        let (_, rep) = run(MultiNocConfig::single_noc_512b(), 0.05, 2_000);
        // Routers + links ~24.5 W plus NI ~2.6 W.
        assert!(
            rep.static_.total() > 23.0 && rep.static_.total() < 29.0,
            "static {:.1} W",
            rep.static_.total()
        );
        assert_eq!(rep.csc_fraction, 0.0);
    }

    #[test]
    fn gated_multi_noc_cuts_static_at_low_load() {
        let (_, ungated) = run(MultiNocConfig::catnap_4x128(), 0.02, 4_000);
        let (_, gated) = run(MultiNocConfig::catnap_4x128().gating(true), 0.02, 4_000);
        assert!(
            gated.static_.total() < 0.6 * ungated.static_.total(),
            "gating must cut static power substantially at low load: {:.1} vs {:.1} W",
            gated.static_.total(),
            ungated.static_.total()
        );
        assert!(gated.csc_fraction > 0.4, "csc {:.2}", gated.csc_fraction);
    }

    #[test]
    fn dynamic_power_grows_with_load() {
        let (_, lo) = run(MultiNocConfig::single_noc_512b(), 0.02, 2_000);
        let (_, hi) = run(MultiNocConfig::single_noc_512b(), 0.20, 2_000);
        assert!(hi.dynamic.total() > lo.dynamic.total() * 2.0);
    }

    #[test]
    fn power_between_windows() {
        let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        let mut load = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.1, 512, net.dims(), 1);
        for _ in 0..500 {
            load.drive(&mut net);
            net.step();
        }
        let a = net.snapshot();
        for _ in 0..500 {
            load.drive(&mut net);
            net.step();
        }
        let b = net.snapshot();
        let rep = net.power_between(&a, &b, TechParams::catnap_32nm());
        assert!(rep.total() > 0.0);
        assert!(rep.dynamic.ni > 0.0);
        let _ = net.now();
    }

    #[test]
    fn zero_window_is_zero_power() {
        let net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        let s = net.snapshot();
        let rep = net.power_between(&s, &s, TechParams::catnap_32nm());
        assert_eq!(rep.total(), 0.0);
    }
}
