//! Versioned checkpoint container for [`MultiNoc`] simulations.
//!
//! A checkpoint is a single byte blob:
//!
//! ```text
//! magic "CATNAPCK" | version u32 | config fingerprint u64 | payload | FNV-1a checksum u64
//! ```
//!
//! (see [`catnap_util::codec`] for the container primitives). The
//! payload is the [`MultiNoc`] state followed by a length-prefixed
//! *driver blob* — opaque bytes belonging to whatever drives the
//! simulation (typically a [`catnap_traffic`] workload position; empty
//! for driverless runs). Resuming requires the *same resolved
//! configuration*: the fingerprint over every semantically relevant
//! config field is embedded in the header and checked before any
//! payload byte is parsed. `step_threads` is deliberately excluded —
//! results are bit-identical at any stepping parallelism, so a
//! checkpoint taken on an 8-lane machine resumes on a laptop.
//!
//! What a checkpoint captures and what it reconstructs is documented in
//! DESIGN.md §13; the determinism suite asserts save→resume is
//! bit-identical to a straight-through run for every golden
//! configuration.

use crate::config::{MultiNocConfig, RegionMode, SelectorKind};
use crate::congestion::CongestionMetric;
use crate::multinoc::MultiNoc;
use catnap_telemetry::{NopSink, Sink, SinkScope};
use catnap_util::codec::{self, ByteReader, ByteWriter, CodecError, Fnv64};

/// Current checkpoint format version. Bump on any layout change — old
/// checkpoints are rejected with
/// [`CodecError::UnsupportedVersion`], never misparsed.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Version of the [`config_fingerprint`] *input schema*: which config
/// fields are hashed, and in what encoding. Bump whenever that set or
/// encoding changes — two builds with different schema versions may
/// assign the same 64-bit key to semantically different configurations,
/// so they must never share a result cache or a worker fleet. The
/// `catnap-serve` `ping` command reports this value and `catnap-hive`
/// refuses workers that disagree with its own.
pub const FINGERPRINT_SCHEMA_VERSION: u32 = 1;

/// Stable fingerprint of a resolved configuration: equal fingerprints
/// guarantee two configs drive bit-identical simulations (every field
/// that influences results is hashed; `step_threads` and
/// `shard_threads`, which provably do not, are excluded). Used both to guard checkpoint resume and as
/// the basis of result-cache keys.
pub fn config_fingerprint(cfg: &MultiNocConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&cfg.name);
    h.write_u64(cfg.subnets as u64);
    h.write_u32(cfg.subnet_width_bits);
    h.write_u64(cfg.dims.cols as u64);
    h.write_u64(cfg.dims.rows as u64);
    h.write_u64(cfg.vcs as u64);
    h.write_u64(cfg.vc_depth as u64);
    h.write_u32(cfg.gating_cfg.t_wakeup);
    h.write_u32(cfg.gating_cfg.t_breakeven);
    h.write_u32(cfg.gating_cfg.t_idle_detect);
    h.write_str(cfg.gating_policy.name());
    h.write_u32(match cfg.selector {
        SelectorKind::RoundRobin => 0,
        SelectorKind::Random => 1,
        SelectorKind::CatnapPriority => 2,
    });
    match cfg.metric {
        CongestionMetric::Bfm { set, clear } => {
            h.write_u32(0);
            h.write_u64(set as u64);
            h.write_u64(clear as u64);
        }
        CongestionMetric::Bfa { set, clear } => {
            h.write_u32(1);
            h.write_f64(set);
            h.write_f64(clear);
        }
        CongestionMetric::InjectionRate { threshold, window } => {
            h.write_u32(2);
            h.write_f64(threshold);
            h.write_u32(window);
        }
        CongestionMetric::IqOcc { set, clear } => {
            h.write_u32(3);
            h.write_u64(set as u64);
            h.write_u64(clear as u64);
        }
        CongestionMetric::Delay { threshold, window } => {
            h.write_u32(4);
            h.write_f64(threshold);
            h.write_u32(window);
        }
    }
    h.write_u32(u32::from(cfg.use_rcs));
    h.write_u32(cfg.rcs_period);
    h.write_u32(match cfg.region_mode {
        RegionMode::Quadrants => 0,
        RegionMode::Global => 1,
        RegionMode::PerNode => 2,
    });
    h.write_u64(cfg.ni_queue_flits as u64);
    h.write_u32(cfg.spill_wait_cycles);
    h.write_f64(cfg.vdd);
    h.write_f64(cfg.freq_hz);
    h.write_u64(cfg.seed);
    h.finish()
}

impl<S: Sink> MultiNoc<S> {
    /// Serializes the full simulation state into a sealed checkpoint
    /// blob. `driver` is an opaque byte string stored alongside the
    /// network state — callers put their traffic-source position there
    /// (see `SyntheticWorkload::encode_position`) so one blob restarts
    /// the whole simulation; pass `&[]` when there is no driver state.
    ///
    /// Must be called at a cycle edge (after a [`MultiNoc::step`],
    /// before the next cycle's traffic drive).
    pub fn save_checkpoint(&mut self, driver: &[u8]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.save_state(&mut w);
        w.put_bytes(driver);
        codec::seal(CHECKPOINT_VERSION, config_fingerprint(self.config()), &w.into_inner())
    }

    /// Rebuilds a simulation from a checkpoint taken under the same
    /// configuration, attaching fresh telemetry sinks (sink contents are
    /// not checkpointed; the resumed trace covers only the suffix).
    /// Returns the network and the driver blob stored at save time.
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the blob is corrupted ([`CodecError::ChecksumMismatch`]),
    /// from a different format version, from a different configuration
    /// ([`CodecError::FingerprintMismatch`]), or internally inconsistent.
    pub fn resume_with_sinks(
        cfg: MultiNocConfig,
        sinks: impl FnMut(SinkScope) -> S,
        bytes: &[u8],
    ) -> Result<(Self, Vec<u8>), CodecError> {
        let fingerprint = config_fingerprint(&cfg);
        let payload = codec::open(bytes, CHECKPOINT_VERSION, fingerprint)?;
        let mut net = MultiNoc::with_sinks(cfg, sinks);
        let mut r = ByteReader::new(payload);
        net.load_state(&mut r)?;
        let driver = r.get_bytes()?.to_vec();
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in checkpoint"));
        }
        Ok((net, driver))
    }
}

impl MultiNoc {
    /// [`MultiNoc::resume_with_sinks`] without telemetry (the
    /// [`NopSink`] monomorphization — the common case).
    ///
    /// # Errors
    ///
    /// See [`MultiNoc::resume_with_sinks`].
    pub fn resume_from(cfg: MultiNocConfig, bytes: &[u8]) -> Result<(Self, Vec<u8>), CodecError> {
        MultiNoc::resume_with_sinks(cfg, |_| NopSink, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_scheduling_knobs_only() {
        let base = MultiNocConfig::catnap_4x128().gating(true);
        let fp = config_fingerprint(&base);
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().step_threads(1)),
            "thread count must not change the key"
        );
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().shard_threads(8)),
            "shard count must not change the key"
        );
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().adaptive_dispatch(false)),
            "dispatch controller mode must not change the key"
        );
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().partition_shape(catnap_noc::PartitionShape::Tiles2d)),
            "partition shape must not change the key"
        );
        assert_ne!(fp, config_fingerprint(&base.clone().seed(1)));
        assert_ne!(fp, config_fingerprint(&base.clone().rcs_period(7)));
        assert_ne!(fp, config_fingerprint(&base.clone().selector(SelectorKind::RoundRobin)));
        assert_ne!(
            fp,
            config_fingerprint(&MultiNocConfig::catnap_4x128()),
            "gating policy is material"
        );
    }

    #[test]
    fn resume_rejects_wrong_config_corruption_and_version() {
        let cfg = MultiNocConfig::catnap_2x128_64core().gating(true);
        let mut net = MultiNoc::new(cfg.clone());
        for _ in 0..50 {
            net.step();
        }
        let blob = net.save_checkpoint(b"driver-bytes");

        let (resumed, driver) = MultiNoc::resume_from(cfg.clone(), &blob).unwrap();
        assert_eq!(resumed.cycle(), 50);
        assert_eq!(driver, b"driver-bytes");

        // Wrong config: fingerprint mismatch (checksum still valid).
        let other = MultiNocConfig::catnap_2x128_64core().gating(true).seed(99);
        assert!(matches!(
            MultiNoc::resume_from(other, &blob),
            Err(CodecError::FingerprintMismatch { .. })
        ));

        // Any corrupted byte: checksum mismatch.
        let mut bad = blob.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            MultiNoc::resume_from(cfg.clone(), &bad),
            Err(CodecError::ChecksumMismatch)
        ));

        // Future format version with a valid checksum: version error.
        let payload = codec::open(&blob, CHECKPOINT_VERSION, config_fingerprint(&cfg)).unwrap();
        let future = codec::seal(CHECKPOINT_VERSION + 1, config_fingerprint(&cfg), payload);
        assert!(matches!(
            MultiNoc::resume_from(cfg, &future),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }
}
