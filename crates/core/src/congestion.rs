//! Local congestion status (LCS) detection.
//!
//! Each node continuously classifies each subnet as congested or not by
//! examining its local router (and NI). The paper investigates five
//! metrics (Sections 3.2.1 and 3.4); Catnap's final design uses **BFM**,
//! the maximum buffer occupancy over the local router's input ports,
//! because its congestion threshold is independent of the traffic pattern
//! and it is cheap to implement.
//!
//! All metrics use set/clear hysteresis: once congestion is declared it is
//! only cleared when the metric falls below a (lower) clear threshold, so
//! the status is stable for at least a few cycles.

use catnap_noc::Router;
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// Which local congestion metric a detector uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Maximum input-port buffer occupancy (Catnap's choice).
    Bfm,
    /// Average input-port buffer occupancy.
    Bfa,
    /// Node injection rate into the subnet (flits per cycle over a window).
    InjectionRate,
    /// NI injection-queue occupancy (shared across subnets).
    IqOcc,
    /// Average blocking delay per flit at the local router (sampled).
    Delay,
}

/// A local congestion metric with its thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CongestionMetric {
    /// Max port occupancy in flits: set when `>= set`, cleared when
    /// `< clear`.
    Bfm {
        /// Set threshold in flits (paper: 9).
        set: usize,
        /// Clear threshold in flits.
        clear: usize,
    },
    /// Average port occupancy in flits (paper threshold: 2).
    Bfa {
        /// Set threshold.
        set: f64,
        /// Clear threshold.
        clear: f64,
    },
    /// Injection rate in flits per cycle, measured over `window` cycles
    /// (paper sweeps packet-rate thresholds 0.04–0.24; expressed here in
    /// flits/cycle of the subnet).
    InjectionRate {
        /// Rate threshold in flits per cycle.
        threshold: f64,
        /// Measurement window in cycles.
        window: u32,
    },
    /// NI injection-queue occupancy in flits (paper: 4 of a 16-flit
    /// queue).
    IqOcc {
        /// Set threshold in flits.
        set: usize,
        /// Clear threshold in flits.
        clear: usize,
    },
    /// Average blocking delay per switched flit over a sampling window
    /// (paper: 1.5 cycles).
    Delay {
        /// Delay threshold in cycles.
        threshold: f64,
        /// Sampling window in cycles.
        window: u32,
    },
}

impl CongestionMetric {
    /// The paper's best-performing thresholds for each metric
    /// (Section 4.1).
    pub fn paper_default(kind: MetricKind) -> Self {
        match kind {
            MetricKind::Bfm => CongestionMetric::Bfm { set: 9, clear: 6 },
            MetricKind::Bfa => CongestionMetric::Bfa { set: 2.0, clear: 1.25 },
            MetricKind::InjectionRate => CongestionMetric::InjectionRate {
                threshold: 0.20 * 4.0, // 0.20 packets/node/cycle × 4 flits/packet
                window: 64,
            },
            MetricKind::IqOcc => CongestionMetric::IqOcc { set: 4, clear: 2 },
            MetricKind::Delay => CongestionMetric::Delay {
                threshold: 1.5,
                window: 32,
            },
        }
    }

    /// Which metric family this is.
    pub fn kind(&self) -> MetricKind {
        match self {
            CongestionMetric::Bfm { .. } => MetricKind::Bfm,
            CongestionMetric::Bfa { .. } => MetricKind::Bfa,
            CongestionMetric::InjectionRate { .. } => MetricKind::InjectionRate,
            CongestionMetric::IqOcc { .. } => MetricKind::IqOcc,
            CongestionMetric::Delay { .. } => MetricKind::Delay,
        }
    }
}

/// Inputs a detector may need beyond the router itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSignals {
    /// Current NI injection-queue occupancy, in flits (shared per node).
    pub ni_queue_flits: usize,
    /// Flits this node injected into this subnet this cycle.
    pub injected_flits_this_cycle: u32,
}

/// Per-(node, subnet) local congestion detector.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalDetector {
    congested: bool,
    // Injection-rate window state.
    window_pos: u32,
    window_flits: u64,
    rate_estimate: f64,
    // Delay-metric window state: last-seen cumulative counters.
    last_blocked: u64,
    last_reads: u64,
}

impl LocalDetector {
    /// Current local congestion status.
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// Updates the status from this cycle's observations.
    pub fn update(&mut self, metric: &CongestionMetric, router: &Router, signals: &NodeSignals) {
        match *metric {
            CongestionMetric::Bfm { set, clear } => {
                let occ = router.max_port_occupancy();
                self.hysteresis(occ as f64, set as f64, clear as f64);
            }
            CongestionMetric::Bfa { set, clear } => {
                let occ = router.avg_port_occupancy();
                self.hysteresis(occ, set, clear);
            }
            CongestionMetric::InjectionRate { threshold, window } => {
                self.window_flits += u64::from(signals.injected_flits_this_cycle);
                self.window_pos += 1;
                if self.window_pos >= window {
                    self.rate_estimate = self.window_flits as f64 / window as f64;
                    self.window_pos = 0;
                    self.window_flits = 0;
                }
                self.congested = self.rate_estimate >= threshold;
            }
            CongestionMetric::IqOcc { set, clear } => {
                self.hysteresis(signals.ni_queue_flits as f64, set as f64, clear as f64);
            }
            CongestionMetric::Delay { threshold, window } => {
                self.window_pos += 1;
                if self.window_pos >= window {
                    self.window_pos = 0;
                    let a = router.activity;
                    let blocked = a.head_blocked_cycles - self.last_blocked;
                    let reads = a.buffer_reads - self.last_reads;
                    self.last_blocked = a.head_blocked_cycles;
                    self.last_reads = a.buffer_reads;
                    // Average blocking delay per switched flit in the
                    // window. With no movement at all but waiting flits,
                    // treat as congested.
                    let avg = if reads > 0 {
                        blocked as f64 / reads as f64
                    } else if blocked > 0 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    self.congested = avg >= threshold;
                }
            }
        }
    }

    fn hysteresis(&mut self, value: f64, set: f64, clear: f64) {
        if value >= set {
            self.congested = true;
        } else if value < clear {
            self.congested = false;
        }
    }

    /// Upper bound on how many *quiescent* cycles may be fast-forwarded
    /// through this detector before an [`LocalDetector::update`] could do
    /// something other than the closed form in
    /// [`LocalDetector::fast_forward`].
    ///
    /// Quiescence means the observed values are pinned: zero occupancy,
    /// zero injections, no router activity. Under those inputs the
    /// occupancy metrics are fixed-point (unbounded skip), while the
    /// windowed metrics are only closed-formable once their window carries
    /// no history — a window that already saw flits (InjectionRate) or
    /// whose cumulative router counters moved since the last latch (Delay)
    /// must be allowed to latch normally, so the bound stops one cycle
    /// short of the window boundary. Degenerate thresholds that a
    /// zero-valued sample still reaches force per-cycle stepping (bound
    /// 0).
    pub fn skip_bound(&self, metric: &CongestionMetric, router: &Router) -> u64 {
        match *metric {
            CongestionMetric::Bfm { set, .. } => {
                if set == 0 {
                    0
                } else {
                    u64::MAX
                }
            }
            CongestionMetric::Bfa { set, .. } => {
                if set <= 0.0 {
                    0
                } else {
                    u64::MAX
                }
            }
            CongestionMetric::IqOcc { set, .. } => {
                if set == 0 {
                    0
                } else {
                    u64::MAX
                }
            }
            CongestionMetric::InjectionRate { threshold, window } => {
                if threshold <= 0.0 {
                    0
                } else if self.window_flits > 0 {
                    u64::from(window - self.window_pos).saturating_sub(1)
                } else {
                    u64::MAX
                }
            }
            CongestionMetric::Delay { threshold, window } => {
                let stale = router.activity.head_blocked_cycles != self.last_blocked
                    || router.activity.buffer_reads != self.last_reads;
                if threshold <= 0.0 {
                    0
                } else if stale {
                    u64::from(window - self.window_pos).saturating_sub(1)
                } else {
                    u64::MAX
                }
            }
        }
    }

    /// Applies `dt` quiescent-cycle updates in closed form. Equivalent to
    /// calling [`LocalDetector::update`] `dt` times with an idle router
    /// and zeroed [`NodeSignals`], provided
    /// `dt <= self.skip_bound(metric, router)` held beforehand.
    pub fn fast_forward(&mut self, metric: &CongestionMetric, dt: u64) {
        debug_assert!(!self.congested, "fast-forward through a congested detector");
        match *metric {
            // Occupancy hysteresis over pinned-zero samples is a
            // fixed-point: congested stays false.
            CongestionMetric::Bfm { .. } | CongestionMetric::Bfa { .. } | CongestionMetric::IqOcc { .. } => {}
            CongestionMetric::InjectionRate { window, .. } => {
                debug_assert_eq!(
                    self.window_flits, 0,
                    "injection window carries history; skip was not bounded"
                );
                let pos = u64::from(self.window_pos) + dt;
                if pos >= u64::from(window) {
                    // Every boundary crossed latches an all-zero window.
                    self.rate_estimate = 0.0;
                }
                self.window_pos = (pos % u64::from(window)) as u32;
            }
            CongestionMetric::Delay { window, .. } => {
                // Boundaries latch zero deltas (avg 0.0 < threshold);
                // last-seen counters already equal the router's.
                let pos = u64::from(self.window_pos) + dt;
                self.window_pos = (pos % u64::from(window)) as u32;
            }
        }
    }

    /// Serializes the detector (checkpointing). Every field is mutable
    /// state — window history must survive a resume so windowed metrics
    /// latch on the same cycle they would have straight through.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(self.congested);
        w.put_u32(self.window_pos);
        w.put_u64(self.window_flits);
        w.put_f64(self.rate_estimate);
        w.put_u64(self.last_blocked);
        w.put_u64(self.last_reads);
    }

    /// Rebuilds a detector from [`LocalDetector::encode`] output.
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(LocalDetector {
            congested: r.get_bool()?,
            window_pos: r.get_u32()?,
            window_flits: r.get_u64()?,
            rate_estimate: r.get_f64()?,
            last_blocked: r.get_u64()?,
            last_reads: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catnap_noc::{Flit, FlitKind, MessageClass, NodeId, PacketId, Port};

    fn router_with_flits(n: usize) -> Router {
        let mut r = Router::new(NodeId(0), 4, 4, [true; 5], 10, 12, 4);
        for i in 0..n {
            let vc = (i / 4) as u8; // fill VCs of the West port 4-deep
            r.deliver(
                Port::West,
                Flit {
                    packet: PacketId(i as u64),
                    kind: FlitKind::Single,
                    src: NodeId(1),
                    dst: NodeId(4),
                    seq: 0,
                    packet_len: 1,
                    class: MessageClass::Synthetic,
                    lookahead: Port::East,
                    vc,
                    created_cycle: 0,
                    net_inject_cycle: 0,
                },
            );
        }
        r
    }

    #[test]
    fn bfm_sets_at_threshold_and_clears_with_hysteresis() {
        let metric = CongestionMetric::paper_default(MetricKind::Bfm);
        let mut d = LocalDetector::default();
        let sig = NodeSignals::default();
        d.update(&metric, &router_with_flits(8), &sig);
        assert!(!d.is_congested(), "8 flits is below the set threshold of 9");
        d.update(&metric, &router_with_flits(9), &sig);
        assert!(d.is_congested());
        // Between clear (6) and set (9): stays congested.
        d.update(&metric, &router_with_flits(7), &sig);
        assert!(d.is_congested(), "hysteresis holds the status");
        d.update(&metric, &router_with_flits(5), &sig);
        assert!(!d.is_congested());
    }

    #[test]
    fn bfa_uses_average_over_ports() {
        // 9 flits on one port: BFM says congested, BFA (avg 1.8 < 2.0)
        // does not — the paper's point about BFA missing single-path
        // congestion.
        let r = router_with_flits(9);
        let sig = NodeSignals::default();
        let mut bfm = LocalDetector::default();
        bfm.update(&CongestionMetric::paper_default(MetricKind::Bfm), &r, &sig);
        let mut bfa = LocalDetector::default();
        bfa.update(&CongestionMetric::paper_default(MetricKind::Bfa), &r, &sig);
        assert!(bfm.is_congested());
        assert!(!bfa.is_congested());
    }

    #[test]
    fn injection_rate_windowed() {
        let metric = CongestionMetric::InjectionRate {
            threshold: 0.5,
            window: 10,
        };
        let mut d = LocalDetector::default();
        let r = router_with_flits(0);
        // 8 flits in 10 cycles: rate 0.8 >= 0.5.
        for i in 0..10 {
            let sig = NodeSignals {
                injected_flits_this_cycle: u32::from(i < 8),
                ..Default::default()
            };
            d.update(&metric, &r, &sig);
        }
        assert!(d.is_congested());
        // Now 10 idle cycles: rate 0 -> clears after the window completes.
        for _ in 0..10 {
            d.update(&metric, &r, &NodeSignals::default());
        }
        assert!(!d.is_congested());
    }

    #[test]
    fn iqocc_follows_queue_occupancy() {
        let metric = CongestionMetric::paper_default(MetricKind::IqOcc);
        let mut d = LocalDetector::default();
        let r = router_with_flits(0);
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 4,
                ..Default::default()
            },
        );
        assert!(d.is_congested());
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 3,
                ..Default::default()
            },
        );
        assert!(d.is_congested(), "hysteresis: 3 is between clear=2 and set=4");
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 1,
                ..Default::default()
            },
        );
        assert!(!d.is_congested());
    }

    #[test]
    fn delay_metric_detects_stalled_router() {
        let metric = CongestionMetric::Delay {
            threshold: 1.5,
            window: 4,
        };
        let mut d = LocalDetector::default();
        // A router whose only flit cannot move (downstream inactive).
        let mut r = router_with_flits(1);
        let mut out = catnap_noc::router::RouterOutput::default();
        let mut blocked_nbrs = [true; 5];
        blocked_nbrs[Port::East.index()] = false;
        for _ in 0..4 {
            r.step(&blocked_nbrs, &mut out);
            d.update(&metric, &r, &NodeSignals::default());
        }
        assert!(d.is_congested(), "waiting flits with zero reads are infinite delay");
    }

    #[test]
    fn fast_forward_matches_idle_updates_for_all_metrics() {
        let idle = router_with_flits(0);
        let quiet = NodeSignals::default();
        for kind in [
            MetricKind::Bfm,
            MetricKind::Bfa,
            MetricKind::InjectionRate,
            MetricKind::IqOcc,
            MetricKind::Delay,
        ] {
            let metric = CongestionMetric::paper_default(kind);
            // Build some window history, then let it drain below the set
            // threshold so the detector is quiet but mid-window.
            let mut stepped = LocalDetector::default();
            for _ in 0..5 {
                stepped.update(
                    &metric,
                    &idle,
                    &NodeSignals {
                        injected_flits_this_cycle: 0,
                        ..Default::default()
                    },
                );
            }
            assert!(!stepped.is_congested());
            let mut skipped = stepped.clone();
            let dt = stepped.skip_bound(&metric, &idle).min(997);
            for _ in 0..dt {
                stepped.update(&metric, &idle, &quiet);
            }
            skipped.fast_forward(&metric, dt);
            assert_eq!(skipped, stepped, "{kind:?} closed form diverged over {dt} cycles");
        }
    }

    #[test]
    fn skip_bound_stops_short_of_dirty_windows() {
        let idle = router_with_flits(0);
        let metric = CongestionMetric::InjectionRate {
            threshold: 0.5,
            window: 10,
        };
        let mut d = LocalDetector::default();
        // Three injecting cycles: quiet (estimate not latched yet) but the
        // window carries history.
        for _ in 0..3 {
            d.update(
                &metric,
                &idle,
                &NodeSignals {
                    injected_flits_this_cycle: 1,
                    ..Default::default()
                },
            );
        }
        assert!(!d.is_congested());
        assert_eq!(
            d.skip_bound(&metric, &idle),
            6,
            "skip must stop before the cycle that latches the window"
        );

        // Delay: router counters moved since the last latch -> dirty.
        let delay = CongestionMetric::Delay {
            threshold: 1.5,
            window: 32,
        };
        let mut blocked = router_with_flits(1);
        let mut out = catnap_noc::router::RouterOutput::default();
        let mut blocked_nbrs = [true; 5];
        blocked_nbrs[Port::East.index()] = false;
        blocked.step(&blocked_nbrs, &mut out);
        let mut d = LocalDetector::default();
        d.update(&delay, &blocked, &NodeSignals::default());
        assert_eq!(d.skip_bound(&delay, &blocked), 32 - 1 - 1);
        // Degenerate thresholds force per-cycle stepping.
        assert_eq!(
            LocalDetector::default().skip_bound(&CongestionMetric::Bfm { set: 0, clear: 0 }, &idle),
            0
        );
        assert_eq!(
            LocalDetector::default().skip_bound(
                &CongestionMetric::Delay {
                    threshold: 0.0,
                    window: 8
                },
                &idle
            ),
            0
        );
    }

    #[test]
    fn paper_defaults_match_section_4() {
        assert_eq!(
            CongestionMetric::paper_default(MetricKind::Bfm),
            CongestionMetric::Bfm { set: 9, clear: 6 }
        );
        match CongestionMetric::paper_default(MetricKind::Delay) {
            CongestionMetric::Delay { threshold, .. } => assert!((threshold - 1.5).abs() < 1e-12),
            _ => unreachable!(),
        }
        assert_eq!(CongestionMetric::paper_default(MetricKind::Bfm).kind(), MetricKind::Bfm);
    }
}
