//! Local congestion status (LCS) detection.
//!
//! Each node continuously classifies each subnet as congested or not by
//! examining its local router (and NI). The paper investigates five
//! metrics (Sections 3.2.1 and 3.4); Catnap's final design uses **BFM**,
//! the maximum buffer occupancy over the local router's input ports,
//! because its congestion threshold is independent of the traffic pattern
//! and it is cheap to implement.
//!
//! All metrics use set/clear hysteresis: once congestion is declared it is
//! only cleared when the metric falls below a (lower) clear threshold, so
//! the status is stable for at least a few cycles.

use catnap_noc::Router;

/// Which local congestion metric a detector uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Maximum input-port buffer occupancy (Catnap's choice).
    Bfm,
    /// Average input-port buffer occupancy.
    Bfa,
    /// Node injection rate into the subnet (flits per cycle over a window).
    InjectionRate,
    /// NI injection-queue occupancy (shared across subnets).
    IqOcc,
    /// Average blocking delay per flit at the local router (sampled).
    Delay,
}

/// A local congestion metric with its thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CongestionMetric {
    /// Max port occupancy in flits: set when `>= set`, cleared when
    /// `< clear`.
    Bfm {
        /// Set threshold in flits (paper: 9).
        set: usize,
        /// Clear threshold in flits.
        clear: usize,
    },
    /// Average port occupancy in flits (paper threshold: 2).
    Bfa {
        /// Set threshold.
        set: f64,
        /// Clear threshold.
        clear: f64,
    },
    /// Injection rate in flits per cycle, measured over `window` cycles
    /// (paper sweeps packet-rate thresholds 0.04–0.24; expressed here in
    /// flits/cycle of the subnet).
    InjectionRate {
        /// Rate threshold in flits per cycle.
        threshold: f64,
        /// Measurement window in cycles.
        window: u32,
    },
    /// NI injection-queue occupancy in flits (paper: 4 of a 16-flit
    /// queue).
    IqOcc {
        /// Set threshold in flits.
        set: usize,
        /// Clear threshold in flits.
        clear: usize,
    },
    /// Average blocking delay per switched flit over a sampling window
    /// (paper: 1.5 cycles).
    Delay {
        /// Delay threshold in cycles.
        threshold: f64,
        /// Sampling window in cycles.
        window: u32,
    },
}

impl CongestionMetric {
    /// The paper's best-performing thresholds for each metric
    /// (Section 4.1).
    pub fn paper_default(kind: MetricKind) -> Self {
        match kind {
            MetricKind::Bfm => CongestionMetric::Bfm { set: 9, clear: 6 },
            MetricKind::Bfa => CongestionMetric::Bfa { set: 2.0, clear: 1.25 },
            MetricKind::InjectionRate => CongestionMetric::InjectionRate {
                threshold: 0.20 * 4.0, // 0.20 packets/node/cycle × 4 flits/packet
                window: 64,
            },
            MetricKind::IqOcc => CongestionMetric::IqOcc { set: 4, clear: 2 },
            MetricKind::Delay => CongestionMetric::Delay {
                threshold: 1.5,
                window: 32,
            },
        }
    }

    /// Which metric family this is.
    pub fn kind(&self) -> MetricKind {
        match self {
            CongestionMetric::Bfm { .. } => MetricKind::Bfm,
            CongestionMetric::Bfa { .. } => MetricKind::Bfa,
            CongestionMetric::InjectionRate { .. } => MetricKind::InjectionRate,
            CongestionMetric::IqOcc { .. } => MetricKind::IqOcc,
            CongestionMetric::Delay { .. } => MetricKind::Delay,
        }
    }
}

/// Inputs a detector may need beyond the router itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSignals {
    /// Current NI injection-queue occupancy, in flits (shared per node).
    pub ni_queue_flits: usize,
    /// Flits this node injected into this subnet this cycle.
    pub injected_flits_this_cycle: u32,
}

/// Per-(node, subnet) local congestion detector.
#[derive(Clone, Debug, Default)]
pub struct LocalDetector {
    congested: bool,
    // Injection-rate window state.
    window_pos: u32,
    window_flits: u64,
    rate_estimate: f64,
    // Delay-metric window state: last-seen cumulative counters.
    last_blocked: u64,
    last_reads: u64,
}

impl LocalDetector {
    /// Current local congestion status.
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// Updates the status from this cycle's observations.
    pub fn update(&mut self, metric: &CongestionMetric, router: &Router, signals: &NodeSignals) {
        match *metric {
            CongestionMetric::Bfm { set, clear } => {
                let occ = router.max_port_occupancy();
                self.hysteresis(occ as f64, set as f64, clear as f64);
            }
            CongestionMetric::Bfa { set, clear } => {
                let occ = router.avg_port_occupancy();
                self.hysteresis(occ, set, clear);
            }
            CongestionMetric::InjectionRate { threshold, window } => {
                self.window_flits += u64::from(signals.injected_flits_this_cycle);
                self.window_pos += 1;
                if self.window_pos >= window {
                    self.rate_estimate = self.window_flits as f64 / window as f64;
                    self.window_pos = 0;
                    self.window_flits = 0;
                }
                self.congested = self.rate_estimate >= threshold;
            }
            CongestionMetric::IqOcc { set, clear } => {
                self.hysteresis(signals.ni_queue_flits as f64, set as f64, clear as f64);
            }
            CongestionMetric::Delay { threshold, window } => {
                self.window_pos += 1;
                if self.window_pos >= window {
                    self.window_pos = 0;
                    let a = router.activity;
                    let blocked = a.head_blocked_cycles - self.last_blocked;
                    let reads = a.buffer_reads - self.last_reads;
                    self.last_blocked = a.head_blocked_cycles;
                    self.last_reads = a.buffer_reads;
                    // Average blocking delay per switched flit in the
                    // window. With no movement at all but waiting flits,
                    // treat as congested.
                    let avg = if reads > 0 {
                        blocked as f64 / reads as f64
                    } else if blocked > 0 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    self.congested = avg >= threshold;
                }
            }
        }
    }

    fn hysteresis(&mut self, value: f64, set: f64, clear: f64) {
        if value >= set {
            self.congested = true;
        } else if value < clear {
            self.congested = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catnap_noc::{Flit, FlitKind, MessageClass, NodeId, PacketId, Port};

    fn router_with_flits(n: usize) -> Router {
        let mut r = Router::new(NodeId(0), 4, 4, [true; 5], 10, 12, 4);
        for i in 0..n {
            let vc = (i / 4) as u8; // fill VCs of the West port 4-deep
            r.deliver(
                Port::West,
                Flit {
                    packet: PacketId(i as u64),
                    kind: FlitKind::Single,
                    src: NodeId(1),
                    dst: NodeId(4),
                    seq: 0,
                    packet_len: 1,
                    class: MessageClass::Synthetic,
                    lookahead: Port::East,
                    vc,
                    created_cycle: 0,
                    net_inject_cycle: 0,
                },
            );
        }
        r
    }

    #[test]
    fn bfm_sets_at_threshold_and_clears_with_hysteresis() {
        let metric = CongestionMetric::paper_default(MetricKind::Bfm);
        let mut d = LocalDetector::default();
        let sig = NodeSignals::default();
        d.update(&metric, &router_with_flits(8), &sig);
        assert!(!d.is_congested(), "8 flits is below the set threshold of 9");
        d.update(&metric, &router_with_flits(9), &sig);
        assert!(d.is_congested());
        // Between clear (6) and set (9): stays congested.
        d.update(&metric, &router_with_flits(7), &sig);
        assert!(d.is_congested(), "hysteresis holds the status");
        d.update(&metric, &router_with_flits(5), &sig);
        assert!(!d.is_congested());
    }

    #[test]
    fn bfa_uses_average_over_ports() {
        // 9 flits on one port: BFM says congested, BFA (avg 1.8 < 2.0)
        // does not — the paper's point about BFA missing single-path
        // congestion.
        let r = router_with_flits(9);
        let sig = NodeSignals::default();
        let mut bfm = LocalDetector::default();
        bfm.update(&CongestionMetric::paper_default(MetricKind::Bfm), &r, &sig);
        let mut bfa = LocalDetector::default();
        bfa.update(&CongestionMetric::paper_default(MetricKind::Bfa), &r, &sig);
        assert!(bfm.is_congested());
        assert!(!bfa.is_congested());
    }

    #[test]
    fn injection_rate_windowed() {
        let metric = CongestionMetric::InjectionRate {
            threshold: 0.5,
            window: 10,
        };
        let mut d = LocalDetector::default();
        let r = router_with_flits(0);
        // 8 flits in 10 cycles: rate 0.8 >= 0.5.
        for i in 0..10 {
            let sig = NodeSignals {
                injected_flits_this_cycle: u32::from(i < 8),
                ..Default::default()
            };
            d.update(&metric, &r, &sig);
        }
        assert!(d.is_congested());
        // Now 10 idle cycles: rate 0 -> clears after the window completes.
        for _ in 0..10 {
            d.update(&metric, &r, &NodeSignals::default());
        }
        assert!(!d.is_congested());
    }

    #[test]
    fn iqocc_follows_queue_occupancy() {
        let metric = CongestionMetric::paper_default(MetricKind::IqOcc);
        let mut d = LocalDetector::default();
        let r = router_with_flits(0);
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 4,
                ..Default::default()
            },
        );
        assert!(d.is_congested());
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 3,
                ..Default::default()
            },
        );
        assert!(d.is_congested(), "hysteresis: 3 is between clear=2 and set=4");
        d.update(
            &metric,
            &r,
            &NodeSignals {
                ni_queue_flits: 1,
                ..Default::default()
            },
        );
        assert!(!d.is_congested());
    }

    #[test]
    fn delay_metric_detects_stalled_router() {
        let metric = CongestionMetric::Delay {
            threshold: 1.5,
            window: 4,
        };
        let mut d = LocalDetector::default();
        // A router whose only flit cannot move (downstream inactive).
        let mut r = router_with_flits(1);
        let mut out = catnap_noc::router::RouterOutput::default();
        let mut blocked_nbrs = [true; 5];
        blocked_nbrs[Port::East.index()] = false;
        for _ in 0..4 {
            r.step(&blocked_nbrs, &mut out);
            d.update(&metric, &r, &NodeSignals::default());
        }
        assert!(d.is_congested(), "waiting flits with zero reads are infinite delay");
    }

    #[test]
    fn paper_defaults_match_section_4() {
        assert_eq!(
            CongestionMetric::paper_default(MetricKind::Bfm),
            CongestionMetric::Bfm { set: 9, clear: 6 }
        );
        match CongestionMetric::paper_default(MetricKind::Delay) {
            CongestionMetric::Delay { threshold, .. } => assert!((threshold - 1.5).abs() < 1e-12),
            _ => unreachable!(),
        }
        assert_eq!(CongestionMetric::paper_default(MetricKind::Bfm).kind(), MetricKind::Bfm);
    }
}
