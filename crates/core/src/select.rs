//! Subnet-selection policies.
//!
//! When a packet reaches the head of a node's NI queue, one subnet must be
//! chosen to carry it (all flits of a packet stay on one subnet). The
//! choice determines whether higher-order subnets see the long idle
//! periods that make power gating profitable.

use catnap_util::codec::{ByteReader, ByteWriter, CodecError};
use catnap_util::SimRng;

/// Packs a selector's congestion view into a bitmask (bit `s` set iff
/// subnet `s` looked congested), the compact form carried by
/// [`catnap_telemetry::Event::Select`] events. Subnets beyond bit 7 are
/// truncated — no Catnap configuration exceeds 8 subnets.
pub fn congestion_mask(congested: &[bool]) -> u8 {
    congested
        .iter()
        .take(8)
        .enumerate()
        .fold(0u8, |m, (s, &c)| if c { m | (1 << s) } else { m })
}

/// A subnet-selection policy.
///
/// `congested[s]` is the node's current view of subnet `s` (local OR
/// regional congestion status, depending on configuration).
pub trait SubnetSelector {
    /// Chooses the subnet for the packet at the head of `node`'s NI queue.
    fn select(&mut self, node: usize, congested: &[bool]) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Serializes the policy's mutable state for checkpointing. The
    /// default writes nothing — correct for stateless policies; stateful
    /// ones (counters, RNG streams) must override both this and
    /// [`SubnetSelector::decode_state`] for resumed runs to be
    /// bit-identical.
    fn encode_state(&self, _w: &mut ByteWriter) {}

    /// Restores state written by [`SubnetSelector::encode_state`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated or inconsistent stream.
    fn decode_state(&mut self, _r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        Ok(())
    }
}

/// Round-robin across subnets regardless of congestion (the conventional
/// baseline: spreads load evenly and defeats power gating).
#[derive(Clone, Debug)]
pub struct RoundRobin {
    counters: Vec<usize>,
}

impl RoundRobin {
    /// One counter per node.
    pub fn new(num_nodes: usize) -> Self {
        RoundRobin {
            counters: vec![0; num_nodes],
        }
    }
}

impl SubnetSelector for RoundRobin {
    fn select(&mut self, node: usize, congested: &[bool]) -> usize {
        let k = congested.len();
        let s = self.counters[node] % k;
        self.counters[node] = (s + 1) % k;
        s
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn encode_state(&self, w: &mut ByteWriter) {
        for &c in &self.counters {
            w.put_usize(c);
        }
    }
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        for c in self.counters.iter_mut() {
            *c = r.get_usize()?;
        }
        Ok(())
    }
}

/// Uniformly random subnet choice.
#[derive(Clone, Debug)]
pub struct RandomSelect {
    rng: SimRng,
}

impl RandomSelect {
    /// Seeded for determinism.
    pub fn new(seed: u64) -> Self {
        RandomSelect {
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl SubnetSelector for RandomSelect {
    fn select(&mut self, _node: usize, congested: &[bool]) -> usize {
        self.rng.gen_range(0..congested.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
    fn encode_state(&self, w: &mut ByteWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
    }
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            *word = r.get_u64()?;
        }
        self.rng = SimRng::from_state(s);
        Ok(())
    }
}

/// Catnap's strict-priority policy (Section 3.2): inject into the
/// lowest-order subnet that is not close to congestion; if every subnet is
/// congested, round-robin among them all.
#[derive(Clone, Debug)]
pub struct CatnapPriority {
    rr_counters: Vec<usize>,
}

impl CatnapPriority {
    /// One overflow round-robin counter per node.
    pub fn new(num_nodes: usize) -> Self {
        CatnapPriority {
            rr_counters: vec![0; num_nodes],
        }
    }
}

impl SubnetSelector for CatnapPriority {
    fn select(&mut self, node: usize, congested: &[bool]) -> usize {
        if let Some(s) = congested.iter().position(|&c| !c) {
            return s;
        }
        let k = congested.len();
        let s = self.rr_counters[node] % k;
        self.rr_counters[node] = (s + 1) % k;
        s
    }
    fn name(&self) -> &'static str {
        "catnap-priority"
    }
    fn encode_state(&self, w: &mut ByteWriter) {
        for &c in &self.rr_counters {
            w.put_usize(c);
        }
    }
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        for c in self.rr_counters.iter_mut() {
            *c = r.get_usize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_per_node() {
        let mut rr = RoundRobin::new(2);
        let c = [false; 4];
        let picks: Vec<usize> = (0..8).map(|_| rr.select(0, &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Independent counter for another node.
        assert_eq!(rr.select(1, &c), 0);
    }

    #[test]
    fn round_robin_ignores_congestion() {
        let mut rr = RoundRobin::new(1);
        let c = [true, false, true, false];
        let picks: Vec<usize> = (0..4).map(|_| rr.select(0, &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn catnap_prefers_lowest_uncongested() {
        let mut sel = CatnapPriority::new(1);
        assert_eq!(sel.select(0, &[false, false, false, false]), 0);
        assert_eq!(sel.select(0, &[true, false, false, false]), 1);
        assert_eq!(sel.select(0, &[true, true, false, false]), 2);
        assert_eq!(sel.select(0, &[true, true, true, false]), 3);
        // Decongestion immediately re-prioritizes subnet 0.
        assert_eq!(sel.select(0, &[false, true, true, true]), 0);
    }

    #[test]
    fn catnap_round_robins_when_all_congested() {
        let mut sel = CatnapPriority::new(1);
        let all = [true; 4];
        let picks: Vec<usize> = (0..8).map(|_| sel.select(0, &all)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let picks = |seed| {
            let mut s = RandomSelect::new(seed);
            (0..32).map(|_| s.select(0, &[false; 4])).collect::<Vec<usize>>()
        };
        let a = picks(1);
        assert_eq!(a, picks(1));
        assert!(a.iter().all(|&p| p < 4));
        // Uses more than one subnet.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn congestion_mask_packs_bits() {
        assert_eq!(congestion_mask(&[false; 4]), 0);
        assert_eq!(congestion_mask(&[true, false, true, false]), 0b0101);
        assert_eq!(congestion_mask(&[true; 4]), 0b1111);
        // Truncated, not panicking, past 8 subnets.
        assert_eq!(congestion_mask(&[true; 12]), 0xff);
    }

    #[test]
    fn names() {
        assert_eq!(RoundRobin::new(1).name(), "round-robin");
        assert_eq!(CatnapPriority::new(1).name(), "catnap-priority");
        assert_eq!(RandomSelect::new(0).name(), "random");
    }
}
