//! Fingerprint-keyed on-disk cache of simulation results and warm-up
//! checkpoints.
//!
//! Both payload kinds are keyed by a 64-bit fingerprint (see
//! [`crate::checkpoint::config_fingerprint`] and the job fingerprints
//! built on top of it by `catnap-bench`): *results* are small JSON
//! documents (`r-{key}.json`), *checkpoints* are sealed binary blobs
//! (`c-{key}.ckpt`, self-validating via magic/version/checksum). The
//! cache is a plain directory — hermetic, no index file, safe to delete
//! at any time — and is bounded: when the entry count exceeds the
//! configured cap, the oldest-written files are evicted first.
//!
//! Corrupt entries are treated as misses, never as errors: a checkpoint
//! that fails its checksum on resume should simply be recomputed.
//!
//! The directory may be shared by any number of processes (several
//! `catnap-serve` workers behind one `catnap-hive` coordinator, say):
//! inserts stage into a per-process uniquely-named temp file and
//! atomically rename it into place, so concurrent writers of the same
//! key each install a complete entry (byte-identical by construction —
//! entries are pure functions of their fingerprint), and readers racing
//! an eviction see a plain miss when an entry vanishes between the
//! directory listing and the read.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Monotone counter distinguishing concurrent temp files written by
/// different [`SimCache`] handles within one process; the process id
/// separates handles across processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Hit/miss/eviction counters for one [`SimCache`] handle (process-local;
/// not persisted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result lookups satisfied from disk.
    pub result_hits: u64,
    /// Result lookups that missed.
    pub result_misses: u64,
    /// Checkpoint lookups satisfied from disk.
    pub checkpoint_hits: u64,
    /// Checkpoint lookups that missed.
    pub checkpoint_misses: u64,
    /// Entries removed to stay under the size cap.
    pub evictions: u64,
}

/// A bounded directory-backed cache mapping 64-bit fingerprints to
/// simulation results and warm-up checkpoints.
#[derive(Debug)]
pub struct SimCache {
    dir: PathBuf,
    max_entries: usize,
    stats: CacheStats,
}

impl SimCache {
    /// Opens (creating if needed) a cache rooted at `dir`, holding at most
    /// `max_entries` files across both payload kinds.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn new(dir: impl Into<PathBuf>, max_entries: usize) -> io::Result<Self> {
        assert!(max_entries > 0, "cache capacity must be non-zero");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SimCache {
            dir,
            max_entries,
            stats: CacheStats::default(),
        })
    }

    /// Opens the cache at `$CATNAP_CACHE_DIR`, falling back to `default`
    /// when the variable is unset or empty. Capacity defaults to 512
    /// entries.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created.
    pub fn from_env_or(default: impl Into<PathBuf>) -> io::Result<Self> {
        match std::env::var("CATNAP_CACHE_DIR") {
            Ok(dir) if !dir.is_empty() => SimCache::new(dir, 512),
            _ => SimCache::new(default, 512),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this handle.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn result_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("r-{key:016x}.json"))
    }

    fn checkpoint_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("c-{key:016x}.ckpt"))
    }

    /// Looks up a cached result document.
    pub fn get_result(&mut self, key: u64) -> Option<String> {
        match fs::read_to_string(self.result_path(key)) {
            Ok(s) => {
                self.stats.result_hits += 1;
                Some(s)
            }
            Err(_) => {
                self.stats.result_misses += 1;
                None
            }
        }
    }

    /// Stores a result document, evicting oldest entries past the cap.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the entry cannot be written.
    pub fn put_result(&mut self, key: u64, json: &str) -> io::Result<()> {
        self.put(self.result_path(key), json.as_bytes())
    }

    /// Looks up a cached checkpoint blob.
    pub fn get_checkpoint(&mut self, key: u64) -> Option<Vec<u8>> {
        match fs::read(self.checkpoint_path(key)) {
            Ok(b) => {
                self.stats.checkpoint_hits += 1;
                Some(b)
            }
            Err(_) => {
                self.stats.checkpoint_misses += 1;
                None
            }
        }
    }

    /// Stores a checkpoint blob, evicting oldest entries past the cap.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the entry cannot be written.
    pub fn put_checkpoint(&mut self, key: u64, bytes: &[u8]) -> io::Result<()> {
        self.put(self.checkpoint_path(key), bytes)
    }

    fn put(&mut self, path: PathBuf, bytes: &[u8]) -> io::Result<()> {
        // Write-then-rename so a concurrent reader never sees a torn
        // entry (it sees either no file — a miss — or a complete one).
        // The temp name carries the process id and a process-local
        // counter: several workers sharing one CATNAP_CACHE_DIR can
        // write the same key at once, and each rename then atomically
        // installs one complete, byte-identical entry instead of two
        // writers interleaving into the same temp file.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.evict_to_cap();
        Ok(())
    }

    /// Removes oldest-written entries until the count is within the cap.
    /// Best-effort: I/O failures here only mean the cache stays larger,
    /// and an entry another process already evicted (metadata or remove
    /// failing on a vanished file) is silently skipped.
    fn evict_to_cap(&mut self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let cached = (name.starts_with("r-") && name.ends_with(".json"))
                    || (name.starts_with("c-") && name.ends_with(".ckpt"));
                if !cached {
                    return None;
                }
                let mtime = e.metadata().ok()?.modified().ok()?;
                Some((mtime, path))
            })
            .collect();
        if files.len() <= self.max_entries {
            return;
        }
        files.sort();
        let excess = files.len() - self.max_entries;
        for (_, path) in files.into_iter().take(excess) {
            if fs::remove_file(&path).is_ok() {
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("catnap-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_results_and_checkpoints() {
        let dir = temp_dir("rt");
        let mut cache = SimCache::new(&dir, 16).unwrap();
        assert_eq!(cache.get_result(1), None);
        cache.put_result(1, "{\"x\":1}").unwrap();
        assert_eq!(cache.get_result(1).as_deref(), Some("{\"x\":1}"));
        cache.put_checkpoint(1, b"\x01\x02").unwrap();
        assert_eq!(cache.get_checkpoint(1).as_deref(), Some(&b"\x01\x02"[..]));
        let s = cache.stats();
        assert_eq!((s.result_hits, s.result_misses, s.checkpoint_hits), (1, 1, 1));
        // A second handle over the same directory sees the entries.
        let mut other = SimCache::new(&dir, 16).unwrap();
        assert!(other.get_result(1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicts_oldest_past_cap() {
        let dir = temp_dir("evict");
        let mut cache = SimCache::new(&dir, 3).unwrap();
        for key in 0..5u64 {
            cache.put_result(key, "{}").unwrap();
            // Distinct mtimes so eviction order is deterministic.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.get_result(0).is_none(), "oldest evicted");
        assert!(cache.get_result(4).is_some(), "newest kept");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Many handles hammering one directory — overlapping keys, a cap
    /// small enough to force continuous eviction — must never corrupt an
    /// entry or error out: every read is either a miss or the exact
    /// bytes that key stores. This is the single-host model of several
    /// worker processes sharing one `CATNAP_CACHE_DIR`.
    #[test]
    fn concurrent_handles_share_a_directory_safely() {
        let dir = temp_dir("concurrent");
        fs::create_dir_all(&dir).unwrap();
        let payload = |key: u64| format!("{{\"key\":{key}}}");
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    // Tiny cap: every insert beyond 8 entries races an
                    // eviction in every other thread.
                    let mut cache = SimCache::new(&dir, 8).unwrap();
                    for round in 0..30u64 {
                        let key = (t + round) % 12;
                        cache.put_result(key, &payload(key)).unwrap();
                        cache.put_checkpoint(key, payload(key).as_bytes()).unwrap();
                        for probe in 0..12u64 {
                            if let Some(text) = cache.get_result(probe) {
                                assert_eq!(text, payload(probe), "torn or foreign entry under key {probe}");
                            }
                            if let Some(bytes) = cache.get_checkpoint(probe) {
                                assert_eq!(bytes, payload(probe).into_bytes(), "torn checkpoint under key {probe}");
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no cache thread may panic");
        }
        // No temp litter left behind once all writers are done.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
