//! Online adaptive parallel-dispatch controller.
//!
//! The Multi-NoC has two scheduling decisions per cycle that used to be
//! static constants:
//!
//! 1. **Subnet fan-out** — step busy subnets as pool jobs, or run the
//!    plain serial loop on the caller (old crossover: any subnet with
//!    `busy_routers() >=` [`SUBNET_DISPATCH_MIN`] went to the pool).
//! 2. **Shard fan-out** — inside a pooled subnet, split phase 2 into
//!    spatial shards or sweep it serially (old crossover: run set `>=`
//!    [`catnap_noc::SHARD_DISPATCH_MIN`]).
//!
//! Both choices are *pure scheduling*: every arm of every decision
//! produces bit-identical simulation results (see
//! `catnap_noc::network::sharded`). The right crossover, however,
//! depends on the host — core count, cache sizes, contention from
//! neighbouring processes — so fixed constants leave throughput on the
//! table (and on a 1-core host the static crossovers can make the
//! "parallel" path a pure regression).
//!
//! [`DispatchController`] replaces the constants with a tiny online
//! cost model: one pair of EWMA wall-time estimates (serial arm vs
//! parallel arm) per *decision class and load bucket*.
//!
//! * The **subnet class** decides, once per cycle, whether the set of
//!   busy subnets fans out to the pool at all. It is keyed by the
//!   number of busy subnets (1..=K, clamped to 8 buckets) and fed the
//!   cycle-to-cycle wall time from the phase start to the next cycle's
//!   planning point. Charging the whole cycle, not just the phase,
//!   matters on an oversubscribed host: a fan-out's worker wake-ups
//!   bill their context-switch pressure *after* the phase returns, and
//!   a phase-only clock would book that cost to whichever arm runs
//!   next. The arm-independent work inside the window (traffic drive,
//!   NIs, policy) hits both arms equally, so preferences are unbiased.
//! * The **shard class** decides, per pooled subnet, whether that
//!   subnet's phase 2 runs the spatial shard sweep (dispatch floor 2)
//!   or stays serial (floor `usize::MAX`). It is keyed by the subnet's
//!   busy-router census on a log2 scale and fed each subnet job's wall
//!   time.
//!
//! Each bucket first collects [`MIN_SAMPLES`] observations of both arms
//! (alternating), then plays the arm with the lower estimate,
//! re-probing the other arm every [`PROBE_PERIOD`] decisions so a
//! congested host or a load shift can flip the preference back. Wall
//! clocks are nondeterministic, so decisions are nondeterministic too —
//! which is fine precisely because the arms are bit-identical: the
//! controller only ever chooses *how* to compute the cycle, never
//! *what* it computes. Controller state is runtime scratch: it is never
//! serialized into checkpoints and never hashed into the config
//! fingerprint, exactly like `step_threads` / `shard_threads`.

use catnap_noc::{PartitionShape, SHARD_DISPATCH_MIN};
use catnap_util::impl_to_json_struct;
use std::time::Duration;

/// Environment variable pinning the static dispatch crossovers: set to
/// `1` to disable the adaptive controller process-wide, restoring the
/// historical constants ([`SHARD_DISPATCH_MIN`] and the subnet busy
/// floor) regardless of configuration. Scheduling-only escape hatch —
/// results are bit-identical either way.
pub const FORCE_STATIC_ENV: &str = "CATNAP_FORCE_STATIC_DISPATCH";

/// Busy-router census at or above which a subnet counts as *busy* — the
/// static pool-dispatch crossover, and the adaptive controller's floor
/// for considering a subnet worth a pool job at all. (Private to
/// `multinoc` before the controller existed.)
pub const SUBNET_DISPATCH_MIN: usize = 8;

/// EWMA smoothing factor for the per-arm cost estimates.
const ALPHA: f64 = 0.2;

/// Smoothing factor for *probe* samples. A probe is the only fresh
/// signal the non-preferred arm ever gets, and probes back off to one
/// per [`PROBE_PERIOD_MAX`] decisions — at the routine [`ALPHA`] a
/// stale (wrongly pessimistic) estimate would decay so slowly that a
/// bucket locked onto the wrong arm takes thousands of decisions to
/// escape. Weighting the rare probe sample heavily keeps lock-ins
/// shallow.
const PROBE_ALPHA: f64 = 0.5;

/// Observations of each arm a bucket collects before trusting its
/// estimates. The bootstrap alternates arms sample-by-sample rather
/// than exhausting one arm first: per-cycle costs drift hard early in a
/// run (caches warming, gating engaging), and back-to-back sampling
/// would hand whichever arm went second a systematically cheaper
/// baseline.
const MIN_SAMPLES: u64 = 4;

/// After bootstrap, a bucket periodically plays the non-preferred arm
/// to keep its estimate fresh, starting at this period.
const PROBE_PERIOD: u64 = 32;

/// Probe-period ceiling: each probe that *confirms* the standing
/// preference doubles the period (a flip resets it to
/// [`PROBE_PERIOD`]), so a stable bucket's exploration overhead decays
/// to at most one probe per this many decisions. Keeps the worst-case
/// steady-state cost of re-playing a losing arm well under 1%.
const PROBE_PERIOD_MAX: u64 = 1024;

/// Preference hysteresis: the parallel arm must estimate at least this
/// much cheaper than the serial arm before a bucket prefers it
/// (`parallel < serial * PARALLEL_EDGE`). Serial is the safe default —
/// on a host where fan-out genuinely pays, the pool wins by far more
/// than this margin (2-3x on a multi-core box), while on an
/// oversubscribed or single-core host the two estimates sit within
/// measurement noise of each other and an unbiased comparison would
/// flip-flop (each flip resets the probe backoff, so the noise itself
/// becomes a standing probe tax).
const PARALLEL_EDGE: f64 = 0.85;

/// Subnet-class buckets: busy-subnet count 1..=8+ (index `busy - 1`).
const SUBNET_BUCKETS: usize = 8;

/// Shard-class buckets: `floor(log2(census))`, clamped. 12 buckets
/// cover censuses up to 4096+ routers.
const SHARD_BUCKETS: usize = 12;

/// Whether [`FORCE_STATIC_ENV`] pins the static crossovers right now.
pub fn force_static_dispatch() -> bool {
    std::env::var_os(FORCE_STATIC_ENV).is_some_and(|v| v == "1")
}

/// One arm of a dispatch decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arm {
    /// Step inline on the caller (subnet class) / serial phase 2
    /// (shard class).
    Serial,
    /// Fan out to the pool (subnet class) / spatial shard sweep
    /// (shard class).
    Parallel,
}

/// Exponentially weighted moving average of a cost in nanoseconds,
/// behind a median-of-3 prefilter: raw per-cycle costs carry huge
/// one-off outliers (traffic bursts, a preemption landing mid-phase),
/// and feeding the median of the last three raw samples into the EWMA
/// keeps a single spike from swinging an arm's estimate by `ALPHA`.
#[derive(Clone, Copy, Debug, Default)]
struct Ewma {
    ns: f64,
    samples: u64,
    recent: [f64; 3],
}

impl Ewma {
    fn record(&mut self, ns: f64, alpha: f64) {
        self.recent[(self.samples % 3) as usize] = ns;
        self.samples += 1;
        let filtered = match self.samples {
            1 => ns,
            2 => (self.recent[0] + self.recent[1]) / 2.0,
            _ => {
                let [a, b, c] = self.recent;
                a.max(b).min(a.min(b).max(c))
            }
        };
        if self.samples == 1 {
            self.ns = filtered;
        } else {
            self.ns += alpha * (filtered - self.ns);
        }
    }
}

/// The two competing cost estimates of one load bucket, plus the
/// bookkeeping that drives bootstrap and decaying exploration.
#[derive(Clone, Copy, Debug)]
struct ArmPair {
    serial: Ewma,
    parallel: Ewma,
    decisions: u64,
    /// Decisions between probes; doubles while probe samples keep
    /// confirming the standing preference, resets when one overturns
    /// it. The decision is made when the probe's sample lands (in
    /// [`ArmPair::record`]), so a probe that contradicts the standing
    /// preference restores the fast probing cadence immediately.
    probe_period: u64,
    /// Decisions since the last probe.
    since_probe: u64,
    /// Preference standing when the last probe was issued (backoff
    /// comparator).
    pref_at_probe: Option<Arm>,
}

impl Default for ArmPair {
    fn default() -> Self {
        ArmPair {
            serial: Ewma::default(),
            parallel: Ewma::default(),
            decisions: 0,
            probe_period: PROBE_PERIOD,
            since_probe: 0,
            pref_at_probe: None,
        }
    }
}

impl ArmPair {
    /// Picks the arm to play: bootstrap under-sampled arms first
    /// (alternating, serial on ties), then the cheaper estimate,
    /// probing the other arm on a backoff schedule. Returns the arm and
    /// whether it was a probe.
    fn choose(&mut self) -> (Arm, bool) {
        self.decisions += 1;
        if self.serial.samples < MIN_SAMPLES || self.parallel.samples < MIN_SAMPLES {
            // Interleaved bootstrap: play whichever arm has fewer
            // samples, serial on ties (see [`MIN_SAMPLES`]).
            return if self.serial.samples <= self.parallel.samples {
                (Arm::Serial, false)
            } else {
                (Arm::Parallel, false)
            };
        }
        let preferred = if self.parallel.ns < self.serial.ns * PARALLEL_EDGE {
            Arm::Parallel
        } else {
            Arm::Serial
        };
        self.since_probe += 1;
        if self.since_probe >= self.probe_period {
            self.since_probe = 0;
            self.pref_at_probe = Some(preferred);
            let probe = match preferred {
                Arm::Serial => Arm::Parallel,
                Arm::Parallel => Arm::Serial,
            };
            (probe, true)
        } else {
            (preferred, false)
        }
    }

    fn record(&mut self, arm: Arm, elapsed: Duration, probe: bool) {
        let ns = elapsed.as_nanos() as f64;
        let alpha = if probe { PROBE_ALPHA } else { ALPHA };
        match arm {
            Arm::Serial => self.serial.record(ns, alpha),
            Arm::Parallel => self.parallel.record(ns, alpha),
        }
        if probe {
            // Backoff is judged on the probe's own evidence: a sample
            // that leaves the standing preference intact doubles the
            // period, one that overturns it snaps back to fast probing.
            if self.preference() == self.pref_at_probe {
                self.probe_period = (self.probe_period * 2).min(PROBE_PERIOD_MAX);
            } else {
                self.probe_period = PROBE_PERIOD;
            }
        }
    }

    /// The arm this bucket currently prefers, if both are sampled.
    fn preference(&self) -> Option<Arm> {
        if self.serial.samples < MIN_SAMPLES || self.parallel.samples < MIN_SAMPLES {
            return None;
        }
        Some(if self.parallel.ns < self.serial.ns * PARALLEL_EDGE {
            Arm::Parallel
        } else {
            Arm::Serial
        })
    }
}

/// One subnet's dispatch choice for this cycle.
#[derive(Clone, Copy, Debug)]
pub struct SubnetChoice {
    /// Step this subnet as a pool job (`false` = inline on the caller).
    pub dispatch: bool,
    /// Phase-2 dispatch floor to pass to
    /// [`catnap_noc::Network::step_sharded_opts`]: `usize::MAX` pins the
    /// serial phase 2, small values engage the shard sweep.
    pub min_runset: usize,
    /// Shard-class bucket the choice was drawn from (`usize::MAX` when
    /// the shard class was not consulted — idle or inline subnets).
    pub bucket: usize,
    /// The shard-class arm played (meaningful only when `dispatch`).
    pub arm: Arm,
    /// Whether the shard-class choice was an exploration probe.
    pub probe: bool,
}

impl Default for SubnetChoice {
    fn default() -> Self {
        SubnetChoice {
            dispatch: false,
            min_runset: usize::MAX,
            bucket: usize::MAX,
            arm: Arm::Serial,
            probe: false,
        }
    }
}

/// A planned step-subnets phase: the cycle-global fan-out decision plus
/// one [`SubnetChoice`] per subnet. Produced by
/// [`DispatchController::plan_cycle`], handed back (with the phase wall
/// time) to [`DispatchController::record_phase`], which also recycles
/// the allocation.
#[derive(Clone, Debug, Default)]
pub struct CyclePlan {
    /// Whether any subnet goes to the pool this cycle.
    pub fanout: bool,
    /// Subnet-class bucket the fan-out decision was drawn from (`None`
    /// when no subnet was busy or the controller is static — nothing to
    /// learn from this cycle).
    pub bucket: Option<usize>,
    /// Whether the fan-out decision was an exploration probe.
    pub probe: bool,
    /// Per-subnet choices, indexed by subnet.
    pub choices: Vec<SubnetChoice>,
}

/// Counters describing what the controller decided, merged with the
/// pool's [`catnap_util::PoolStats`] by
/// [`crate::MultiNoc::dispatch_stats`] and exported as the
/// `dispatch_decisions` section of the perf benchmark JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DispatchStats {
    /// Whether the controller is adapting (vs pinned static crossovers).
    pub adaptive: bool,
    /// Partition shape the shard sweep uses (`row_bands` / `col_bands`
    /// / `tiles2d`).
    pub shape: String,
    /// Cycles planned.
    pub cycles: u64,
    /// Cycles whose step-subnets phase ran the serial loop.
    pub phase_serial: u64,
    /// Cycles whose step-subnets phase fanned out to the pool.
    pub phase_parallel: u64,
    /// Pooled subnet steps that pinned the serial phase 2.
    pub subnet_serial: u64,
    /// Pooled subnet steps that engaged the spatial shard sweep.
    pub subnet_parallel: u64,
    /// Decisions that were exploration probes (both classes).
    pub probes: u64,
    /// Jobs executed by the pool ([`catnap_util::PoolStats::jobs_run`]).
    pub pool_jobs_run: u64,
    /// Successful steals ([`catnap_util::PoolStats::steals`]).
    pub pool_steals: u64,
    /// Empty steal scans ([`catnap_util::PoolStats::failed_steals`]).
    pub pool_failed_steals: u64,
    /// Injector pops ([`catnap_util::PoolStats::injector_pops`]).
    pub pool_injector_pops: u64,
    /// Own-lane pops ([`catnap_util::PoolStats::lane_pops`]).
    pub pool_lane_pops: u64,
    /// Condvar parks ([`catnap_util::PoolStats::park_waits`]).
    pub pool_park_waits: u64,
}

impl_to_json_struct!(DispatchStats {
    adaptive,
    shape,
    cycles,
    phase_serial,
    phase_parallel,
    subnet_serial,
    subnet_parallel,
    probes,
    pool_jobs_run,
    pool_steals,
    pool_failed_steals,
    pool_injector_pops,
    pool_lane_pops,
    pool_park_waits,
});

/// The feedback-driven dispatch controller (see the module docs).
///
/// Runtime scratch owned by [`crate::MultiNoc`]: never serialized,
/// never fingerprinted — a resumed checkpoint starts with a fresh
/// controller and re-learns within a few hundred cycles.
#[derive(Clone, Debug)]
pub struct DispatchController {
    adaptive: bool,
    shape: PartitionShape,
    subnet_arms: [ArmPair; SUBNET_BUCKETS],
    shard_arms: [ArmPair; SHARD_BUCKETS],
    /// Recycled [`CyclePlan`] allocation.
    spare: CyclePlan,
    cycles: u64,
    phase_serial: u64,
    phase_parallel: u64,
    subnet_serial: u64,
    subnet_parallel: u64,
    probes: u64,
}

impl DispatchController {
    /// Builds a controller. `adaptive = false` pins the historical
    /// static crossovers ([`SUBNET_DISPATCH_MIN`] busy floor to the
    /// pool, [`SHARD_DISPATCH_MIN`] shard floor) and records nothing.
    pub fn new(adaptive: bool, shape: PartitionShape) -> Self {
        DispatchController {
            adaptive,
            shape,
            subnet_arms: [ArmPair::default(); SUBNET_BUCKETS],
            shard_arms: [ArmPair::default(); SHARD_BUCKETS],
            spare: CyclePlan::default(),
            cycles: 0,
            phase_serial: 0,
            phase_parallel: 0,
            subnet_serial: 0,
            subnet_parallel: 0,
            probes: 0,
        }
    }

    /// Whether the controller is adapting.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The partition shape pooled subnets shard with.
    pub fn shape(&self) -> PartitionShape {
        self.shape
    }

    /// Plans one step-subnets phase from the per-subnet busy-router
    /// censuses. Pure scheduling: any plan yields bit-identical results.
    pub fn plan_cycle(&mut self, censuses: &[usize]) -> CyclePlan {
        let mut plan = std::mem::take(&mut self.spare);
        plan.choices.clear();
        plan.choices.resize(censuses.len(), SubnetChoice::default());
        plan.bucket = None;
        plan.probe = false;
        self.cycles += 1;

        let busy = censuses.iter().filter(|&&c| c >= SUBNET_DISPATCH_MIN).count();
        if !self.adaptive {
            // Static mode: the historical behaviour, verbatim — busy
            // subnets to the pool with the static shard floor.
            plan.fanout = busy > 0;
            for (i, &census) in censuses.iter().enumerate() {
                if census >= SUBNET_DISPATCH_MIN {
                    plan.choices[i].dispatch = true;
                    plan.choices[i].min_runset = SHARD_DISPATCH_MIN;
                }
            }
            if plan.fanout {
                self.phase_parallel += 1;
            } else {
                self.phase_serial += 1;
            }
            return plan;
        }

        if busy == 0 {
            // Nothing worth a pool job; nothing to learn either.
            plan.fanout = false;
            self.phase_serial += 1;
            return plan;
        }

        let bucket = busy.min(SUBNET_BUCKETS) - 1;
        let (arm, probe) = self.subnet_arms[bucket].choose();
        plan.bucket = Some(bucket);
        plan.probe = probe;
        plan.fanout = arm == Arm::Parallel;
        self.probes += u64::from(probe);
        if plan.fanout {
            self.phase_parallel += 1;
            for (i, &census) in censuses.iter().enumerate() {
                if census < SUBNET_DISPATCH_MIN {
                    continue;
                }
                let sb = shard_bucket(census);
                let (sarm, sprobe) = self.shard_arms[sb].choose();
                self.probes += u64::from(sprobe);
                plan.choices[i] = SubnetChoice {
                    dispatch: true,
                    min_runset: match sarm {
                        Arm::Serial => usize::MAX,
                        Arm::Parallel => 2,
                    },
                    bucket: sb,
                    arm: sarm,
                    probe: sprobe,
                };
                match sarm {
                    Arm::Serial => self.subnet_serial += 1,
                    Arm::Parallel => self.subnet_parallel += 1,
                }
            }
        } else {
            self.phase_serial += 1;
        }
        plan
    }

    /// Feeds back the wall time of the whole step-subnets phase and
    /// recycles the plan's allocation. Static plans record nothing.
    pub fn record_phase(&mut self, plan: CyclePlan, elapsed: Duration) {
        if let Some(bucket) = plan.bucket {
            let arm = if plan.fanout { Arm::Parallel } else { Arm::Serial };
            self.subnet_arms[bucket].record(arm, elapsed, plan.probe);
        }
        self.spare = plan;
    }

    /// Feeds back one pooled subnet job's wall time into the shard
    /// class.
    pub fn record_subnet(&mut self, choice: &SubnetChoice, elapsed: Duration) {
        if choice.bucket < SHARD_BUCKETS {
            self.shard_arms[choice.bucket].record(choice.arm, elapsed, choice.probe);
        }
    }

    /// Controller-side decision counters (pool counters zeroed; the
    /// Multi-NoC merges its pool's [`catnap_util::PoolStats`] on top).
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            adaptive: self.adaptive,
            shape: self.shape.name().to_string(),
            cycles: self.cycles,
            phase_serial: self.phase_serial,
            phase_parallel: self.phase_parallel,
            subnet_serial: self.subnet_serial,
            subnet_parallel: self.subnet_parallel,
            probes: self.probes,
            ..DispatchStats::default()
        }
    }

    /// The shard-class arm a census's bucket currently prefers (`None`
    /// while that bucket is still bootstrapping). Diagnostics / tests.
    pub fn shard_preference(&self, census: usize) -> Option<Arm> {
        self.shard_arms[shard_bucket(census.max(1))].preference()
    }

    /// The subnet-class arm a busy-count's bucket currently prefers
    /// (`None` while bootstrapping). Diagnostics / tests.
    pub fn phase_preference(&self, busy: usize) -> Option<Arm> {
        self.subnet_arms[busy.clamp(1, SUBNET_BUCKETS) - 1].preference()
    }
}

/// Log2 census bucket for the shard class.
fn shard_bucket(census: usize) -> usize {
    debug_assert!(census >= 1);
    ((usize::BITS - 1 - census.leading_zeros()) as usize).min(SHARD_BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur_us(us: u64) -> Duration {
        Duration::from_micros(us)
    }

    #[test]
    fn static_mode_mirrors_the_historical_crossovers() {
        let mut c = DispatchController::new(false, PartitionShape::RowBands);
        let plan = c.plan_cycle(&[0, SUBNET_DISPATCH_MIN - 1, SUBNET_DISPATCH_MIN, 100]);
        assert!(plan.fanout);
        assert!(plan.bucket.is_none(), "static plans never learn");
        let d: Vec<bool> = plan.choices.iter().map(|ch| ch.dispatch).collect();
        assert_eq!(d, [false, false, true, true]);
        for ch in plan.choices.iter().filter(|ch| ch.dispatch) {
            assert_eq!(ch.min_runset, SHARD_DISPATCH_MIN);
        }
        let quiet = c.plan_cycle(&[0, 0]);
        assert!(!quiet.fanout);
        assert!(quiet.choices.iter().all(|ch| !ch.dispatch));
    }

    #[test]
    fn shard_bucket_is_log2_and_clamped() {
        assert_eq!(shard_bucket(1), 0);
        assert_eq!(shard_bucket(2), 1);
        assert_eq!(shard_bucket(3), 1);
        assert_eq!(shard_bucket(1 << 11), SHARD_BUCKETS - 1);
        assert_eq!(shard_bucket(usize::MAX), SHARD_BUCKETS - 1);
    }

    /// Runs `cycles` planned cycles against a synthetic cost model and
    /// returns how many of the last `tail` fan-out decisions picked the
    /// parallel arm.
    fn drive_phase(c: &mut DispatchController, serial_us: u64, parallel_us: u64, cycles: usize, tail: usize) -> usize {
        let censuses = [64usize, 64, 64, 64];
        let mut parallel_in_tail = 0;
        for i in 0..cycles {
            let plan = c.plan_cycle(&censuses);
            let cost = if plan.fanout { parallel_us } else { serial_us };
            if plan.fanout && i >= cycles - tail {
                parallel_in_tail += 1;
            }
            // Feed the shard class too so its bootstrap can't starve.
            let choices = plan.choices.clone();
            for ch in choices.iter().filter(|ch| ch.dispatch) {
                c.record_subnet(ch, dur_us(cost));
            }
            c.record_phase(plan, dur_us(cost));
        }
        parallel_in_tail
    }

    #[test]
    fn converges_to_the_cheaper_phase_arm_both_ways() {
        let tail = 100;
        let mut fast_parallel = DispatchController::new(true, PartitionShape::RowBands);
        let picked = drive_phase(&mut fast_parallel, 100, 10, 400, tail);
        assert!(picked >= tail - 8, "parallel cheaper but picked only {picked}/{tail}");
        assert_eq!(fast_parallel.phase_preference(4), Some(Arm::Parallel));

        let mut fast_serial = DispatchController::new(true, PartitionShape::RowBands);
        let picked = drive_phase(&mut fast_serial, 10, 100, 400, tail);
        assert!(picked <= 8, "serial cheaper but parallel picked {picked}/{tail}");
        assert_eq!(fast_serial.phase_preference(4), Some(Arm::Serial));
    }

    #[test]
    fn keeps_probing_the_non_preferred_arm() {
        let mut c = DispatchController::new(true, PartitionShape::RowBands);
        drive_phase(&mut c, 10, 100, 400, 0);
        let s = c.stats();
        assert!(s.probes > 0, "no exploration probes in 400 cycles");
        // Preferred arm is serial, yet parallel still ran occasionally
        // after bootstrap.
        assert!(s.phase_parallel > MIN_SAMPLES, "probes never played the other arm");
        assert!(s.phase_serial > s.phase_parallel);
    }

    #[test]
    fn shard_class_learns_per_bucket() {
        let mut c = DispatchController::new(true, PartitionShape::Tiles2d);
        // Small censuses: serial cheaper. Large censuses: sharded cheaper.
        for _ in 0..400 {
            let plan = c.plan_cycle(&[16, 1024]);
            let choices = plan.choices.clone();
            for (i, ch) in choices.iter().enumerate().filter(|(_, ch)| ch.dispatch) {
                let cost = match (i, ch.arm) {
                    (0, Arm::Serial) => 10,
                    (0, Arm::Parallel) => 50,
                    (_, Arm::Serial) => 200,
                    (_, Arm::Parallel) => 40,
                };
                c.record_subnet(ch, dur_us(cost));
            }
            // Phase class prefers fan-out so the shard class sees a
            // steady sample stream (not just rare probes).
            let phase_cost = if plan.fanout { 30 } else { 60 };
            c.record_phase(plan, dur_us(phase_cost));
        }
        assert_eq!(c.shard_preference(16), Some(Arm::Serial));
        assert_eq!(c.shard_preference(1024), Some(Arm::Parallel));
        let s = c.stats();
        assert!(s.subnet_serial > 0 && s.subnet_parallel > 0);
        assert_eq!(s.shape, "tiles2d");
    }

    #[test]
    fn dispatch_stats_serialize_with_pool_counters() {
        use catnap_util::json::ToJson;
        let c = DispatchController::new(true, PartitionShape::ColBands);
        let mut s = c.stats();
        s.pool_jobs_run = 7;
        let j = s.to_json();
        assert_eq!(j.get("adaptive"), Some(&catnap_util::Json::Bool(true)));
        assert_eq!(j.get("shape"), Some(&catnap_util::Json::Str("col_bands".into())));
        assert_eq!(j.get("pool_jobs_run"), Some(&catnap_util::Json::Int(7)));
    }

    #[test]
    fn force_static_env_reads_the_escape_hatch() {
        // Other tests never read the env mid-flight (it is sampled at
        // construction), and a stray static controller is scheduling-
        // only anyway; keep the mutation window tiny regardless.
        assert!(!force_static_dispatch());
        std::env::set_var(FORCE_STATIC_ENV, "1");
        assert!(force_static_dispatch());
        std::env::set_var(FORCE_STATIC_ENV, "0");
        assert!(!force_static_dispatch());
        std::env::remove_var(FORCE_STATIC_ENV);
        assert!(!force_static_dispatch());
    }
}
