//! Regional congestion status (RCS): a 1-bit OR network per region.
//!
//! Local (per-node) congestion detection can be too slow to protect
//! lower-order subnets from oversubscription: back-pressure takes many
//! cycles to propagate to the injecting node, causing latency spikes under
//! non-uniform traffic. Catnap therefore aggregates the local congestion
//! status (LCS) bits of every node in a *region* (a 4x4 sub-grid of the
//! 8x8 mesh) through a 1-bit OR network, routed as an H-tree. SPICE
//! analysis puts its propagation delay at 2.7 ns — 6 cycles at 2 GHz — so
//! nodes latch a fresh regional value every 6 cycles; each switching event
//! costs 8.7 pJ (paper Section 4.1).

use catnap_noc::{NodeId, RegionId, RegionMap};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};

/// The per-subnet OR network aggregating LCS bits into per-region RCS
/// bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrNetwork {
    regions: RegionMap,
    period: u32,
    countdown: u32,
    /// Latched RCS value per region.
    latched: Vec<bool>,
    /// Rising-edge flags from the most recent latch (consumed by the
    /// power-gating controller to wake routers).
    rose: Vec<bool>,
    /// Change flags (either edge) from the most recent latch (consumed
    /// by telemetry to emit one event per RCS flip).
    changed: Vec<bool>,
    /// Total bit-switching events (for OR-network energy accounting).
    switch_events: u64,
}

impl OrNetwork {
    /// Creates an OR network over the given region partition with the
    /// given update period in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(regions: RegionMap, period: u32) -> Self {
        assert!(period > 0, "update period must be non-zero");
        let n = regions.num_regions();
        OrNetwork {
            regions,
            period,
            countdown: period,
            latched: vec![false; n],
            rose: vec![false; n],
            changed: vec![false; n],
            switch_events: 0,
        }
    }

    /// The paper's configuration: quadrant regions, 6-cycle period.
    pub fn paper(regions: RegionMap) -> Self {
        OrNetwork::new(regions, 6)
    }

    /// The region partition.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// Latched RCS of the region containing `node`.
    pub fn rcs_at(&self, node: NodeId) -> bool {
        self.latched[self.regions.region_of(node).index()]
    }

    /// Latched RCS of a region.
    pub fn rcs_of(&self, region: RegionId) -> bool {
        self.latched[region.index()]
    }

    /// Whether any region is congested.
    pub fn any(&self) -> bool {
        self.latched.iter().any(|&b| b)
    }

    /// Regions whose RCS rose at the most recent latch.
    pub fn rising_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.rose
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| RegionId(i as u8))
    }

    /// Regions whose RCS changed (either edge) at the most recent latch.
    /// Only meaningful on a cycle where [`OrNetwork::tick`] returned
    /// `true`; the flags persist until the next latch.
    pub fn changed_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.changed
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| RegionId(i as u8))
    }

    /// Total OR-network switching events so far.
    pub fn switch_events(&self) -> u64 {
        self.switch_events
    }

    /// Advances one cycle; every `period` cycles, samples the LCS of every
    /// node via `lcs(node)` and latches new per-region values. Returns
    /// `true` when a latch happened this cycle.
    pub fn tick<F: FnMut(NodeId) -> bool>(&mut self, mut lcs: F) -> bool {
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.countdown = self.period;
        for i in 0..self.latched.len() {
            let region = RegionId(i as u8);
            let new = self.regions.nodes_in(region).any(&mut lcs);
            self.rose[i] = new && !self.latched[i];
            self.changed[i] = new != self.latched[i];
            if new != self.latched[i] {
                self.switch_events += 1;
            }
            self.latched[i] = new;
        }
        true
    }

    /// Advances `dt` cycles in closed form, equivalent to `dt` calls of
    /// [`OrNetwork::tick`] with an all-false LCS sample while every
    /// latched RCS bit is already false.
    ///
    /// Under that precondition every latch edge crossed during the skip
    /// re-latches false-from-false: no switching events, no rising or
    /// changed flags — only the countdown phase moves, so RCS latch edges
    /// never bound the fast-forward horizon. (Latched-true bits cannot
    /// occur during a skip: the multi-NoC quiescence predicate requires
    /// all LCS *and* RCS bits clear.)
    pub fn fast_forward(&mut self, dt: u64) {
        debug_assert!(
            !self.any(),
            "fast-forward with a latched RCS bit set: the next latch would be a falling edge"
        );
        let cd = u64::from(self.countdown);
        if dt >= cd {
            // At least one latch crossed; flags are overwritten to false.
            let into_period = (dt - cd) % u64::from(self.period);
            self.countdown = self.period - into_period as u32;
            self.rose.fill(false);
            self.changed.fill(false);
        } else {
            self.countdown = (cd - dt) as u32;
        }
    }

    /// Serializes the OR network's mutable state (checkpointing). The
    /// region partition and period are functions of the configuration
    /// and are reconstructed by [`OrNetwork::decode`].
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.countdown);
        for &b in &self.latched {
            w.put_bool(b);
        }
        for &b in &self.rose {
            w.put_bool(b);
        }
        for &b in &self.changed {
            w.put_bool(b);
        }
        w.put_u64(self.switch_events);
    }

    /// Rebuilds an OR network from [`OrNetwork::encode`] output over the
    /// given (configuration-derived) region partition and period.
    pub(crate) fn decode(r: &mut ByteReader<'_>, regions: RegionMap, period: u32) -> Result<Self, CodecError> {
        let mut or = OrNetwork::new(regions, period);
        or.countdown = r.get_u32()?;
        if or.countdown == 0 || or.countdown > period {
            return Err(CodecError::Invalid("RCS countdown out of phase"));
        }
        for b in or.latched.iter_mut() {
            *b = r.get_bool()?;
        }
        for b in or.rose.iter_mut() {
            *b = r.get_bool()?;
        }
        for b in or.changed.iter_mut() {
            *b = r.get_bool()?;
        }
        or.switch_events = r.get_u64()?;
        Ok(or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catnap_noc::MeshDims;

    fn quadrants() -> RegionMap {
        RegionMap::quadrants(MeshDims::new(8, 8))
    }

    #[test]
    fn latches_only_every_period() {
        let mut or = OrNetwork::paper(quadrants());
        let mut latches = 0;
        for _ in 0..30 {
            if or.tick(|_| true) {
                latches += 1;
            }
        }
        assert_eq!(latches, 5, "6-cycle period over 30 cycles");
    }

    #[test]
    fn rcs_is_or_over_region_nodes() {
        let mut or = OrNetwork::paper(quadrants());
        // Only node (0,0) congested: region 0 on, others off.
        for _ in 0..6 {
            or.tick(|n| n == NodeId(0));
        }
        assert!(or.rcs_at(NodeId(0)));
        assert!(or.rcs_at(NodeId(27)), "node (3,3) shares region 0");
        assert!(!or.rcs_at(NodeId(63)), "far quadrant unaffected");
        assert!(or.any());
    }

    #[test]
    fn update_has_latency() {
        let mut or = OrNetwork::paper(quadrants());
        // Congestion appears at cycle 0 but is only visible at the next
        // latch point.
        or.tick(|_| true);
        assert!(!or.any(), "RCS must lag by the propagation delay");
        for _ in 0..5 {
            or.tick(|_| true);
        }
        assert!(or.any());
    }

    #[test]
    fn rising_edges_reported_once() {
        let mut or = OrNetwork::new(quadrants(), 1);
        or.tick(|n| n == NodeId(0));
        let rising: Vec<RegionId> = or.rising_regions().collect();
        assert_eq!(rising, vec![RegionId(0)]);
        or.tick(|n| n == NodeId(0));
        assert_eq!(or.rising_regions().count(), 0, "no edge while level-stable");
    }

    #[test]
    fn switch_events_count_transitions() {
        let mut or = OrNetwork::new(quadrants(), 1);
        or.tick(|_| true); // 4 regions rise
        or.tick(|_| true); // stable
        or.tick(|_| false); // 4 regions fall
        assert_eq!(or.switch_events(), 8);
    }

    #[test]
    fn changed_regions_report_both_edges() {
        let mut or = OrNetwork::new(quadrants(), 1);
        or.tick(|n| n == NodeId(0));
        assert_eq!(or.changed_regions().count(), 1, "rise is a change");
        or.tick(|n| n == NodeId(0));
        assert_eq!(or.changed_regions().count(), 0, "level-stable");
        or.tick(|_| false);
        let changed: Vec<RegionId> = or.changed_regions().collect();
        assert_eq!(changed, vec![RegionId(0)], "fall is a change too");
        assert_eq!(or.rising_regions().count(), 0);
    }

    #[test]
    fn global_region_map_degenerates_to_global_detector() {
        let mut or = OrNetwork::new(RegionMap::global(MeshDims::new(8, 8)), 1);
        or.tick(|n| n == NodeId(63));
        assert!(or.rcs_at(NodeId(0)), "global region: any LCS sets everyone's RCS");
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        OrNetwork::new(quadrants(), 0);
    }

    #[test]
    fn fast_forward_matches_idle_ticks() {
        // Exercise every countdown phase against every skip length around
        // multiple periods, including dt == 0 and exact latch-edge skips.
        for phase in 0..6u64 {
            for dt in [0u64, 1, 2, 5, 6, 7, 11, 12, 13, 100] {
                let mut stepped = OrNetwork::paper(quadrants());
                for _ in 0..phase {
                    stepped.tick(|_| false);
                }
                let mut skipped = stepped.clone();
                for _ in 0..dt {
                    stepped.tick(|_| false);
                }
                skipped.fast_forward(dt);
                assert_eq!(skipped, stepped, "divergence at phase {phase}, dt {dt}");
            }
        }
    }

    #[test]
    fn fast_forward_clears_stale_edge_flags() {
        let mut or = OrNetwork::new(quadrants(), 1);
        or.tick(|n| n == NodeId(0));
        or.tick(|_| false); // falling edge: changed flag set, latched clear
        assert_eq!(or.changed_regions().count(), 1);
        let mut stepped = or.clone();
        stepped.tick(|_| false);
        or.fast_forward(1);
        assert_eq!(or, stepped);
        assert_eq!(or.changed_regions().count(), 0, "crossed latch overwrites stale flags");
    }
}
