//! The Catnap Multi-NoC: K subnet networks behind shared per-node NIs,
//! driven by the subnet-selection, congestion-detection and power-gating
//! policies.

use crate::config::{MultiNocConfig, RegionMode, SelectorKind};
use crate::congestion::{CongestionMetric, LocalDetector, NodeSignals};
use crate::dispatch::{force_static_dispatch, CyclePlan, DispatchController, DispatchStats};
use crate::ni::NodeNi;
use crate::rcs::OrNetwork;
use crate::select::{congestion_mask, CatnapPriority, RandomSelect, RoundRobin, SubnetSelector};
use catnap_noc::checkpoint::{get_flit, put_flit};
use catnap_noc::quiescence::{Quiescence, QuiescenceTracker};
use catnap_noc::stats::{GatingActivity, RouterActivity};
use catnap_noc::{Flit, MeshDims, Network, NodeId, PacketDescriptor, PartitionShape, RegionMap};
use catnap_telemetry::{Event, NopSink, Sink, SinkScope, Trace, TraceMeta};
use catnap_traffic::generator::{PacketSink, TrafficSource};
use catnap_util::codec::{ByteReader, ByteWriter, CodecError};
use catnap_util::pool::{effective_parallelism, ThreadPool};
use std::sync::Arc;
use std::time::Instant;

/// A multiple network-on-chip with Catnap policies.
///
/// Drive it by submitting packets — it implements
/// [`catnap_traffic::generator::PacketSink`] — and calling
/// [`MultiNoc::step`] once per cycle; read results via
/// [`MultiNoc::snapshot`] / [`MultiNoc::finish`].
///
/// Like [`Network`], the design is generic over a telemetry [`Sink`]
/// (default [`NopSink`], compiled to nothing). [`MultiNoc::with_sinks`]
/// attaches one sink per [`SinkScope`] — the serial policy layer plus
/// one per subnet, so per-subnet streams stay thread-local while the
/// subnets step on the pool — and [`MultiNoc::take_trace`] merges them
/// into a [`Trace`] for the exporters.
pub struct MultiNoc<S: Sink = NopSink> {
    cfg: MultiNocConfig,
    subnets: Vec<Network<S>>,
    nis: Vec<NodeNi>,
    detectors: Vec<Vec<LocalDetector>>,
    lcs: Vec<Vec<bool>>,
    or_nets: Vec<OrNetwork>,
    selector: Box<dyn SubnetSelector + Send>,
    cycle: u64,
    generated_packets: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    latency_sum: u64,
    latency_max: u64,
    ejected_flits_per_subnet: Vec<u64>,
    injected_flits_per_subnet: Vec<u64>,
    delivered_tails: Vec<catnap_noc::Flit>,
    track_deliveries: bool,
    /// Cycles each node's NI-queue head has waited behind a busy slot.
    head_wait: Vec<u32>,
    /// Whether each NI is on the busy worklist (`busy_nis`).
    ni_busy: Vec<bool>,
    /// Indices of NIs with pending work, kept sorted ascending so the
    /// per-NI phase visits them in node order (the subnet selector draws
    /// from one RNG in visit order, so order is load-bearing). An NI
    /// joins at `submit` and leaves at the end of a cycle that observes
    /// it idle — the exact condition under which its per-cycle body is a
    /// no-op. Ignored under forced full stepping (the canonical
    /// all-nodes scan runs instead).
    busy_nis: Vec<u32>,
    /// Per-subnet count of set local-congestion bits (`lcs[s]`), so the
    /// detector and OR-network elisions can test "all clear" in O(1).
    lcs_set: Vec<usize>,
    /// Pool stepping the subnets (and their spatial shards) in
    /// parallel; `None` = strictly serial. Shared across instances when
    /// built via [`MultiNoc::with_shared_pool`].
    pool: Option<Arc<ThreadPool>>,
    /// Spatial shards per subnet mesh when a busy subnet steps on the
    /// pool (resolved from `shard_threads`, defaulting to the lane
    /// count). Purely a scheduling knob — bit-identical at any value.
    shards: usize,
    /// The adaptive (or pinned-static) dispatch controller deciding,
    /// each cycle, whether busy subnets fan out to the pool and whether
    /// pooled subnets shard their phase 2. Runtime scratch: never
    /// serialized, never fingerprinted.
    dispatch: DispatchController,
    /// Last cycle's plan and phase start, settled into the controller at
    /// the *next* cycle's planning point. Attributing the full
    /// cycle-to-cycle wall time (rather than just the phase) charges
    /// costs a fan-out defers past the phase itself — worker wake-ups
    /// and the context-switch pressure they put on an oversubscribed
    /// host — to the arm that caused them; the arm-independent work in
    /// between (drive, NIs, policy) lands on both arms equally, so the
    /// comparison is unbiased.
    pending_phase: Option<(CyclePlan, Instant)>,
    /// Reusable per-subnet busy-router census handed to the controller.
    census_buf: Vec<usize>,
    /// Reusable buffer for per-subnet ejection drains (no per-cycle
    /// allocation).
    eject_buf: Vec<(NodeId, Flit)>,
    /// Reusable per-subnet congestion mask handed to the selector.
    congested_buf: Vec<bool>,
    /// Per-subnet quiescence trackers driving `step_until`'s multi-cycle
    /// fast-forward.
    trackers: Vec<QuiescenceTracker>,
    /// When true, `step_until` never fast-forwards (the audited
    /// cycle-by-cycle escape hatch, see
    /// [`MultiNoc::set_force_full_step`]).
    force_full: bool,
    /// Fast-forward invocations so far.
    skips: u64,
    /// Cycles covered by fast-forwards (also counted in `cycle`).
    skipped_cycles: u64,
    /// Sink for policy-layer events (selection, congestion flips,
    /// packet lifecycle); the subnets carry their own.
    policy_sink: S,
}

impl MultiNoc {
    /// Builds a Multi-NoC from a validated configuration, without
    /// telemetry (the [`NopSink`] monomorphization).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MultiNocConfig) -> Self {
        MultiNoc::with_sinks(cfg, |_| NopSink)
    }

    /// Builds a Multi-NoC stepping on a caller-provided pool instead of
    /// spawning its own — lets a sweep share one set of worker threads
    /// across many short-lived instances. The pool is the parallelism
    /// authority here: `step_threads` is ignored (a serial pool means
    /// the plain serial loop). Results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_shared_pool(cfg: MultiNocConfig, pool: Arc<ThreadPool>) -> Self {
        MultiNoc::with_sinks_on(cfg, |_| NopSink, Some(pool))
    }
}

impl<S: Sink> MultiNoc<S> {
    /// Builds a Multi-NoC with one telemetry sink per scope: the factory
    /// is called once with [`SinkScope::Policy`] and once per subnet
    /// with [`SinkScope::Subnet`]. Separate instances keep each event
    /// stream thread-local while subnets step in parallel; collect them
    /// merged via [`MultiNoc::take_trace`].
    ///
    /// Telemetry is observation-only: runs are bit-identical with any
    /// sink (the determinism suite asserts this against the goldens).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_sinks(cfg: MultiNocConfig, sinks: impl FnMut(SinkScope) -> S) -> Self {
        Self::with_sinks_on(cfg, sinks, None)
    }

    /// [`MultiNoc::with_sinks`] with an optional caller-provided pool
    /// (see [`MultiNoc::with_shared_pool`]).
    pub fn with_sinks_on(
        cfg: MultiNocConfig,
        mut sinks: impl FnMut(SinkScope) -> S,
        shared_pool: Option<Arc<ThreadPool>>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MultiNoc configuration: {e}");
        }
        let k = cfg.subnets;
        let nodes = cfg.dims.num_nodes();
        let subnets: Vec<Network<S>> = (0..k)
            .map(|s| Network::with_sink(cfg.subnet_config(), sinks(SinkScope::Subnet(s))))
            .collect();
        let nis = cfg
            .dims
            .nodes()
            .map(|n| NodeNi::new(n, k, cfg.subnet_width_bits, cfg.ni_queue_flits))
            .collect();
        let region_map = match cfg.region_mode {
            RegionMode::Quadrants => RegionMap::quadrants(cfg.dims),
            RegionMode::Global => RegionMap::global(cfg.dims),
            RegionMode::PerNode => RegionMap::per_node(cfg.dims),
        };
        let or_nets = (0..k).map(|_| OrNetwork::new(region_map.clone(), cfg.rcs_period)).collect();
        let selector: Box<dyn SubnetSelector + Send> = match cfg.selector {
            SelectorKind::RoundRobin => Box::new(RoundRobin::new(nodes)),
            SelectorKind::Random => Box::new(RandomSelect::new(cfg.seed)),
            SelectorKind::CatnapPriority => Box::new(CatnapPriority::new(nodes)),
        };
        // Subnets only interact through the NIs between steps, so they
        // can advance concurrently with bit-identical results; within a
        // busy subnet, phase 2 additionally splits into spatial shards
        // on the same pool (`Network::step_sharded`). One lane
        // (explicit `step_threads(1)`, CATNAP_THREADS=1, a single-core
        // machine) means no pool at all: the plain serial loop. Lanes
        // beyond the subnet count are useful now that shards also feed
        // the pool, so auto sizing caps at `subnets x rows` (the
        // finest spatial split) rather than at the subnet count, and an
        // explicit `step_threads` is honored verbatim.
        let max_useful = k * usize::from(cfg.dims.rows.max(1));
        let pool = match shared_pool {
            Some(p) if p.parallelism() > 1 => Some(p),
            Some(_) => None,
            None => {
                let lanes = cfg.step_threads.unwrap_or_else(|| effective_parallelism(max_useful));
                (lanes > 1).then(|| Arc::new(ThreadPool::new(lanes)))
            }
        };
        let shards = cfg
            .shard_threads
            .unwrap_or_else(|| pool.as_ref().map_or(1, |p| p.parallelism()))
            .max(1);
        // The dispatch controller self-tunes the subnet/shard fan-out
        // crossovers unless pinned off (config or the
        // CATNAP_FORCE_STATIC_DISPATCH escape hatch). Without a pool
        // there is nothing to decide. Scheduling-only: bit-identical in
        // every mode, so none of this is fingerprinted or serialized.
        let adaptive = pool.is_some() && cfg.adaptive_dispatch.unwrap_or(true) && !force_static_dispatch();
        let shape = cfg.partition_shape.unwrap_or_else(|| PartitionShape::pick(cfg.dims, shards));
        let dispatch = DispatchController::new(adaptive, shape);
        MultiNoc {
            subnets,
            nis,
            detectors: vec![vec![LocalDetector::default(); nodes]; k],
            lcs: vec![vec![false; nodes]; k],
            or_nets,
            selector,
            cycle: 0,
            generated_packets: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            latency_sum: 0,
            latency_max: 0,
            ejected_flits_per_subnet: vec![0; k],
            injected_flits_per_subnet: vec![0; k],
            delivered_tails: Vec::new(),
            track_deliveries: false,
            head_wait: vec![0; nodes],
            ni_busy: vec![false; nodes],
            busy_nis: Vec::new(),
            lcs_set: vec![0; k],
            pool,
            shards,
            dispatch,
            pending_phase: None,
            census_buf: Vec::with_capacity(k),
            eject_buf: Vec::new(),
            congested_buf: Vec::with_capacity(k),
            trackers: vec![QuiescenceTracker::new(); k],
            force_full: false,
            skips: 0,
            skipped_cycles: 0,
            policy_sink: sinks(SinkScope::Policy),
            cfg,
        }
    }

    /// Collects everything recorded so far into a [`Trace`], leaving the
    /// sinks empty. The meta block captures the run parameters the
    /// exporters need (mesh shape, subnet count, cycles simulated).
    pub fn take_trace(&mut self) -> Trace {
        let meta = TraceMeta {
            name: self.cfg.name.clone(),
            cols: self.cfg.dims.cols,
            rows: self.cfg.dims.rows,
            subnets: self.cfg.subnets,
            cycles: self.cycle,
            selector: self.selector.name().to_string(),
            gating: self.cfg.gating_policy.name().to_string(),
        };
        Trace {
            meta,
            policy: self.policy_sink.drain(),
            subnets: self.subnets.iter_mut().map(|n| n.take_events()).collect(),
        }
    }

    /// Lanes used to step the subnets (1 = serial).
    pub fn step_parallelism(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.parallelism())
    }

    /// What the dispatch controller decided so far, merged with the
    /// stepping pool's lane counters. Diagnostics only — never
    /// serialized. Note that a pool shared via
    /// [`MultiNoc::with_shared_pool`] accumulates counters across every
    /// instance using it.
    pub fn dispatch_stats(&self) -> DispatchStats {
        let mut s = self.dispatch.stats();
        if let Some(pool) = &self.pool {
            let p = pool.stats();
            s.pool_jobs_run = p.jobs_run;
            s.pool_steals = p.steals;
            s.pool_failed_steals = p.failed_steals;
            s.pool_injector_pops = p.injector_pops;
            s.pool_lane_pops = p.lane_pops;
            s.pool_park_waits = p.park_waits;
        }
        s
    }

    /// Disables (or re-enables) *every* cycle-skipping shortcut: the
    /// drained-router fast path in each subnet (see
    /// [`Network::set_force_full_step`]) **and** the multi-cycle
    /// fast-forward of [`MultiNoc::step_until`]. One switch is the single
    /// audited escape hatch — forcing full stepping must leave no skip
    /// machinery engaged anywhere. Results are bit-identical either way.
    pub fn set_force_full_step(&mut self, force: bool) {
        self.force_full = force;
        for net in &mut self.subnets {
            net.set_force_full_step(force);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiNocConfig {
        &self.cfg
    }

    /// Mesh dimensions.
    pub fn dims(&self) -> MeshDims {
        self.cfg.dims
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of subnets.
    pub fn num_subnets(&self) -> usize {
        self.cfg.subnets
    }

    /// Read access to one subnet network.
    pub fn subnet(&self, s: usize) -> &Network<S> {
        &self.subnets[s]
    }

    /// The node's current congestion view of subnet `s`: local status OR
    /// (if enabled) regional status — exactly what the NI consults before
    /// injecting (Section 3.2.1).
    pub fn congestion_view(&self, s: usize, node: NodeId) -> bool {
        self.lcs[s][node.index()] || (self.cfg.use_rcs && self.or_nets[s].rcs_at(node))
    }

    /// Latched regional congestion status of subnet `s` at `node`.
    pub fn rcs(&self, s: usize, node: NodeId) -> bool {
        self.or_nets[s].rcs_at(node)
    }

    /// One NI's per-cycle body: refill, subnet assignment, injection.
    /// For an idle NI (empty queues, no in-flight slot, zero head wait)
    /// this is an exact no-op — which is what lets the busy worklist
    /// skip idle NIs without perturbing anything.
    fn ni_cycle(&mut self, idx: usize) {
        let k = self.cfg.subnets;
        let node = NodeId(idx as u16);
        self.nis[idx].refill();
        if self.nis[idx].head_waiting() {
            // A subnet is unattractive if it looks congested (local or
            // regional status), or — under the NI spill rule — if its
            // injection slot has been busy for too long while this
            // head waited (injection-bandwidth congestion that router
            // buffers cannot reveal).
            let spill = self.cfg.spill_wait_cycles;
            let stuck = spill > 0 && self.head_wait[idx] >= spill;
            self.congested_buf.clear();
            for s in 0..k {
                let c = self.congestion_view(s, node) || (stuck && !self.nis[idx].slot_free(s));
                self.congested_buf.push(c);
            }
            let s = self.selector.select(idx, &self.congested_buf);
            if self.nis[idx].slot_free(s) {
                if S::ENABLED {
                    self.policy_sink.record(Event::Select {
                        cycle: self.cycle,
                        node: idx as u16,
                        subnet: s as u8,
                        congested_mask: congestion_mask(&self.congested_buf),
                    });
                    if let Some(desc) = self.nis[idx].head_packet() {
                        self.policy_sink.record(Event::PacketInject {
                            cycle: self.cycle,
                            id: desc.id.0,
                            subnet: s as u8,
                            src: desc.src.0,
                            dst: desc.dst.0,
                        });
                    }
                }
                self.nis[idx].start_head_packet(s);
                self.head_wait[idx] = 0;
            } else {
                self.head_wait[idx] = self.head_wait[idx].saturating_add(1);
            }
        } else {
            self.head_wait[idx] = 0;
        }
        for s in 0..k {
            self.nis[idx].inject_into(s, &mut self.subnets[s]);
        }
    }

    /// Whether this cycle's detector sweep over subnet `s` is a provable
    /// no-op that may be skipped. Holds only for the memoryless
    /// hysteresis metrics observing an all-zero sample against an
    /// all-clear status vector — and only with a non-degenerate set
    /// threshold (a `set` of zero would latch congestion on a zero
    /// sample). The windowed metrics (InjectionRate, Delay) mutate their
    /// window position every cycle and are never skipped.
    fn detector_sweep_elidable(&self, s: usize) -> bool {
        if self.force_full || self.lcs_set[s] != 0 {
            return false;
        }
        match self.cfg.metric {
            // Zero buffer occupancy everywhere: guaranteed by every
            // router of the subnet being drained (flits still on links
            // are invisible to port occupancy until delivered).
            CongestionMetric::Bfm { set, .. } => set > 0 && self.subnets[s].all_drained(),
            CongestionMetric::Bfa { set, .. } => set > 0.0 && self.subnets[s].all_drained(),
            // Zero NI-queue occupancy everywhere: guaranteed by an empty
            // busy worklist (every NI idle).
            CongestionMetric::IqOcc { set, .. } => set > 0 && self.busy_nis.is_empty(),
            CongestionMetric::InjectionRate { .. } | CongestionMetric::Delay { .. } => false,
        }
    }

    /// Advances the whole design by one cycle.
    pub fn step(&mut self) {
        let k = self.cfg.subnets;

        // --- Network interfaces: refill, subnet assignment, injection ---
        if self.force_full {
            for idx in 0..self.nis.len() {
                self.ni_cycle(idx);
            }
        } else {
            // Only NIs with pending work; their per-cycle body is the
            // identity for the rest. Worklist drops happen at the end of
            // the cycle (after injection counters are consumed).
            let list = std::mem::take(&mut self.busy_nis);
            for &idxu in &list {
                self.ni_cycle(idxu as usize);
            }
            self.busy_nis = list;
        }

        // --- Power-gating policy ---
        self.cfg
            .gating_policy
            .apply(self.cfg.dims, &mut self.subnets, &self.or_nets, &self.nis);

        // --- Step every subnet ---
        // Each `Network::step` is self-contained (no cross-subnet state,
        // no RNG), so stepping the K subnets on the pool is bit-identical
        // to the serial loop; all cross-subnet coupling (NIs, policies,
        // detectors, OR networks) happens serially around this point.
        match &self.pool {
            Some(pool) => {
                // Crossover dispatch, planned by the controller: it
                // decides whether the cycle's busy subnets fan out to
                // the pool at all, and — per pooled subnet — whether
                // phase 2 engages the spatial shard sweep. Idle subnets
                // always step inline (a pool hand-off costs more than
                // the step itself). All arms are bit-identical, so the
                // plan is pure scheduling; the wall times fed back only
                // steer future plans.
                let shards = self.shards;
                let pool_ref: &ThreadPool = pool;
                // Settle last cycle's sample first: recording recycles
                // the plan's allocation for `plan_cycle` below.
                if let Some((prev, started)) = self.pending_phase.take() {
                    self.dispatch.record_phase(prev, started.elapsed());
                }
                self.census_buf.clear();
                self.census_buf.extend(self.subnets.iter().map(|net| net.busy_routers()));
                let plan = self.dispatch.plan_cycle(&self.census_buf);
                let shape = self.dispatch.shape();
                let phase_start = Instant::now();
                if plan.fanout {
                    let choices = &plan.choices[..];
                    let jobs: Vec<_> = self
                        .subnets
                        .iter_mut()
                        .enumerate()
                        .filter_map(|(i, net)| {
                            let ch = choices[i];
                            if ch.dispatch {
                                Some(move || {
                                    let job_start = Instant::now();
                                    net.step_sharded_opts(pool_ref, shards, shape, ch.min_runset);
                                    (i, job_start.elapsed())
                                })
                            } else {
                                net.step();
                                None
                            }
                        })
                        .collect();
                    if !jobs.is_empty() {
                        for (i, elapsed) in pool_ref.run(jobs) {
                            self.dispatch.record_subnet(&choices[i], elapsed);
                        }
                    }
                } else {
                    for net in &mut self.subnets {
                        net.step();
                    }
                }
                self.pending_phase = Some((plan, phase_start));
            }
            None => {
                for net in &mut self.subnets {
                    net.step();
                }
            }
        }
        self.cycle = self.subnets[0].cycle();

        // --- Ejection and latency accounting ---
        for s in 0..k {
            self.eject_buf.clear();
            self.subnets[s].drain_ejected_into(&mut self.eject_buf);
            for &(node, flit) in &self.eject_buf {
                self.ejected_flits_per_subnet[s] += 1;
                self.delivered_flits += 1;
                if flit.kind.is_tail() {
                    self.delivered_packets += 1;
                    let lat = self.cycle.saturating_sub(flit.created_cycle);
                    self.latency_sum += lat;
                    self.latency_max = self.latency_max.max(lat);
                    if S::ENABLED {
                        self.policy_sink.record(Event::PacketEject {
                            cycle: self.cycle,
                            id: flit.packet.0,
                            subnet: s as u8,
                            dst: node.0,
                            latency: lat.min(u64::from(u32::MAX)) as u32,
                        });
                    }
                    if self.track_deliveries {
                        self.delivered_tails.push(flit);
                    }
                }
            }
        }

        // --- Local congestion detection (post-step state) ---
        for s in 0..k {
            if self.detector_sweep_elidable(s) {
                continue;
            }
            for idx in 0..self.nis.len() {
                let node = NodeId(idx as u16);
                let signals = NodeSignals {
                    ni_queue_flits: self.nis[idx].ni_queue_occupancy_flits(),
                    injected_flits_this_cycle: self.nis[idx].injected_flits_this_cycle[s],
                };
                let det = &mut self.detectors[s][idx];
                det.update(&self.cfg.metric, self.subnets[s].router(node), &signals);
                let now = det.is_congested();
                if now != self.lcs[s][idx] {
                    if now {
                        self.lcs_set[s] += 1;
                    } else {
                        self.lcs_set[s] -= 1;
                    }
                    if S::ENABLED {
                        self.policy_sink.record(Event::Lcs {
                            cycle: self.cycle,
                            subnet: s as u8,
                            node: idx as u16,
                            on: now,
                        });
                    }
                }
                self.lcs[s][idx] = now;
            }
        }
        if self.force_full {
            for ni in self.nis.iter_mut() {
                for (s, &flits) in ni.injected_flits_this_cycle.iter().enumerate() {
                    self.injected_flits_per_subnet[s] += u64::from(flits);
                }
                ni.end_cycle();
            }
        } else {
            // Only busy NIs can have injected this cycle; this is also
            // where NIs observed idle leave the worklist (after their
            // counters were consumed by the detectors above).
            let mut list = std::mem::take(&mut self.busy_nis);
            list.retain(|&idxu| {
                let ni = &mut self.nis[idxu as usize];
                for (s, &flits) in ni.injected_flits_this_cycle.iter().enumerate() {
                    self.injected_flits_per_subnet[s] += u64::from(flits);
                }
                ni.end_cycle();
                let keep = !ni.is_idle();
                if !keep {
                    self.ni_busy[idxu as usize] = false;
                }
                keep
            });
            self.busy_nis = list;
        }

        // --- Regional OR networks ---
        for s in 0..k {
            let lcs = &self.lcs[s];
            if !self.force_full && self.lcs_set[s] == 0 && !self.or_nets[s].any() {
                // All-false sample into an all-clear network: a latch (if
                // one falls here) observes no set bit and reports no
                // change, so only the countdown moves — which the
                // one-cycle closed form reproduces exactly.
                self.or_nets[s].fast_forward(1);
                continue;
            }
            let latched = self.or_nets[s].tick(|n| lcs[n.index()]);
            if S::ENABLED && latched {
                for region in self.or_nets[s].changed_regions() {
                    self.policy_sink.record(Event::Rcs {
                        cycle: self.cycle,
                        subnet: s as u8,
                        region: region.0,
                        on: self.or_nets[s].rcs_of(region),
                    });
                }
            }
        }
    }

    /// Drives the whole system to `target_cycle` with `source`, skipping
    /// quiescent stretches in closed form.
    ///
    /// Bit-identical to the canonical per-cycle loop
    /// `while cycle < target { source.drive(net); net.step(); }`: every
    /// cycle with any activity — flits in flight, power-state countdowns
    /// about to expire, gate-ripe routers, congestion windows carrying
    /// history, packet arrivals — is stepped normally; only stretches
    /// where *every* intervening cycle is a provable no-op are replaced
    /// by one [`MultiNoc::fast_forward`]. The skip horizon is the
    /// minimum over the per-subnet [`QuiescenceTracker`] horizons, the
    /// per-node congestion-detector bounds, and the traffic source's
    /// [`TrafficSource::next_arrival_cycle`].
    ///
    /// [`MultiNoc::set_force_full_step`] disables the fast-forward
    /// entirely (the audited baseline for equivalence checks).
    pub fn step_until<T: TrafficSource>(&mut self, source: &mut T, target_cycle: u64) {
        while self.cycle < target_cycle {
            source.drive(self);
            if !self.force_full {
                let horizon = self.assess_skip();
                if horizon >= 2 {
                    let next_arrival = source.next_arrival_cycle(self.cycle + 1, target_cycle);
                    let dt = horizon.min(next_arrival - self.cycle);
                    // Landing exactly on the arrival cycle is fine: its
                    // drive() runs at the top of the next iteration,
                    // before anything else observes the cycle.
                    if dt >= 2 {
                        self.fast_forward(dt);
                        continue;
                    }
                }
            }
            self.step();
        }
    }

    /// Whether the whole system is quiescent: no packet queued or in
    /// flight anywhere, and every congestion status bit (local and
    /// latched regional) clear. In this state a cycle can only change
    /// power-state counters.
    pub fn is_quiescent(&self) -> bool {
        self.packets_outstanding() == 0
            && self.lcs_set.iter().all(|&c| c == 0)
            && self.or_nets.iter().all(|or| !or.any())
    }

    /// How many cycles may be fast-forwarded from the current state: 0
    /// when anything is busy, else the minimum over subnet horizons and
    /// detector window bounds (arrival times are the caller's concern).
    fn assess_skip(&mut self) -> u64 {
        if !self.is_quiescent() {
            return 0;
        }
        debug_assert!(
            self.nis.iter().all(NodeNi::is_idle),
            "no outstanding packets but an NI is busy"
        );
        debug_assert!(
            self.head_wait.iter().all(|&w| w == 0),
            "quiescent NIs cannot have waiting heads"
        );
        let mut dt = u64::MAX;
        for s in 0..self.cfg.subnets {
            let may_sleep = self.cfg.gating_policy.subnet_gateable(s);
            match self.trackers[s].assess(&self.subnets[s], may_sleep) {
                Quiescence::Busy => return 0,
                Quiescence::QuietFor(h) => dt = dt.min(h),
            }
            if dt == 0 {
                return 0;
            }
            for idx in 0..self.nis.len() {
                let router = self.subnets[s].router(NodeId(idx as u16));
                dt = dt.min(self.detectors[s][idx].skip_bound(&self.cfg.metric, router));
                if dt == 0 {
                    return 0;
                }
            }
        }
        dt
    }

    /// Advances the whole system `dt` cycles in closed form — O(routers)
    /// arithmetic instead of `dt` full steps. Callers must have
    /// established that the skip is safe (see
    /// [`MultiNoc::step_until`]); debug builds verify the precondition
    /// and, for skips up to [`catnap_noc::SHADOW_REPLAY_MAX`] cycles,
    /// shadow-replay the detectors and OR networks cycle-by-cycle and
    /// compare.
    pub fn fast_forward(&mut self, dt: u64) {
        if dt == 0 {
            return;
        }
        debug_assert!(self.is_quiescent(), "fast-forward of a non-quiescent system");
        #[cfg(debug_assertions)]
        let shadow = (dt <= catnap_noc::SHADOW_REPLAY_MAX).then(|| (self.detectors.clone(), self.or_nets.clone()));
        for net in &mut self.subnets {
            net.fast_forward(dt);
        }
        self.cycle = self.subnets[0].cycle();
        for s in 0..self.cfg.subnets {
            for det in &mut self.detectors[s] {
                det.fast_forward(&self.cfg.metric, dt);
            }
            self.or_nets[s].fast_forward(dt);
        }
        self.skips += 1;
        self.skipped_cycles += dt;
        #[cfg(debug_assertions)]
        if let Some((mut dets, mut ors)) = shadow {
            // Idle routers are static in everything a detector reads
            // (occupancy, cumulative activity), so replaying against the
            // post-skip router observes the same values every cycle.
            for s in 0..self.cfg.subnets {
                for (idx, det) in dets[s].iter_mut().enumerate() {
                    let router = self.subnets[s].router(NodeId(idx as u16));
                    for _ in 0..dt {
                        det.update(&self.cfg.metric, router, &NodeSignals::default());
                    }
                }
                for _ in 0..dt {
                    ors[s].tick(|_| false);
                }
            }
            debug_assert_eq!(
                dets, self.detectors,
                "detector closed form diverged from per-cycle replay"
            );
            debug_assert_eq!(
                ors, self.or_nets,
                "OR-network closed form diverged from per-cycle replay"
            );
        }
    }

    /// Fast-forward effectiveness counters (all zero unless
    /// [`MultiNoc::step_until`] skipped something).
    pub fn skip_stats(&self) -> SkipStats {
        SkipStats {
            skips: self.skips,
            skipped_cycles: self.skipped_cycles,
            assessments: self.trackers.iter().map(QuiescenceTracker::assessments).sum(),
            quiescent_assessments: self.trackers.iter().map(QuiescenceTracker::quiescent_hits).sum(),
        }
    }

    /// Enables per-packet delivery tracking (off by default so open-loop
    /// runs don't accumulate an unbounded buffer).
    pub fn set_track_deliveries(&mut self, on: bool) {
        self.track_deliveries = on;
    }

    /// Drains the tail flits of packets delivered since the last call
    /// (the closed-loop multicore substrate uses these to advance
    /// coherence transactions). Requires
    /// [`MultiNoc::set_track_deliveries`] to have been enabled.
    pub fn drain_delivered(&mut self) -> Vec<catnap_noc::Flit> {
        std::mem::take(&mut self.delivered_tails)
    }

    /// Cumulative counters at this instant (diff two snapshots for
    /// windowed measurements).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycle: self.cycle,
            generated_packets: self.generated_packets,
            delivered_packets: self.delivered_packets,
            delivered_flits: self.delivered_flits,
            latency_sum: self.latency_sum,
            ejected_flits_per_subnet: self.ejected_flits_per_subnet.clone(),
            injected_flits_per_subnet: self.injected_flits_per_subnet.clone(),
            activity_per_subnet: self.subnets.iter().map(|n| n.total_activity()).collect(),
            gating_per_subnet: self.subnets.iter().map(|n| n.total_gating()).collect(),
            or_switch_events: self.or_nets.iter().map(OrNetwork::switch_events).sum(),
        }
    }

    /// Number of packets still queued or in flight.
    pub fn packets_outstanding(&self) -> u64 {
        self.generated_packets - self.delivered_packets
    }

    /// Routers currently active / sleeping / waking, summed over subnets.
    pub fn power_state_census(&self) -> (usize, usize, usize) {
        self.subnets
            .iter()
            .map(|n| n.power_state_census())
            .fold((0, 0, 0), |(a, s, w), (a2, s2, w2)| (a + a2, s + s2, w + w2))
    }

    /// Serializes the complete simulation state (checkpointing). Must be
    /// called at a cycle edge — after a [`MultiNoc::step`], before the
    /// next cycle's traffic drive. The configuration itself is not part
    /// of the stream; [`MultiNoc::load_state`] overlays onto a fresh
    /// instance of the *same* configuration (the public checkpoint
    /// container in [`crate::checkpoint`] guards that with a
    /// fingerprint). Telemetry sinks are not captured: a resumed
    /// recording sink starts empty and its suffix matches a
    /// straight-through run's suffix bit for bit.
    pub(crate) fn save_state(&mut self, w: &mut ByteWriter) {
        let k = self.cfg.subnets;
        w.put_u64(self.cycle);
        w.put_u64(self.generated_packets);
        w.put_u64(self.delivered_packets);
        w.put_u64(self.delivered_flits);
        w.put_u64(self.latency_sum);
        w.put_u64(self.latency_max);
        for s in 0..k {
            w.put_u64(self.ejected_flits_per_subnet[s]);
            w.put_u64(self.injected_flits_per_subnet[s]);
        }
        w.put_bool(self.track_deliveries);
        w.put_usize(self.delivered_tails.len());
        for f in &self.delivered_tails {
            put_flit(w, f);
        }
        for &hw in &self.head_wait {
            w.put_u32(hw);
        }
        w.put_usize(self.busy_nis.len());
        for &idx in &self.busy_nis {
            w.put_u32(idx);
        }
        for s in 0..k {
            for &b in &self.lcs[s] {
                w.put_bool(b);
            }
            for det in &self.detectors[s] {
                det.encode(w);
            }
            self.or_nets[s].encode(w);
            w.put_u64(self.trackers[s].assessments());
            w.put_u64(self.trackers[s].quiescent_hits());
        }
        self.selector.encode_state(w);
        w.put_bool(self.force_full);
        w.put_u64(self.skips);
        w.put_u64(self.skipped_cycles);
        for net in &mut self.subnets {
            net.save_state(w);
        }
        for ni in &self.nis {
            ni.encode(w);
        }
    }

    /// Overlays serialized state from [`MultiNoc::save_state`] onto this
    /// freshly-built instance (same configuration). Derived structures —
    /// the per-subnet set-bit censuses, the busy-NI membership flags, the
    /// thread pool, scratch buffers — are recomputed, never deserialized.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated or inconsistent stream; the
    /// instance must then be discarded.
    pub(crate) fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let k = self.cfg.subnets;
        let nodes = self.cfg.dims.num_nodes();
        // An unsettled phase sample would span the whole load — drop it
        // rather than feed the controller a nonsense cost.
        self.pending_phase = None;
        self.cycle = r.get_u64()?;
        self.generated_packets = r.get_u64()?;
        self.delivered_packets = r.get_u64()?;
        self.delivered_flits = r.get_u64()?;
        self.latency_sum = r.get_u64()?;
        self.latency_max = r.get_u64()?;
        for s in 0..k {
            self.ejected_flits_per_subnet[s] = r.get_u64()?;
            self.injected_flits_per_subnet[s] = r.get_u64()?;
        }
        self.track_deliveries = r.get_bool()?;
        let tails = r.get_usize()?;
        if tails > 1 << 24 {
            return Err(CodecError::Invalid("delivery buffer implausibly large"));
        }
        self.delivered_tails.clear();
        for _ in 0..tails {
            self.delivered_tails.push(get_flit(r)?);
        }
        for hw in self.head_wait.iter_mut() {
            *hw = r.get_u32()?;
        }
        let busy = r.get_usize()?;
        if busy > nodes {
            return Err(CodecError::Invalid("busy worklist larger than the mesh"));
        }
        self.busy_nis.clear();
        self.ni_busy = vec![false; nodes];
        for _ in 0..busy {
            let idx = r.get_u32()?;
            if idx as usize >= nodes {
                return Err(CodecError::Invalid("busy NI index out of range"));
            }
            if self.busy_nis.last().is_some_and(|&prev| prev >= idx) {
                return Err(CodecError::Invalid("busy worklist not sorted"));
            }
            self.busy_nis.push(idx);
            self.ni_busy[idx as usize] = true;
        }
        for s in 0..k {
            self.lcs_set[s] = 0;
            for idx in 0..nodes {
                let on = r.get_bool()?;
                self.lcs[s][idx] = on;
                if on {
                    self.lcs_set[s] += 1;
                }
            }
            for det in self.detectors[s].iter_mut() {
                *det = LocalDetector::decode(r)?;
            }
            self.or_nets[s] = OrNetwork::decode(r, self.or_nets[s].regions().clone(), self.cfg.rcs_period)?;
            let assessments = r.get_u64()?;
            let hits = r.get_u64()?;
            if hits > assessments {
                return Err(CodecError::Invalid("quiescence counters inconsistent"));
            }
            self.trackers[s] = QuiescenceTracker::from_counters(assessments, hits);
        }
        self.selector.decode_state(r)?;
        self.force_full = r.get_bool()?;
        self.skips = r.get_u64()?;
        self.skipped_cycles = r.get_u64()?;
        for net in self.subnets.iter_mut() {
            net.load_state(r)?;
        }
        for idx in 0..nodes {
            self.nis[idx] = crate::ni::NodeNi::decode(
                r,
                NodeId(idx as u16),
                k,
                self.cfg.subnet_width_bits,
                self.cfg.ni_queue_flits,
            )?;
        }
        if self.generated_packets < self.delivered_packets {
            return Err(CodecError::Invalid("delivered more packets than generated"));
        }
        self.eject_buf.clear();
        self.congested_buf.clear();
        Ok(())
    }

    /// Finalizes gating accounting and produces the run report.
    pub fn finish(&mut self) -> RunReport {
        for net in &mut self.subnets {
            net.finalize();
        }
        let snap = self.snapshot();
        let gating = snap
            .gating_per_subnet
            .iter()
            .fold(GatingActivity::default(), |acc, g| acc.merged(*g));
        let nodes = self.cfg.dims.num_nodes() as f64;
        let cycles = self.cycle.max(1) as f64;
        let inj_total: u64 = snap.injected_flits_per_subnet.iter().sum();
        let utilization = snap
            .injected_flits_per_subnet
            .iter()
            .map(|&f| {
                if inj_total == 0 {
                    0.0
                } else {
                    f as f64 / inj_total as f64
                }
            })
            .collect();
        RunReport {
            name: self.cfg.name.clone(),
            cycles: self.cycle,
            packets_generated: self.generated_packets,
            packets_delivered: self.delivered_packets,
            avg_packet_latency: if self.delivered_packets == 0 {
                0.0
            } else {
                self.latency_sum as f64 / self.delivered_packets as f64
            },
            max_packet_latency: self.latency_max,
            accepted_packets_per_node_cycle: self.delivered_packets as f64 / (nodes * cycles),
            accepted_flits_per_node_cycle: self.delivered_flits as f64 / (nodes * cycles),
            csc_fraction: gating.csc_fraction(),
            sleep_transitions: gating.sleep_transitions,
            subnet_utilization: utilization,
        }
    }
}

impl<S: Sink> PacketSink for MultiNoc<S> {
    fn now(&self) -> u64 {
        self.cycle
    }

    fn submit(&mut self, desc: PacketDescriptor) {
        self.generated_packets += 1;
        let idx = desc.src.index();
        if !self.ni_busy[idx] {
            self.ni_busy[idx] = true;
            let pos = self.busy_nis.partition_point(|&i| (i as usize) < idx);
            self.busy_nis.insert(pos, idx as u32);
        }
        self.nis[idx].submit(desc);
    }
}

impl<S: Sink> std::fmt::Debug for MultiNoc<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiNoc")
            .field("name", &self.cfg.name)
            .field("cycle", &self.cycle)
            .field("generated", &self.generated_packets)
            .field("delivered", &self.delivered_packets)
            .finish_non_exhaustive()
    }
}

/// Fast-forward effectiveness counters of a [`MultiNoc`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Fast-forward invocations.
    pub skips: u64,
    /// Total cycles covered by fast-forwards.
    pub skipped_cycles: u64,
    /// Per-subnet quiescence assessments made (summed over subnets).
    pub assessments: u64,
    /// Assessments that found the subnet quiescent.
    pub quiescent_assessments: u64,
}

/// Cumulative counters of a [`MultiNoc`] at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Cycle the snapshot was taken at.
    pub cycle: u64,
    /// Packets submitted.
    pub generated_packets: u64,
    /// Packets fully delivered.
    pub delivered_packets: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Sum of end-to-end packet latencies.
    pub latency_sum: u64,
    /// Flits ejected per subnet.
    pub ejected_flits_per_subnet: Vec<u64>,
    /// Flits injected per subnet.
    pub injected_flits_per_subnet: Vec<u64>,
    /// Router event counters summed per subnet.
    pub activity_per_subnet: Vec<RouterActivity>,
    /// Gating residency summed per subnet.
    pub gating_per_subnet: Vec<GatingActivity>,
    /// OR-network switching events (all subnets).
    pub or_switch_events: u64,
}

impl Snapshot {
    /// An all-zero snapshot for `k` subnets (the start of a run).
    pub fn zero(k: usize) -> Self {
        Snapshot {
            cycle: 0,
            generated_packets: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            latency_sum: 0,
            ejected_flits_per_subnet: vec![0; k],
            injected_flits_per_subnet: vec![0; k],
            activity_per_subnet: vec![RouterActivity::default(); k],
            gating_per_subnet: vec![GatingActivity::default(); k],
            or_switch_events: 0,
        }
    }

    /// Counter differences `self - earlier` (a measurement window).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is a later snapshot or has a different subnet
    /// count.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        assert!(earlier.cycle <= self.cycle, "snapshots out of order");
        assert_eq!(
            earlier.ejected_flits_per_subnet.len(),
            self.ejected_flits_per_subnet.len(),
            "subnet count mismatch"
        );
        Snapshot {
            cycle: self.cycle - earlier.cycle,
            generated_packets: self.generated_packets - earlier.generated_packets,
            delivered_packets: self.delivered_packets - earlier.delivered_packets,
            delivered_flits: self.delivered_flits - earlier.delivered_flits,
            latency_sum: self.latency_sum - earlier.latency_sum,
            ejected_flits_per_subnet: sub_vec(&self.ejected_flits_per_subnet, &earlier.ejected_flits_per_subnet),
            injected_flits_per_subnet: sub_vec(&self.injected_flits_per_subnet, &earlier.injected_flits_per_subnet),
            activity_per_subnet: self
                .activity_per_subnet
                .iter()
                .zip(&earlier.activity_per_subnet)
                .map(|(a, b)| sub_activity(a, b))
                .collect(),
            gating_per_subnet: self
                .gating_per_subnet
                .iter()
                .zip(&earlier.gating_per_subnet)
                .map(|(a, b)| sub_gating(a, b))
                .collect(),
            or_switch_events: self.or_switch_events - earlier.or_switch_events,
        }
    }

    /// Average end-to-end packet latency in this window.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Accepted throughput in packets per node per cycle.
    pub fn accepted_packets_per_node_cycle(&self, nodes: usize) -> f64 {
        if self.cycle == 0 || nodes == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / (self.cycle as f64 * nodes as f64)
        }
    }

    /// Combined gating residency over all subnets.
    pub fn total_gating(&self) -> GatingActivity {
        self.gating_per_subnet
            .iter()
            .fold(GatingActivity::default(), |acc, g| acc.merged(*g))
    }
}

fn sub_vec(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

fn sub_activity(a: &RouterActivity, b: &RouterActivity) -> RouterActivity {
    RouterActivity {
        buffer_writes: a.buffer_writes - b.buffer_writes,
        buffer_reads: a.buffer_reads - b.buffer_reads,
        xbar_traversals: a.xbar_traversals - b.xbar_traversals,
        link_flits: a.link_flits - b.link_flits,
        ejected_flits: a.ejected_flits - b.ejected_flits,
        arb_requests: a.arb_requests - b.arb_requests,
        arb_grants: a.arb_grants - b.arb_grants,
        head_blocked_cycles: a.head_blocked_cycles - b.head_blocked_cycles,
    }
}

fn sub_gating(a: &GatingActivity, b: &GatingActivity) -> GatingActivity {
    GatingActivity {
        active_cycles: a.active_cycles - b.active_cycles,
        sleep_cycles: a.sleep_cycles - b.sleep_cycles,
        wakeup_cycles: a.wakeup_cycles - b.wakeup_cycles,
        sleep_transitions: a.sleep_transitions - b.sleep_transitions,
        compensated_sleep_cycles: a.compensated_sleep_cycles - b.compensated_sleep_cycles,
    }
}

/// Summary of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Configuration name.
    pub name: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets submitted.
    pub packets_generated: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Mean end-to-end latency (creation to tail ejection), cycles.
    pub avg_packet_latency: f64,
    /// Maximum end-to-end latency.
    pub max_packet_latency: u64,
    /// Accepted throughput, packets per node per cycle.
    pub accepted_packets_per_node_cycle: f64,
    /// Accepted throughput, flits per node per cycle.
    pub accepted_flits_per_node_cycle: f64,
    /// Fraction of router-cycles that were compensated sleep cycles.
    pub csc_fraction: f64,
    /// Total active→sleep transitions.
    pub sleep_transitions: u64,
    /// Share of injected flits carried by each subnet.
    pub subnet_utilization: Vec<f64>,
}

catnap_util::impl_to_json_struct!(RunReport {
    name,
    cycles,
    packets_generated,
    packets_delivered,
    avg_packet_latency,
    max_packet_latency,
    accepted_packets_per_node_cycle,
    accepted_flits_per_node_cycle,
    csc_fraction,
    sleep_transitions,
    subnet_utilization,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiNocConfig;
    use catnap_noc::MessageClass;
    use catnap_traffic::{SyntheticPattern, SyntheticWorkload};

    fn desc(id: u64, src: u16, dst: u16, bits: u32) -> PacketDescriptor {
        PacketDescriptor {
            id: catnap_noc::PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            bits,
            class: MessageClass::Synthetic,
            created_cycle: 0,
        }
    }

    #[test]
    fn single_packet_delivery_and_latency() {
        let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        net.submit(desc(0, 0, 63, 512));
        for _ in 0..200 {
            net.step();
        }
        let rep = net.finish();
        assert_eq!(rep.packets_delivered, 1);
        // 14 hops * 3 cycles + serialization (4 flits) + NI overheads.
        assert!(
            rep.avg_packet_latency >= 45.0 && rep.avg_packet_latency < 70.0,
            "latency {}",
            rep.avg_packet_latency
        );
        assert_eq!(rep.subnet_utilization[0], 1.0, "lone packet rides subnet 0");
    }

    #[test]
    fn snapshot_delta_ordering_enforced() {
        let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        let early = net.snapshot();
        net.step();
        let late = net.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.cycle, 1);
        let r = std::panic::catch_unwind(|| early.delta(&late));
        assert!(r.is_err(), "reversed snapshot order must panic");
    }

    #[test]
    fn congestion_view_false_when_idle() {
        let net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        for s in 0..4 {
            for node in net.dims().nodes() {
                assert!(!net.congestion_view(s, node));
                assert!(!net.rcs(s, node));
            }
        }
    }

    #[test]
    fn spill_rule_disabled_keeps_strict_priority() {
        // With spill 0 and no congestion, even bursty back-to-back packets
        // from one node stay on subnet 0.
        let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128().spill_wait(0));
        for i in 0..40 {
            net.submit(desc(i, 0, 60, 584));
        }
        for _ in 0..1_500 {
            net.step();
        }
        let rep = net.finish();
        assert_eq!(rep.packets_delivered, 40);
        assert_eq!(rep.subnet_utilization[0], 1.0, "util {:?}", rep.subnet_utilization);
    }

    #[test]
    fn spill_rule_overflows_a_hot_injector() {
        // 584-bit packets stream for 5 cycles; a threshold of 2 makes the
        // second head spill while the first still occupies the slot.
        let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128().spill_wait(2));
        for i in 0..40 {
            net.submit(desc(i, 0, 60, 584));
        }
        for _ in 0..1_500 {
            net.step();
        }
        let rep = net.finish();
        assert_eq!(rep.packets_delivered, 40);
        assert!(
            rep.subnet_utilization[0] < 1.0,
            "a saturated injector must spill: {:?}",
            rep.subnet_utilization
        );
    }

    #[test]
    fn outstanding_counts_packets_in_flight() {
        let mut net = MultiNoc::new(MultiNocConfig::single_noc_512b());
        net.submit(desc(0, 0, 63, 512));
        assert_eq!(net.packets_outstanding(), 1);
        for _ in 0..200 {
            net.step();
        }
        assert_eq!(net.packets_outstanding(), 0);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let net = MultiNoc::new(MultiNocConfig::catnap_4x128());
        let s = format!("{net:?}");
        assert!(s.contains("MultiNoc") && s.contains("4NT-128b"));
    }

    #[test]
    fn step_until_skips_idle_stretches_bit_identically() {
        let cfg = MultiNocConfig::catnap_2x128_64core().gating(true).seed(11);
        let load = |dims| SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.001, 512, dims, 5);

        let mut stepped = MultiNoc::new(cfg.clone());
        let mut ls = load(stepped.dims());
        for _ in 0..4_000 {
            ls.drive(&mut stepped);
            stepped.step();
        }

        let mut skipped = MultiNoc::new(cfg);
        let mut lk = load(skipped.dims());
        skipped.step_until(&mut lk, 4_000);

        let stats = skipped.skip_stats();
        assert!(
            stats.skipped_cycles > 0,
            "a 0.001-rate run must have skippable stretches: {stats:?}"
        );
        assert!(stats.quiescent_assessments <= stats.assessments);
        assert_eq!(skipped.cycle(), stepped.cycle());
        assert_eq!(skipped.snapshot(), stepped.snapshot());
        assert_eq!(skipped.finish(), stepped.finish());
    }

    #[test]
    fn force_full_step_disables_fast_forward() {
        let cfg = MultiNocConfig::catnap_2x128_64core().gating(true).seed(11);
        let mut net = MultiNoc::new(cfg);
        net.set_force_full_step(true);
        let mut load = SyntheticWorkload::new(SyntheticPattern::UniformRandom, 0.001, 512, net.dims(), 5);
        net.step_until(&mut load, 2_000);
        assert_eq!(
            net.skip_stats(),
            SkipStats::default(),
            "the escape hatch must reach every shortcut"
        );
        assert_eq!(net.cycle(), 2_000);
        // Re-enabling restores skipping.
        net.set_force_full_step(false);
        net.step_until(&mut load, 4_000);
        assert!(net.skip_stats().skipped_cycles > 0);
    }

    #[test]
    fn heavier_synthetic_load_uses_more_subnets_than_light() {
        let util = |rate: f64| {
            let mut net = MultiNoc::new(MultiNocConfig::catnap_4x128());
            let mut load = SyntheticWorkload::new(SyntheticPattern::UniformRandom, rate, 512, net.dims(), 9);
            for _ in 0..4_000 {
                load.drive(&mut net);
                net.step();
            }
            net.finish().subnet_utilization
        };
        let low = util(0.02);
        let high = util(0.40);
        assert!(low[0] > 0.9);
        assert!(high[0] < 0.6, "high load must spread: {high:?}");
    }
}
