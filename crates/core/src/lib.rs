#![warn(missing_docs)]

//! # catnap
//!
//! The Catnap architecture (Das, Narayanasamy, Satpathy, Dreslinski —
//! *"Catnap: Energy Proportional Multiple Network-on-Chip"*, ISCA 2013):
//! a multiple-network (Multi-NoC) design with synergistic subnet-selection
//! and power-gating policies that make the on-chip network energy
//! proportional.
//!
//! ## The idea
//!
//! A Multi-NoC partitions the wires and buffers of a wide network into
//! several narrower *subnets*; every node's network interface (NI)
//! connects to one router in each subnet. Unlike a single network — where
//! most routers must stay powered to preserve connectivity even under a
//! trickle of traffic — a Multi-NoC can gate *entire subnets* without
//! disconnecting any node. Catnap exploits this with three cooperating
//! mechanisms:
//!
//! 1. **Strict-priority subnet selection** ([`select`]): packets go to
//!    the lowest-order subnet that is not close to congestion, so
//!    higher-order subnets see long idle periods.
//! 2. **Regional congestion detection** ([`congestion`], [`rcs`]): each
//!    node computes a local congestion status — the best metric is the
//!    *maximum input-port buffer occupancy* (BFM, threshold 9 flits) —
//!    and a 1-bit OR network per 4x4 region aggregates it into a regional
//!    congestion status (RCS) with a 6-cycle update period.
//! 3. **RCS-driven power gating** ([`gating`]): a router in subnet *h*
//!    sleeps when its buffers have been empty for 4 cycles and the RCS of
//!    subnet *h−1* is off; it wakes when that RCS turns on or a
//!    look-ahead wake-up signal arrives. Subnet 0 never sleeps.
//!
//! [`MultiNoc`] ties these policies to the cycle-level mechanisms of
//! [`catnap_noc`] and is the main entry point.
//!
//! ## Example
//!
//! ```
//! use catnap::{MultiNoc, MultiNocConfig};
//! use catnap_traffic::{SyntheticPattern, SyntheticWorkload};
//!
//! let cfg = MultiNocConfig::catnap_4x128().gating(true);
//! let mut net = MultiNoc::new(cfg);
//! let mut load = SyntheticWorkload::new(
//!     SyntheticPattern::UniformRandom, 0.02, 512, net.dims(), 7);
//! for _ in 0..2_000 {
//!     load.drive(&mut net);
//!     net.step();
//! }
//! let report = net.finish();
//! // At 0.02 packets/node/cycle most routers of the three higher-order
//! // subnets spend nearly all their time asleep.
//! assert!(report.csc_fraction > 0.3);
//! assert!(report.packets_delivered > 1_000);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod congestion;
pub mod dispatch;
pub mod gating;
pub mod multinoc;
pub mod ni;
pub mod power_report;
pub mod rcs;
pub mod select;

pub use cache::{CacheStats, SimCache};
pub use catnap_noc::PartitionShape;
pub use checkpoint::{config_fingerprint, CHECKPOINT_VERSION, FINGERPRINT_SCHEMA_VERSION};
pub use config::{MultiNocConfig, SelectorKind};
pub use congestion::{CongestionMetric, MetricKind};
pub use dispatch::{force_static_dispatch, DispatchController, DispatchStats, FORCE_STATIC_ENV};
pub use gating::GatingPolicy;
pub use multinoc::{MultiNoc, RunReport, SkipStats, Snapshot};
pub use power_report::MultiNocPowerReport;
pub use rcs::OrNetwork;
pub use select::{congestion_mask, SubnetSelector};
