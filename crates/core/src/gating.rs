//! Power-gating policies: when routers are asked to sleep and when whole
//! regions are woken.
//!
//! The *mechanisms* (power-state machine, sleep guards, look-ahead wake
//! signals, NI wake requests) live in `catnap-noc`; this module supplies
//! the *policy* that drives them each cycle via [`GatingPolicy::apply`].

use crate::ni::NodeNi;
use crate::rcs::OrNetwork;
use catnap_noc::power_state::WakeReason;
use catnap_noc::{MeshDims, Network, Port};
use catnap_telemetry::Sink;

/// Which power-gating policy a [`MultiNoc`](crate::MultiNoc) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatingPolicy {
    /// No power gating: every router stays active.
    None,
    /// Matsutani-style local-idle gating (ASP-DAC '08), the paper's
    /// baseline for Single-NoC and for round-robin Multi-NoC: any router
    /// whose buffers have been empty for `t_idle_detect` cycles goes to
    /// sleep; wake-ups come from look-ahead signals and NI demand only.
    LocalIdle,
    /// Fine-grained variant (Matsutani et al., TCAD '11): individual
    /// input ports (buffers + incoming link) gate independently while the
    /// crossbar, control and clock stay powered — more sleep opportunity
    /// per unit, less leakage saved per sleeping unit.
    LocalIdlePort,
    /// Catnap's RCS-driven policy (Section 3.3): a router in subnet `h`
    /// sleeps only when, additionally, the regional congestion status of
    /// subnet `h-1` is off; it is woken as soon as that RCS turns on.
    /// Subnet 0 is never gated.
    CatnapRcs,
}

impl GatingPolicy {
    /// Whether this policy ever gates routers.
    pub fn gates(self) -> bool {
        self != GatingPolicy::None
    }

    /// Whether subnet `subnet` may have routers gated at all under this
    /// policy.
    pub fn subnet_gateable(self, subnet: usize) -> bool {
        match self {
            GatingPolicy::None => false,
            GatingPolicy::LocalIdle | GatingPolicy::LocalIdlePort => true,
            GatingPolicy::CatnapRcs => subnet > 0,
        }
    }

    /// Whether the policy gates individual ports rather than routers.
    pub fn is_port_granularity(self) -> bool {
        self == GatingPolicy::LocalIdlePort
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GatingPolicy::None => "no-gating",
            GatingPolicy::LocalIdle => "local-idle",
            GatingPolicy::LocalIdlePort => "local-idle-port",
            GatingPolicy::CatnapRcs => "catnap-rcs",
        }
    }

    /// Runs one cycle of the policy: issues sleep and wake requests to
    /// the subnet networks. Called by `MultiNoc::step` between NI
    /// injection and the subnet steps.
    ///
    /// The networks veto unsafe requests themselves (sleep guards,
    /// in-flight flit checks), so the policy may ask freely; every
    /// granted transition is reported through each network's telemetry
    /// sink.
    pub fn apply<S: Sink>(self, dims: MeshDims, subnets: &mut [Network<S>], or_nets: &[OrNetwork], nis: &[NodeNi]) {
        let k = subnets.len();
        match self {
            GatingPolicy::None => {}
            GatingPolicy::LocalIdle => {
                for net in subnets.iter_mut() {
                    // A fully sleeping subnet rejects every request (the
                    // sleep guard needs an Active machine), so the sweep
                    // is a provable no-op.
                    if net.all_asleep() {
                        continue;
                    }
                    for node in dims.nodes() {
                        net.request_sleep(node);
                    }
                }
            }
            GatingPolicy::LocalIdlePort => {
                for (s, net) in subnets.iter_mut().enumerate() {
                    for node in dims.nodes() {
                        for port in Port::ALL {
                            // Never gate the local port out from under an
                            // in-flight NI injection.
                            if port == Port::Local && nis[node.index()].wants_subnet(s) {
                                continue;
                            }
                            net.request_sleep_port(node, port);
                        }
                    }
                }
            }
            GatingPolicy::CatnapRcs => {
                for h in 1..k {
                    // With subnet h-1's RCS fully clear, every branch
                    // below is a sleep request; if subnet h is already
                    // fully asleep those are all rejected by the sleep
                    // guard, so the sweep is a provable no-op.
                    if !or_nets[h - 1].any() && subnets[h].all_asleep() {
                        continue;
                    }
                    for node in dims.nodes() {
                        if or_nets[h - 1].rcs_at(node) {
                            subnets[h].request_wake(node, WakeReason::RegionalCongestion);
                        } else {
                            subnets[h].request_sleep(node);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subnet_zero_protected_only_by_catnap() {
        assert!(!GatingPolicy::CatnapRcs.subnet_gateable(0));
        assert!(GatingPolicy::CatnapRcs.subnet_gateable(1));
        assert!(GatingPolicy::LocalIdle.subnet_gateable(0));
        assert!(!GatingPolicy::None.subnet_gateable(0));
    }

    #[test]
    fn gates_flag() {
        assert!(!GatingPolicy::None.gates());
        assert!(GatingPolicy::LocalIdle.gates());
        assert!(GatingPolicy::CatnapRcs.gates());
    }

    #[test]
    fn names_stable() {
        assert_eq!(GatingPolicy::CatnapRcs.name(), "catnap-rcs");
        assert_eq!(GatingPolicy::LocalIdle.name(), "local-idle");
        assert_eq!(GatingPolicy::None.name(), "no-gating");
    }
}
