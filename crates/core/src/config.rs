//! Multi-NoC configuration and the paper's design points.

use crate::congestion::{CongestionMetric, MetricKind};
use crate::gating::GatingPolicy;
use catnap_noc::{GatingConfig, MeshDims, NetworkConfig, PartitionShape};
use catnap_power::DelayModel;

/// Which subnet-selection policy to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectorKind {
    /// Round-robin across subnets (conventional baseline).
    RoundRobin,
    /// Uniformly random.
    Random,
    /// Catnap's strict-priority selection.
    CatnapPriority,
}

/// How the mesh is partitioned into RCS regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionMode {
    /// Quadrants (4x4 regions of the 8x8 mesh — the paper's design).
    Quadrants,
    /// One global region (an idealized global detector).
    Global,
    /// One region per node (degenerates RCS to local-only status).
    PerNode,
}

/// Full configuration of a (multi-)network design point.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiNocConfig {
    /// Display name, e.g. `"4NT-128b-PG"`.
    pub name: String,
    /// Number of subnets.
    pub subnets: usize,
    /// Datapath width of each subnet, in bits.
    pub subnet_width_bits: u32,
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Virtual channels per port.
    pub vcs: usize,
    /// VC buffer depth in flits.
    pub vc_depth: usize,
    /// Power-gating timing (wake-up, break-even, idle-detect).
    pub gating_cfg: GatingConfig,
    /// Power-gating policy.
    pub gating_policy: GatingPolicy,
    /// Subnet-selection policy.
    pub selector: SelectorKind,
    /// Local congestion metric and thresholds.
    pub metric: CongestionMetric,
    /// Whether regional congestion status is used (false = local-only
    /// status, the paper's `BFM-local` / `IQOcc-Local` variants).
    pub use_rcs: bool,
    /// RCS OR-network update period in cycles (paper: 6).
    pub rcs_period: u32,
    /// RCS region partitioning.
    pub region_mode: RegionMode,
    /// NI injection-queue capacity in flits (paper: 16).
    pub ni_queue_flits: usize,
    /// NI-side spill rule: if the head packet has waited this many cycles
    /// behind a busy injection slot, that subnet is treated as congested
    /// at this node and the selector may pick the next subnet. This keeps
    /// injection-bandwidth-bound nodes (e.g. memory-controller nodes,
    /// whose responses plus local core traffic exceed one subnet's local
    /// port) from serializing behind subnet 0 even though no *router*
    /// buffer ever fills — a blind spot of purely router-side congestion
    /// metrics. `0` disables the rule (the paper's literal policy).
    pub spill_wait_cycles: u32,
    /// Supply voltage for the power model.
    pub vdd: f64,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// RNG seed (random selector).
    pub seed: u64,
    /// Worker lanes for stepping the subnets in parallel. `None` picks
    /// the `CATNAP_THREADS` override, else the machine parallelism,
    /// capped at the subnet count; `Some(1)` forces strictly serial
    /// stepping. Results are bit-identical regardless — the subnets only
    /// interact through the NIs at cycle boundaries.
    pub step_threads: Option<usize>,
    /// Spatial shards per subnet mesh when a subnet steps on the pool.
    /// `None` matches the pool's lane count; `Some(1)` disables spatial
    /// sharding (subnet-level parallelism only). Like `step_threads`,
    /// this is a pure scheduling knob: results are bit-identical at any
    /// shard count, so it is excluded from the config fingerprint.
    pub shard_threads: Option<usize>,
    /// Whether the adaptive dispatch controller tunes the subnet/shard
    /// fan-out crossovers online. `None` enables it whenever a pool
    /// exists (unless [`crate::dispatch::FORCE_STATIC_ENV`] pins the
    /// static constants); `Some(false)` pins the static constants;
    /// `Some(true)` insists. Pure scheduling — results are bit-identical
    /// either way, so it is excluded from the config fingerprint.
    pub adaptive_dispatch: Option<bool>,
    /// Spatial partition shape for the sharded phase-2 sweep. `None`
    /// picks from the mesh aspect ratio
    /// ([`PartitionShape::pick`]). Pure scheduling — bit-identical at
    /// any shape, excluded from the config fingerprint.
    pub partition_shape: Option<PartitionShape>,
}

impl MultiNocConfig {
    fn base(name: &str, subnets: usize, width: u32) -> Self {
        let vdd = DelayModel::catnap_32nm()
            .required_vdd(width, 2.0e9)
            .expect("2 GHz reachable for all studied widths");
        MultiNocConfig {
            name: name.to_string(),
            subnets,
            subnet_width_bits: width,
            dims: MeshDims::new(8, 8),
            vcs: 4,
            vc_depth: 4,
            gating_cfg: GatingConfig::paper(),
            gating_policy: GatingPolicy::None,
            selector: SelectorKind::CatnapPriority,
            metric: CongestionMetric::paper_default(MetricKind::Bfm),
            use_rcs: true,
            rcs_period: 6,
            region_mode: RegionMode::Quadrants,
            ni_queue_flits: 16,
            spill_wait_cycles: 5,
            vdd,
            freq_hz: 2.0e9,
            seed: 0xCA7,
            step_threads: None,
            shard_threads: None,
            adaptive_dispatch: None,
            partition_shape: None,
        }
    }

    /// The paper's 1NT-512b Single-NoC (0.750 V).
    pub fn single_noc_512b() -> Self {
        MultiNocConfig::base("1NT-512b", 1, 512)
    }

    /// The under-provisioned 1NT-128b Single-NoC.
    pub fn single_noc_128b() -> Self {
        MultiNocConfig::base("1NT-128b", 1, 128)
    }

    /// The paper's 4NT-128b Catnap Multi-NoC (0.625 V).
    pub fn catnap_4x128() -> Self {
        MultiNocConfig::base("4NT-128b", 4, 128)
    }

    /// A bandwidth-equivalent Multi-NoC with `n` subnets of `512/n` bits
    /// (2NT-256b, 4NT-128b, 8NT-64b of Figure 6).
    ///
    /// # Panics
    ///
    /// Panics unless `n` divides 512 evenly and is non-zero.
    pub fn bandwidth_equivalent(n: usize) -> Self {
        assert!(n > 0 && 512 % n as u32 == 0, "subnets must divide 512");
        let width = 512 / n as u32;
        MultiNocConfig::base(&format!("{n}NT-{width}b"), n, width)
    }

    /// The 64-core configuration (Section 6.6): 4x4 c-mesh, 256-bit
    /// Single-NoC.
    pub fn single_noc_256b_64core() -> Self {
        let mut cfg = MultiNocConfig::base("64core-1NT-256b", 1, 256);
        cfg.dims = MeshDims::new(4, 4);
        cfg
    }

    /// The 64-core Multi-NoC: two 128-bit subnets on a 4x4 c-mesh.
    pub fn catnap_2x128_64core() -> Self {
        let mut cfg = MultiNocConfig::base("64core-2NT-128b", 2, 128);
        cfg.dims = MeshDims::new(4, 4);
        cfg
    }

    /// Builder-style: enables the natural power-gating policy for the
    /// design (Catnap RCS gating for a priority-selected Multi-NoC,
    /// local-idle gating otherwise), or disables gating.
    pub fn gating(mut self, enabled: bool) -> Self {
        self.gating_policy = if !enabled {
            GatingPolicy::None
        } else if self.subnets > 1 && self.selector == SelectorKind::CatnapPriority && self.use_rcs {
            GatingPolicy::CatnapRcs
        } else {
            GatingPolicy::LocalIdle
        };
        if enabled && !self.name.ends_with("-PG") {
            self.name.push_str("-PG");
        }
        self
    }

    /// Builder-style: sets an explicit gating policy.
    pub fn gating_policy(mut self, policy: GatingPolicy) -> Self {
        self.gating_policy = policy;
        self
    }

    /// Builder-style: sets the subnet selector.
    pub fn selector(mut self, kind: SelectorKind) -> Self {
        self.selector = kind;
        self
    }

    /// Builder-style: sets the local congestion metric.
    pub fn metric(mut self, metric: CongestionMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder-style: disables the regional OR network (local-only
    /// congestion status).
    pub fn local_only(mut self) -> Self {
        self.use_rcs = false;
        self
    }

    /// Builder-style: sets the RCS update period.
    pub fn rcs_period(mut self, period: u32) -> Self {
        self.rcs_period = period;
        self
    }

    /// Builder-style: sets the region partitioning.
    pub fn region_mode(mut self, mode: RegionMode) -> Self {
        self.region_mode = mode;
        self
    }

    /// Builder-style: sets the NI spill-wait threshold (0 disables).
    pub fn spill_wait(mut self, cycles: u32) -> Self {
        self.spill_wait_cycles = cycles;
        self
    }

    /// Builder-style: sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: pins the subnet-stepping parallelism (`1` =
    /// strictly serial; see [`MultiNocConfig::step_threads`]).
    pub fn step_threads(mut self, threads: usize) -> Self {
        self.step_threads = Some(threads);
        self
    }

    /// Builder-style: pins the spatial shards per subnet mesh (`1` =
    /// no spatial sharding; see [`MultiNocConfig::shard_threads`]).
    pub fn shard_threads(mut self, shards: usize) -> Self {
        self.shard_threads = Some(shards);
        self
    }

    /// Builder-style: pins the adaptive dispatch controller on or off
    /// (default: on whenever a pool exists; see
    /// [`MultiNocConfig::adaptive_dispatch`]).
    pub fn adaptive_dispatch(mut self, adaptive: bool) -> Self {
        self.adaptive_dispatch = Some(adaptive);
        self
    }

    /// Builder-style: pins the spatial partition shape for the sharded
    /// phase-2 sweep (default: picked from the mesh aspect ratio; see
    /// [`MultiNocConfig::partition_shape`]).
    pub fn partition_shape(mut self, shape: PartitionShape) -> Self {
        self.partition_shape = Some(shape);
        self
    }

    /// Builder-style: renames the configuration.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Aggregate datapath width across subnets, in bits.
    pub fn aggregate_width_bits(&self) -> u32 {
        self.subnet_width_bits * self.subnets as u32
    }

    /// Flits per packet of `bits` bits on this design's subnets.
    pub fn flits_per_packet(&self, bits: u32) -> u16 {
        catnap_noc::Flit::flits_for_bits(bits, self.subnet_width_bits)
    }

    /// The per-subnet [`NetworkConfig`].
    pub fn subnet_config(&self) -> NetworkConfig {
        let mut cfg = NetworkConfig::with_width(self.subnet_width_bits)
            .dims(self.dims)
            .buffers(self.vcs, self.vc_depth)
            .gating_enabled(self.gating_policy.gates())
            .port_gating(self.gating_policy.is_port_granularity());
        cfg.gating = self.gating_cfg;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.subnets == 0 {
            return Err("need at least one subnet".into());
        }
        self.subnet_config().validate()?;
        if self.rcs_period == 0 {
            return Err("rcs_period must be non-zero".into());
        }
        if self.ni_queue_flits == 0 {
            return Err("NI queue capacity must be non-zero".into());
        }
        if !(0.1..=1.5).contains(&self.vdd) {
            return Err(format!("implausible vdd {}", self.vdd));
        }
        if self.step_threads == Some(0) {
            return Err("step_threads must be at least 1".into());
        }
        if self.shard_threads == Some(0) {
            return Err("shard_threads must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_points() {
        let single = MultiNocConfig::single_noc_512b();
        assert_eq!(single.subnets, 1);
        assert_eq!(single.subnet_width_bits, 512);
        assert!((single.vdd - 0.750).abs() < 0.01, "512b needs 0.750V for 2 GHz");

        let multi = MultiNocConfig::catnap_4x128();
        assert_eq!(multi.subnets, 4);
        assert_eq!(multi.aggregate_width_bits(), 512);
        assert!((multi.vdd - 0.625).abs() < 0.01, "128b reaches 2 GHz at 0.625V");
        multi.validate().unwrap();
    }

    #[test]
    fn bandwidth_equivalents() {
        for n in [1usize, 2, 4, 8] {
            let cfg = MultiNocConfig::bandwidth_equivalent(n);
            assert_eq!(cfg.aggregate_width_bits(), 512);
            assert_eq!(cfg.flits_per_packet(512) as usize, n);
            cfg.validate().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn bad_subnet_count_panics() {
        MultiNocConfig::bandwidth_equivalent(3);
    }

    #[test]
    fn gating_builder_chooses_policy() {
        let catnap = MultiNocConfig::catnap_4x128().gating(true);
        assert_eq!(catnap.gating_policy, GatingPolicy::CatnapRcs);
        assert!(catnap.name.ends_with("-PG"));

        let single = MultiNocConfig::single_noc_512b().gating(true);
        assert_eq!(single.gating_policy, GatingPolicy::LocalIdle);

        let rr = MultiNocConfig::catnap_4x128().selector(SelectorKind::RoundRobin).gating(true);
        assert_eq!(rr.gating_policy, GatingPolicy::LocalIdle);

        let off = MultiNocConfig::catnap_4x128().gating(false);
        assert_eq!(off.gating_policy, GatingPolicy::None);
    }

    #[test]
    fn subnet_config_propagates_gating() {
        let cfg = MultiNocConfig::catnap_4x128().gating(true).subnet_config();
        assert!(cfg.gating_enabled);
        assert_eq!(cfg.gating.t_wakeup, 10);
        let off = MultiNocConfig::catnap_4x128().subnet_config();
        assert!(!off.gating_enabled);
    }

    #[test]
    fn sixty_four_core_presets() {
        let s = MultiNocConfig::single_noc_256b_64core();
        assert_eq!(s.dims.num_nodes(), 16);
        assert_eq!(s.aggregate_width_bits(), 256);
        let m = MultiNocConfig::catnap_2x128_64core();
        assert_eq!(m.aggregate_width_bits(), 256);
        assert!(m.vdd < s.vdd, "narrower subnets run at lower voltage");
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = MultiNocConfig::catnap_4x128();
        cfg.rcs_period = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MultiNocConfig::catnap_4x128();
        cfg.subnets = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MultiNocConfig::catnap_4x128();
        cfg.vdd = 5.0;
        assert!(cfg.validate().is_err());
    }
}
