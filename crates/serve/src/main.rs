//! `catnap-serve` — batch simulation server.
//!
//! ```text
//! catnap-serve [--cache DIR] [--max-entries N] [--tcp ADDR]
//! ```
//!
//! Default mode reads JSONL job requests from stdin and writes one JSONL
//! response per job to stdout (see the crate docs for the format). With
//! `--tcp ADDR` (e.g. `--tcp 127.0.0.1:7420`) it serves the same
//! protocol over TCP instead, one connection at a time. The cache
//! directory defaults to `$CATNAP_CACHE_DIR`, then `catnap-cache`.
//! A `{"cmd": "shutdown"}` line ends the process cleanly in either mode
//! (this is how a `catnap-hive` coordinator retires spawned workers);
//! `{"cmd": "ping"}` probes liveness and build compatibility.

use catnap::SimCache;
use catnap_serve::Server;
use std::io::{stdin, stdout, BufReader};
use std::net::TcpListener;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: catnap-serve [--cache DIR] [--max-entries N] [--tcp ADDR]");
    exit(2);
}

fn main() {
    let mut cache_dir: Option<String> = None;
    let mut max_entries = 512usize;
    let mut tcp: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => cache_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--max-entries" => {
                max_entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let cache = match cache_dir {
        Some(dir) => SimCache::new(dir, max_entries),
        None => SimCache::from_env_or("catnap-cache"),
    };
    let cache = cache.unwrap_or_else(|e| {
        eprintln!("catnap-serve: cannot open cache directory: {e}");
        exit(1);
    });
    eprintln!("catnap-serve: cache at {}", cache.dir().display());
    let mut server = Server::new(cache);

    let result = match tcp {
        Some(addr) => {
            let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("catnap-serve: cannot bind {addr}: {e}");
                exit(1);
            });
            eprintln!(
                "catnap-serve: listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            server.serve_listener(&listener)
        }
        None => server.serve_lines(BufReader::new(stdin().lock()), stdout().lock()),
    };
    if let Err(e) = result {
        eprintln!("catnap-serve: {e}");
        exit(1);
    }
    let s = server.stats();
    eprintln!(
        "catnap-serve: {} jobs ({} miss, {} resume, {} hit, {} memo), {} errors",
        s.jobs, s.misses, s.resumes, s.hits, s.memo, s.errors
    );
}
