#![warn(missing_docs)]

//! # catnap-serve
//!
//! A batch front-end for Catnap simulations: a JSON-lines job queue
//! served over stdin/stdout or TCP, with every job routed through the
//! fingerprint-keyed result cache (`catnap::SimCache` +
//! `catnap_bench::run_synthetic_cached`).
//!
//! One request per line, one response per line:
//!
//! ```text
//! {"id": "p1", "job": {"config": "catnap-4x128", "pattern": "uniform-random",
//!                      "rate": 0.05, "warmup": 500, "measure": 1500, "seed": 7}}
//! ```
//!
//! ```text
//! {"id": "p1", "status": "ok", "cache": "miss", "fingerprint": "…",
//!  "result": {"config": "4NT-128b", "offered": 0.05, "accepted": …}}
//! ```
//!
//! The `cache` field reports how the job was satisfied: `"miss"` (full
//! simulation; result and warm-up checkpoint stored), `"resume"`
//! (warm-up restored from a checkpoint shared with an earlier job),
//! `"hit"` (result read back from disk), or `"memo"` (duplicate of a
//! job already completed on this connection stream — answered from
//! memory without touching the disk cache). A `{"cmd": "stats"}` line
//! streams the running hit/miss/resume counters.
//!
//! Besides job lines, three command lines are recognized:
//!
//! * `{"cmd": "stats"}` — the running counters, as above.
//! * `{"cmd": "ping"}` — liveness/compatibility probe. Responds
//!   `{"status": "ok", "pong": true, "version": …, "protocol": …,
//!   "fingerprint_schema": …}` where `version` is the crate version,
//!   `protocol` is [`PROTOCOL_VERSION`], and `fingerprint_schema` is
//!   [`catnap::FINGERPRINT_SCHEMA_VERSION`] — a coordinator must refuse
//!   a worker whose schema disagrees with its own, because the two
//!   builds would key caches with incompatible fingerprints.
//! * `{"cmd": "shutdown"}` — acknowledges with
//!   `{"status": "ok", "bye": true}`, then ends the current stream (and,
//!   under `--tcp`, the accept loop), letting the process exit cleanly.
//!   This is how `catnap-hive` retires the local workers it spawned.
//!
//! Malformed lines never kill the server: they produce
//! `{"status": "error", …}` responses with the parse failure.

use catnap::{MultiNocConfig, SimCache, FINGERPRINT_SCHEMA_VERSION};
use catnap_bench::{job_fingerprint, run_synthetic_cached, CacheOutcome, SimJob};
use catnap_noc::NodeId;
use catnap_traffic::{LoadSchedule, SyntheticPattern};
use catnap_util::json::ToJson;
use catnap_util::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// Version of the line protocol itself: the command set and response
/// fields. Bumped when either changes shape (v1: jobs + `stats`;
/// v2: adds `ping` and `shutdown`). Reported by `ping` so a coordinator
/// can tell what a worker speaks before relying on it.
pub const PROTOCOL_VERSION: u32 = 2;

/// Parses the `"job"` object of a request into a resolved [`SimJob`].
///
/// Recognized fields: `config` (preset name: `catnap-4x128`,
/// `catnap-2x128-64core`, `single-noc-512b`, `single-noc-128b`,
/// `single-noc-256b-64core`), `gating` (bool, default `true`),
/// `pattern` (`uniform-random`, `transpose`, `bit-complement`,
/// `tornado`, `neighbor`, or `hotspot` with `hotspot` node index and
/// optional `hotspot_per_mille`), either `rate` (constant load) or
/// `schedule` (`[[from_cycle, rate], …]`), `packet_bits` (default 512),
/// `warmup`, `measure`, `seed` (default 7), and `threads` (worker
/// lanes for stepping the job's subnets and mesh shards; default 1 =
/// serial, so concurrent jobs never oversubscribe the host unless
/// asked to). `threads` also accepts the string `"auto"`: lane count
/// and dispatch crossovers are then left to the worker's adaptive
/// controller (auto sizing capped by the host, crossovers self-tuned
/// online). Thread count is a pure scheduling knob — results and cache
/// keys are bit-identical at any value, `"auto"` included.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn parse_job(j: &Json) -> Result<SimJob, String> {
    let config = j.get("config").and_then(Json::as_str).ok_or("missing 'config' preset name")?;
    let cfg = match config {
        "catnap-4x128" => MultiNocConfig::catnap_4x128(),
        "catnap-2x128-64core" => MultiNocConfig::catnap_2x128_64core(),
        "single-noc-512b" => MultiNocConfig::single_noc_512b(),
        "single-noc-128b" => MultiNocConfig::single_noc_128b(),
        "single-noc-256b-64core" => MultiNocConfig::single_noc_256b_64core(),
        other => return Err(format!("unknown config preset '{other}'")),
    };
    let gating = match j.get("gating") {
        None => true,
        Some(v) => v.as_bool().ok_or("'gating' must be a bool")?,
    };
    // `None` = controller-managed (auto lane sizing + adaptive
    // crossovers); `Some(t)` = pinned lanes and shards.
    let threads = match j.get("threads") {
        None => Some(1),
        Some(Json::Str(s)) if s == "auto" => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&t| t >= 1)
                .ok_or("'threads' must be an integer >= 1 or \"auto\"")? as usize,
        ),
    };
    let cfg = match threads {
        Some(t) => cfg.gating(gating).step_threads(t).shard_threads(t),
        None => cfg.gating(gating),
    };
    let nodes = cfg.dims.num_nodes() as u16;

    let pattern = match j.get("pattern").and_then(Json::as_str).unwrap_or("uniform-random") {
        "uniform-random" => SyntheticPattern::UniformRandom,
        "transpose" => SyntheticPattern::Transpose,
        "bit-complement" => SyntheticPattern::BitComplement,
        "tornado" => SyntheticPattern::Tornado,
        "neighbor" => SyntheticPattern::NeighborExchange,
        "hotspot" => {
            let hotspot = j
                .get("hotspot")
                .and_then(Json::as_u64)
                .ok_or("hotspot pattern needs a 'hotspot' node")?;
            if hotspot >= u64::from(nodes) {
                return Err(format!("hotspot node {hotspot} outside the {nodes}-node mesh"));
            }
            let per_mille = match j.get("hotspot_per_mille") {
                None => 100,
                Some(v) => v
                    .as_u64()
                    .filter(|&p| p <= 1000)
                    .ok_or("'hotspot_per_mille' must be 0..=1000")?,
            };
            SyntheticPattern::HotSpot {
                hotspot: NodeId(hotspot as u16),
                per_mille: per_mille as u16,
            }
        }
        other => return Err(format!("unknown pattern '{other}'")),
    };

    let schedule = match (j.get("rate"), j.get("schedule")) {
        (Some(_), Some(_)) => return Err("give either 'rate' or 'schedule', not both".to_string()),
        (Some(r), None) => {
            let rate = r.as_f64().filter(|r| *r >= 0.0).ok_or("'rate' must be a non-negative number")?;
            LoadSchedule::constant(rate)
        }
        (None, Some(s)) => {
            let rows = s.as_array().ok_or("'schedule' must be an array of [from_cycle, rate] pairs")?;
            let mut segments = Vec::with_capacity(rows.len());
            for row in rows {
                let pair = row
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("schedule rows must be [from_cycle, rate]")?;
                let from = pair[0].as_u64().ok_or("schedule from_cycle must be a non-negative integer")?;
                let rate = pair[1]
                    .as_f64()
                    .filter(|r| *r >= 0.0)
                    .ok_or("schedule rate must be non-negative")?;
                segments.push((from, rate));
            }
            let sorted = !segments.is_empty() && segments[0].0 == 0 && segments.windows(2).all(|w| w[0].0 < w[1].0);
            if !sorted {
                return Err("schedule must start at cycle 0 with strictly increasing cycles".to_string());
            }
            LoadSchedule::piecewise(segments)
        }
        (None, None) => return Err("missing offered load: give 'rate' or 'schedule'".to_string()),
    };

    let packet_bits = match j.get("packet_bits") {
        None => 512,
        Some(v) => v
            .as_u64()
            .filter(|&b| (1..=65_536).contains(&b))
            .ok_or("'packet_bits' must be 1..=65536")? as u32,
    };
    let warmup = j.get("warmup").and_then(Json::as_u64).ok_or("missing 'warmup' cycles")?;
    let measure = j.get("measure").and_then(Json::as_u64).ok_or("missing 'measure' cycles")?;
    if measure == 0 {
        return Err("'measure' must be non-zero".to_string());
    }
    if warmup + measure > 10_000_000 {
        return Err("job horizon above 10M cycles".to_string());
    }
    let seed = match j.get("seed") {
        None => 7,
        Some(v) => v.as_u64().ok_or("'seed' must be a non-negative integer")?,
    };

    Ok(SimJob {
        cfg,
        pattern,
        schedule,
        packet_bits,
        warmup,
        measure,
        seed,
    })
}

/// Running counters for one [`Server`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Jobs answered (excluding errors).
    pub jobs: u64,
    /// Duplicate jobs answered from the in-process memo.
    pub memo: u64,
    /// Jobs answered from the disk result cache.
    pub hits: u64,
    /// Jobs that resumed a shared warm-up checkpoint.
    pub resumes: u64,
    /// Jobs simulated in full.
    pub misses: u64,
    /// Lines rejected with an error response.
    pub errors: u64,
}

catnap_util::impl_to_json_struct!(ServeStats {
    jobs,
    memo,
    hits,
    resumes,
    misses,
    errors
});

/// The batch server: a disk-backed [`SimCache`] plus an in-process memo
/// deduplicating repeated jobs within the served stream.
pub struct Server {
    cache: SimCache,
    memo: HashMap<u64, Json>,
    stats: ServeStats,
    shutting_down: bool,
}

impl Server {
    /// Creates a server over the given cache.
    pub fn new(cache: SimCache) -> Self {
        Server {
            cache,
            memo: HashMap::new(),
            stats: ServeStats::default(),
            shutting_down: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Whether a `{"cmd": "shutdown"}` line has been processed. Once
    /// set, [`Server::serve_lines`] returns after the acknowledging
    /// response and [`Server::serve_listener`] stops accepting.
    pub fn shutdown_requested(&self) -> bool {
        self.shutting_down
    }

    /// Processes one request line into one response line (no trailing
    /// newline). Never panics on malformed input — parse and job errors
    /// come back as `"status": "error"` responses.
    pub fn process_line(&mut self, line: &str) -> String {
        let parsed = Json::parse(line);
        let id = parsed.as_ref().ok().and_then(|j| j.get("id").cloned()).unwrap_or(Json::Null);
        let response = match parsed {
            Err(e) => self.error_response(id, format!("bad request line: {e}")),
            Ok(req) => match req.get("cmd").and_then(Json::as_str) {
                Some("stats") => Json::Obj(vec![
                    ("id".to_string(), id),
                    ("status".to_string(), Json::Str("ok".to_string())),
                    ("stats".to_string(), self.stats.to_json()),
                ]),
                Some("ping") => Json::Obj(vec![
                    ("id".to_string(), id),
                    ("status".to_string(), Json::Str("ok".to_string())),
                    ("pong".to_string(), Json::Bool(true)),
                    ("version".to_string(), Json::Str(env!("CARGO_PKG_VERSION").to_string())),
                    ("protocol".to_string(), Json::Int(i64::from(PROTOCOL_VERSION))),
                    (
                        "fingerprint_schema".to_string(),
                        Json::Int(i64::from(FINGERPRINT_SCHEMA_VERSION)),
                    ),
                ]),
                Some("shutdown") => {
                    self.shutting_down = true;
                    Json::Obj(vec![
                        ("id".to_string(), id),
                        ("status".to_string(), Json::Str("ok".to_string())),
                        ("bye".to_string(), Json::Bool(true)),
                    ])
                }
                Some(other) => self.error_response(id, format!("unknown command '{other}'")),
                None => match req.get("job").ok_or("missing 'job' object".to_string()).and_then(parse_job) {
                    Err(e) => self.error_response(id, e),
                    Ok(job) => self.run_job(id, &job),
                },
            },
        };
        response.to_compact_string()
    }

    fn error_response(&mut self, id: Json, error: String) -> Json {
        self.stats.errors += 1;
        Json::Obj(vec![
            ("id".to_string(), id),
            ("status".to_string(), Json::Str("error".to_string())),
            ("error".to_string(), Json::Str(error)),
        ])
    }

    fn run_job(&mut self, id: Json, job: &SimJob) -> Json {
        let key = job_fingerprint(job);
        self.stats.jobs += 1;
        let (result, cache) = if let Some(result) = self.memo.get(&key) {
            self.stats.memo += 1;
            (result.clone(), "memo")
        } else {
            let (point, outcome) = run_synthetic_cached(&mut self.cache, job);
            match outcome {
                CacheOutcome::Hit => self.stats.hits += 1,
                CacheOutcome::Resume => self.stats.resumes += 1,
                CacheOutcome::Miss => self.stats.misses += 1,
            }
            let result = point.to_json();
            self.memo.insert(key, result.clone());
            (result, outcome.name())
        };
        Json::Obj(vec![
            ("id".to_string(), id),
            ("status".to_string(), Json::Str("ok".to_string())),
            ("cache".to_string(), Json::Str(cache.to_string())),
            ("fingerprint".to_string(), Json::Str(format!("{key:016x}"))),
            ("result".to_string(), result),
        ])
    }

    /// Serves a whole request stream: one response line per non-empty
    /// request line, flushed after each so a pipelined client sees
    /// results as they complete. Returns early (after responding) when a
    /// `shutdown` command arrives.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from the underlying reader or writer.
    pub fn serve_lines<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            writeln!(writer, "{}", self.process_line(&line))?;
            writer.flush()?;
            if self.shutting_down {
                break;
            }
        }
        Ok(())
    }

    /// Serves connections from a TCP listener, one at a time, until a
    /// connection delivers a `shutdown` command (callers wanting a
    /// bounded accept loop can drive [`Server::serve_lines`]
    /// themselves). The cache and memo persist across connections, so a
    /// reconnecting client still dedupes against everything served
    /// before.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from `accept`; per-connection I/O errors only
    /// end that connection.
    pub fn serve_listener(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        while !self.shutting_down {
            let (stream, _) = listener.accept()?;
            let reader = BufReader::new(stream.try_clone()?);
            let _ = self.serve_lines(reader, &stream);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(tag: &str) -> (Server, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("catnap-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Server::new(SimCache::new(&dir, 64).unwrap()), dir)
    }

    #[test]
    fn parse_job_rejects_bad_requests() {
        let cases = [
            (r#"{}"#, "missing 'config'"),
            (r#"{"config":"no-such"}"#, "unknown config"),
            (r#"{"config":"catnap-4x128"}"#, "missing offered load"),
            (
                r#"{"config":"catnap-4x128","rate":-0.1,"warmup":1,"measure":1}"#,
                "non-negative",
            ),
            (
                r#"{"config":"catnap-4x128","rate":0.1,"warmup":1,"measure":0}"#,
                "non-zero",
            ),
            (
                r#"{"config":"catnap-4x128","rate":0.1,"schedule":[[0,0.1]],"warmup":1,"measure":1}"#,
                "not both",
            ),
            (
                r#"{"config":"catnap-4x128","schedule":[[5,0.1]],"rate2":1,"warmup":1,"measure":1}"#,
                "start at cycle 0",
            ),
            (
                r#"{"config":"catnap-4x128","pattern":"hotspot","rate":0.1,"warmup":1,"measure":1}"#,
                "hotspot",
            ),
        ];
        for (text, needle) in cases {
            let err = parse_job(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn parse_job_resolves_schedule_and_defaults() {
        let j = Json::parse(
            r#"{"config":"catnap-2x128-64core","schedule":[[0,0.2],[100,0.01]],"warmup":100,"measure":50}"#,
        )
        .unwrap();
        let job = parse_job(&j).unwrap();
        assert_eq!(job.packet_bits, 512);
        assert_eq!(job.seed, 7);
        assert_eq!(job.schedule.rate_at(0), 0.2);
        assert_eq!(job.schedule.rate_at(100), 0.01);
        assert_eq!(job.cfg.subnets, 2);
    }

    #[test]
    fn batch_stream_dedupes_and_reports_cache_outcomes() {
        let (mut server, dir) = test_server("batch");
        let req = |id: &str, rate: f64| {
            format!(
                r#"{{"id":"{id}","job":{{"config":"catnap-2x128-64core","pattern":"uniform-random","schedule":[[0,0.15],[120,{rate}]],"warmup":120,"measure":80,"seed":7}}}}"#
            )
        };
        let input = format!(
            "{}\n{}\n{}\n\n{}\n{{\"id\":\"s\",\"cmd\":\"stats\"}}\n{{\"id\":\"bad\",\"job\":{{}}}}\nnot json\n",
            req("a", 0.01),
            req("b", 0.04),
            req("a2", 0.01), // duplicate of "a" under a different id
            req("c", 0.02),
        );
        let mut out = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 7);

        let cache_of = |i: usize| lines[i].get("cache").unwrap().as_str().unwrap().to_string();
        assert_eq!(cache_of(0), "miss", "first job pays the warm-up");
        assert_eq!(cache_of(1), "resume", "same warm-up prefix resumes");
        assert_eq!(cache_of(2), "memo", "duplicate job answered from memory");
        assert_eq!(
            lines[2].get("result").unwrap(),
            lines[0].get("result").unwrap(),
            "dedupe returns the identical result"
        );
        assert_eq!(cache_of(3), "resume");

        let stats = lines[4].get("stats").unwrap();
        assert_eq!(stats.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(stats.get("memo").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("resumes").unwrap().as_u64(), Some(2));

        assert_eq!(lines[5].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(lines[5].get("id").unwrap().as_str(), Some("bad"));
        assert_eq!(lines[6].get("status").unwrap().as_str(), Some("error"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_request_encoding_roundtrips_through_parse_job() {
        use catnap_bench::JobRequest;
        let requests = [
            JobRequest {
                config: "catnap-2x128-64core".to_string(),
                gating: true,
                threads: 1,
                pattern: SyntheticPattern::UniformRandom,
                schedule: LoadSchedule::constant(0.035),
                packet_bits: 512,
                warmup: 120,
                measure: 80,
                seed: 7,
            },
            JobRequest {
                config: "single-noc-128b".to_string(),
                gating: false,
                threads: 2,
                pattern: SyntheticPattern::HotSpot {
                    hotspot: NodeId(5),
                    per_mille: 250,
                },
                schedule: LoadSchedule::piecewise(vec![(0, 0.2), (100, 0.01)]),
                packet_bits: 128,
                warmup: 100,
                measure: 50,
                seed: 99,
            },
        ];
        for req in requests {
            let parsed = parse_job(&req.to_job_json()).expect("encoded request must parse");
            // The encoded wire form resolves to the same job: equal
            // result-cache and warm-up fingerprints.
            let direct = SimJob {
                cfg: match req.config.as_str() {
                    "catnap-2x128-64core" => MultiNocConfig::catnap_2x128_64core(),
                    "single-noc-128b" => MultiNocConfig::single_noc_128b(),
                    other => panic!("unexpected preset {other}"),
                }
                .gating(req.gating)
                .step_threads(req.threads)
                .shard_threads(req.threads),
                pattern: req.pattern,
                schedule: req.schedule.clone(),
                packet_bits: req.packet_bits,
                warmup: req.warmup,
                measure: req.measure,
                seed: req.seed,
            };
            assert_eq!(job_fingerprint(&parsed), job_fingerprint(&direct));
            assert_eq!(parsed.cfg.step_threads, Some(req.threads));
        }
    }

    #[test]
    fn ping_reports_versions_and_shutdown_ends_the_stream() {
        let (mut server, dir) = test_server("ping");
        let pong = Json::parse(&server.process_line(r#"{"id":"p","cmd":"ping"}"#)).unwrap();
        assert_eq!(pong.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(pong.get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(pong.get("version").unwrap().as_str(), Some(env!("CARGO_PKG_VERSION")));
        assert_eq!(
            pong.get("protocol").unwrap().as_u64(),
            Some(u64::from(PROTOCOL_VERSION))
        );
        assert_eq!(
            pong.get("fingerprint_schema").unwrap().as_u64(),
            Some(u64::from(FINGERPRINT_SCHEMA_VERSION))
        );
        assert!(!server.shutdown_requested(), "ping must not stop the server");

        let unknown = Json::parse(&server.process_line(r#"{"id":"u","cmd":"reboot"}"#)).unwrap();
        assert_eq!(unknown.get("status").unwrap().as_str(), Some("error"));

        // A stream with lines after the shutdown command: the server
        // acknowledges the shutdown and never reads further lines.
        let input = "{\"id\":1,\"cmd\":\"ping\"}\n{\"id\":2,\"cmd\":\"shutdown\"}\n{\"id\":3,\"cmd\":\"ping\"}\n";
        let mut out = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 2, "no responses after the shutdown ack");
        assert_eq!(lines[1].get("bye").unwrap().as_bool(), Some(true));
        assert!(server.shutdown_requested());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_ends_the_tcp_accept_loop() {
        use std::io::{BufRead, Write};
        let (server, dir) = test_server("tcp-shutdown");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut server = server;
            server.serve_listener(&listener).unwrap();
            server.shutdown_requested()
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        writeln!(stream, "{{\"id\":\"bye\",\"cmd\":\"shutdown\"}}").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"bye\": true") || line.contains("\"bye\":true"),
            "{line}"
        );
        assert!(
            handle.join().unwrap(),
            "serve_listener must return with the shutdown flag set"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_server_over_same_cache_dir_hits() {
        let (mut server, dir) = test_server("persist");
        let req = r#"{"id":1,"job":{"config":"catnap-2x128-64core","rate":0.05,"warmup":60,"measure":60}}"#;
        let first = Json::parse(&server.process_line(req)).unwrap();
        assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));

        let mut fresh = Server::new(SimCache::new(&dir, 64).unwrap());
        let second = Json::parse(&fresh.process_line(req)).unwrap();
        assert_eq!(
            second.get("cache").unwrap().as_str(),
            Some("hit"),
            "results persist across processes"
        );
        assert_eq!(second.get("result").unwrap(), first.get("result").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
