//! CSV timeline exporter: per-epoch aggregation of a [`Trace`].
//!
//! One row per `(epoch, subnet)`. Power-phase columns are the router
//! census *at the end of the epoch* (events applied in cycle order, every
//! router starting Active); the remaining columns count events whose
//! stamp falls inside the epoch. The output is plain comma-separated
//! text with a header row — no quoting is ever needed because every cell
//! is numeric.

use crate::event::{Event, PowerPhase, Trace};

/// Per-`(epoch, subnet)` accumulator backing one CSV row.
#[derive(Clone, Copy, Default)]
struct EpochRow {
    sleep_entries: u64,
    wakeups: u64,
    lcs_flips: u64,
    rcs_flips: u64,
    selects: u64,
    injected: u64,
    ejected: u64,
}

/// Renders a trace as a per-epoch CSV timeline.
///
/// `epoch` is the aggregation window in cycles; the last window is
/// truncated at `trace.meta.cycles`. Columns:
///
/// ```text
/// epoch_start,subnet,active,sleep,wake,sleep_entries,wakeups,
/// lcs_flips,rcs_flips,selects,injected,ejected
/// ```
///
/// `active`/`sleep`/`wake` are router counts at the end of the epoch
/// (they sum to the node count); the rest are event counts within it.
///
/// # Panics
///
/// Panics if `epoch` is zero.
pub fn power_timeline_csv(trace: &Trace, epoch: u64) -> String {
    assert!(epoch > 0, "epoch must be positive");
    let num_nodes = trace.meta.num_nodes();
    let subnets = trace.meta.subnets;
    let num_epochs = trace.meta.cycles.div_ceil(epoch).max(1) as usize;

    let mut rows = vec![EpochRow::default(); num_epochs * subnets];
    let at = |cycle: u64, subnet: usize| -> usize {
        let e = ((cycle / epoch) as usize).min(num_epochs - 1);
        e * subnets + subnet
    };

    // Phase census per subnet, advanced epoch by epoch below; power
    // events are bucketed here first so the census walk stays a single
    // in-order pass per subnet stream.
    for (subnet, stream) in trace.subnets.iter().enumerate() {
        for ev in stream {
            match *ev {
                Event::Power { cycle, to, .. } => {
                    let row = &mut rows[at(cycle, subnet)];
                    match to {
                        PowerPhase::Sleep => row.sleep_entries += 1,
                        PowerPhase::Wake => row.wakeups += 1,
                        PowerPhase::Active => {}
                    }
                }
                Event::Lcs { cycle, subnet: s, .. } => {
                    rows[at(cycle, s as usize)].lcs_flips += 1;
                }
                _ => {}
            }
        }
    }
    for ev in &trace.policy {
        match *ev {
            Event::Lcs { cycle, subnet, .. } => rows[at(cycle, subnet as usize)].lcs_flips += 1,
            Event::Rcs { cycle, subnet, .. } => rows[at(cycle, subnet as usize)].rcs_flips += 1,
            Event::Select { cycle, subnet, .. } => rows[at(cycle, subnet as usize)].selects += 1,
            Event::PacketInject { cycle, subnet, .. } => {
                rows[at(cycle, subnet as usize)].injected += 1;
            }
            Event::PacketEject { cycle, subnet, .. } => {
                rows[at(cycle, subnet as usize)].ejected += 1;
            }
            Event::Power { .. } => {}
        }
    }

    let mut out = String::with_capacity(64 * num_epochs * subnets);
    out.push_str(
        "epoch_start,subnet,active,sleep,wake,sleep_entries,wakeups,lcs_flips,rcs_flips,selects,injected,ejected\n",
    );
    for subnet in 0..subnets {
        let mut phase = vec![PowerPhase::Active; num_nodes];
        let stream = trace.subnets.get(subnet).map_or(&[][..], Vec::as_slice);
        let mut next = 0usize;
        for e in 0..num_epochs {
            let epoch_start = e as u64 * epoch;
            let epoch_end = (epoch_start + epoch).min(trace.meta.cycles.max(epoch_start + 1));
            // Apply this subnet's power transitions up to the end of the
            // epoch, then snapshot the census.
            while next < stream.len() && stream[next].cycle() < epoch_end {
                if let Event::Power { node, to, .. } = stream[next] {
                    phase[node as usize] = to;
                }
                next += 1;
            }
            let mut census = [0usize; 3];
            for &p in &phase {
                census[match p {
                    PowerPhase::Active => 0,
                    PowerPhase::Sleep => 1,
                    PowerPhase::Wake => 2,
                }] += 1;
            }
            let row = rows[e * subnets + subnet];
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                epoch_start,
                subnet,
                census[0],
                census[1],
                census[2],
                row.sleep_entries,
                row.wakeups,
                row.lcs_flips,
                row.rcs_flips,
                row.selects,
                row.injected,
                row.ejected,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceMeta;

    fn trace() -> Trace {
        Trace {
            meta: TraceMeta {
                name: "t".into(),
                cols: 2,
                rows: 2,
                subnets: 2,
                cycles: 200,
                selector: "round-robin".into(),
                gating: "catnap-rcs".into(),
            },
            policy: vec![
                Event::Select {
                    cycle: 10,
                    node: 0,
                    subnet: 0,
                    congested_mask: 0,
                },
                Event::PacketInject {
                    cycle: 10,
                    id: 1,
                    subnet: 0,
                    src: 0,
                    dst: 3,
                },
                Event::Rcs {
                    cycle: 120,
                    subnet: 1,
                    region: 0,
                    on: true,
                },
                Event::PacketEject {
                    cycle: 130,
                    id: 1,
                    subnet: 0,
                    dst: 3,
                    latency: 120,
                },
            ],
            subnets: vec![
                vec![
                    Event::Power {
                        cycle: 50,
                        node: 1,
                        from: PowerPhase::Active,
                        to: PowerPhase::Sleep,
                    },
                    Event::Power {
                        cycle: 150,
                        node: 1,
                        from: PowerPhase::Sleep,
                        to: PowerPhase::Wake,
                    },
                ],
                vec![],
            ],
        }
    }

    #[test]
    fn header_epochs_and_census() {
        let csv = power_timeline_csv(&trace(), 100);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0].split(',').count(), 12);
        // 2 epochs x 2 subnets + header.
        assert_eq!(lines.len(), 1 + 4);
        // Subnet 0, epoch 0: node 1 asleep by cycle 100 -> 3 active, 1 sleep.
        assert_eq!(lines[1], "0,0,3,1,0,1,0,0,0,1,1,0");
        // Subnet 0, epoch 1: node 1 waking by cycle 200; 1 eject in epoch.
        assert_eq!(lines[2], "100,0,3,0,1,0,1,0,0,0,0,1");
        // Subnet 1, epoch 1: all active, one rcs flip.
        assert_eq!(lines[4], "100,1,4,0,0,0,0,0,1,0,0,0");
    }

    #[test]
    fn census_columns_always_sum_to_node_count() {
        let t = trace();
        let csv = power_timeline_csv(&t, 64);
        for line in csv.lines().skip(1) {
            let cells: Vec<u64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert_eq!(cells[2] + cells[3] + cells[4], t.meta.num_nodes() as u64, "{line}");
        }
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn zero_epoch_rejected() {
        power_timeline_csv(&trace(), 0);
    }
}
