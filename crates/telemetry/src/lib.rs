//! Zero-dependency cycle-level tracing and metrics for the Catnap
//! simulator.
//!
//! The paper's argument is temporal — routers napping and waking as
//! congestion ebbs (Catnap §3.2, §6) — and end-of-run aggregates cannot
//! show it. This crate provides the observability substrate:
//!
//! * [`event`] — cycle-stamped typed events ([`Event`]) covering router
//!   power transitions, BFM/RCS congestion flips, subnet-selection
//!   decisions and packet inject/eject, collected into a [`Trace`];
//! * [`sink`] — the statically-dispatched [`Sink`] trait. The simulator
//!   is generic over its sink with [`NopSink`] as the default, so a
//!   build without telemetry monomorphizes every instrumentation point
//!   to nothing (see DESIGN.md §10 for the overhead contract);
//! * [`metrics`] — monotonic counters, gauges and HDR-style
//!   log-bucketed histograms ([`Histogram`]) with exact merge, grouped
//!   in a [`Registry`];
//! * [`chrome`] — a Chrome `trace_event` JSON exporter
//!   ([`chrome_trace`]) whose output loads in `chrome://tracing` and
//!   Perfetto;
//! * [`csv`] — a per-epoch CSV timeline exporter
//!   ([`power_timeline_csv`]);
//! * [`diff`] — trace and CSV-timeline comparison ([`diff_traces`],
//!   [`diff_csv_timelines`]): first divergent cycle plus per-kind event
//!   count deltas, used by the fast-forward equivalence suite and the
//!   `trace_diff` example CLI.
//!
//! The crate depends only on `catnap-util` (for its JSON value type) and
//! the standard library, per the hermetic-workspace policy in DESIGN.md
//! §8; `tests/hermetic.rs` enforces this by scanning imports.

#![warn(missing_docs)]

pub mod chrome;
pub mod csv;
pub mod diff;
pub mod event;
pub mod metrics;
pub mod sink;

pub use chrome::chrome_trace;
pub use csv::power_timeline_csv;
pub use diff::{diff_csv_timelines, diff_traces, CsvDiff, TraceDiff};
pub use event::{Event, PowerPhase, SinkScope, Trace, TraceMeta};
pub use metrics::{Histogram, Registry};
pub use sink::{CountingSink, NopSink, RecordingSink, Sink};
