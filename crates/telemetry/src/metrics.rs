//! Metrics: monotonic counters, gauges, and log-bucketed histograms.
//!
//! The histogram is HDR-style: values below `2^sub_bits` land in exact
//! unit buckets; above that, each power-of-two octave is split into
//! `2^sub_bits` equal sub-buckets, bounding the relative quantization
//! error by `2^-sub_bits`. Bucket counts are plain `u64`s, so merging two
//! histograms of the same configuration is an elementwise add — exact,
//! associative, and loss-free (the property `latency_sweep`-style
//! fan-outs need to aggregate per-point histograms).

use catnap_util::json::{Json, ToJson};

/// A log-bucketed (HDR-style) histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Sub-bucket precision: `2^sub_bits` sub-buckets per octave.
    sub_bits: u32,
    /// Bucket counts, grown on demand; index per [`Histogram::bucket_index`].
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `2^sub_bits` sub-buckets per octave
    /// (relative error ≤ `2^-sub_bits` above the exact range).
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` is not in `1..=16`.
    pub fn new(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits must be in 1..=16");
        Histogram {
            sub_bits,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The default latency histogram: 32 sub-buckets per octave
    /// (≈3% relative error), exact below 32 cycles.
    pub fn latency() -> Self {
        Histogram::new(5)
    }

    /// The sub-bucket precision this histogram was built with.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Bucket index of a value: exact unit buckets below `2^sub_bits`,
    /// then `2^sub_bits` sub-buckets per octave.
    pub fn bucket_index(&self, value: u64) -> usize {
        let n = 1u64 << self.sub_bits;
        if value < n {
            return value as usize;
        }
        let top = 63 - u64::from(value.leading_zeros());
        let shift = top - u64::from(self.sub_bits);
        ((shift + 1) * n + (value >> shift) - n) as usize
    }

    /// Lowest value mapping to bucket `index`.
    pub fn bucket_low(&self, index: usize) -> u64 {
        let n = 1usize << self.sub_bits;
        if index < n {
            return index as u64;
        }
        let shift = (index / n - 1) as u32;
        ((n + index % n) as u64) << shift
    }

    /// Highest value mapping to bucket `index`.
    pub fn bucket_high(&self, index: usize) -> u64 {
        let n = 1usize << self.sub_bits;
        if index < n {
            return index as u64;
        }
        let shift = (index / n - 1) as u32;
        self.bucket_low(index) + (1u64 << shift) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value.saturating_mul(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 when empty. `q = 0.5` is the median.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram of the same configuration into this one.
    /// Exact: every bucket count, the total count and the sum add; no
    /// sample is re-quantized.
    ///
    /// # Panics
    ///
    /// Panics if the sub-bucket configurations differ (their bucket
    /// indices are incompatible).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms of different precision"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), self.bucket_high(i), c))
            .collect()
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count".to_string(), Json::Int(self.count as i64)),
            ("sum".to_string(), Json::Int(self.sum as i64)),
            ("min".to_string(), Json::Int(self.min() as i64)),
            ("max".to_string(), Json::Int(self.max as i64)),
            ("mean".to_string(), Json::Num(self.mean())),
            ("p50".to_string(), Json::Int(self.value_at_quantile(0.50) as i64)),
            ("p95".to_string(), Json::Int(self.value_at_quantile(0.95) as i64)),
            ("p99".to_string(), Json::Int(self.value_at_quantile(0.99) as i64)),
            (
                "buckets".to_string(),
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, hi, c)| {
                            Json::Arr(vec![Json::Int(lo as i64), Json::Int(hi as i64), Json::Int(c as i64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Names are looked up linearly — registries hold a handful of metrics
/// and are touched at reporting granularity, not per cycle. Insertion
/// order is preserved so serialized output is stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `by` to a monotonic counter, creating it at zero on first use.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name.to_string(), by)),
        }
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Records a sample into a named histogram (created with the default
    /// latency configuration on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Histogram::latency();
                h.record(value);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A named histogram, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merges another registry: counters add, histograms merge exactly,
    /// gauges take the other side's value (latest wins).
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, v) in &other.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Builds the standard per-run metrics from a trace: per-kind event
    /// counters, a `packet_latency_cycles` histogram from ejections, and
    /// sleep/wake transition counters.
    pub fn from_trace(trace: &crate::event::Trace) -> Registry {
        use crate::event::{Event, PowerPhase};
        let mut reg = Registry::new();
        let kinds = trace.kind_counts();
        for (i, name) in Event::KIND_NAMES.iter().enumerate() {
            reg.inc(&format!("events_{name}"), kinds[i]);
        }
        for ev in trace.policy.iter().chain(trace.subnets.iter().flatten()) {
            match *ev {
                Event::PacketEject { latency, .. } => {
                    reg.observe("packet_latency_cycles", u64::from(latency));
                }
                Event::Power { to, .. } => match to {
                    PowerPhase::Sleep => reg.inc("sleep_entries", 1),
                    PowerPhase::Active => reg.inc("wake_completions", 1),
                    PowerPhase::Wake => reg.inc("wake_starts", 1),
                },
                Event::Select { subnet, .. } => {
                    reg.inc(&format!("selects_subnet{subnet}"), 1);
                }
                _ => {}
            }
        }
        reg.set_gauge("cycles", trace.meta.cycles as f64);
        reg
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Int(*v as i64)))
            .collect::<Vec<_>>();
        let gauges = self.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.to_json()))
            .collect::<Vec<_>>();
        Json::obj([
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_two_to_sub_bits() {
        let h = Histogram::new(3);
        for v in 0..8u64 {
            assert_eq!(h.bucket_index(v), v as usize);
            assert_eq!(h.bucket_low(v as usize), v);
            assert_eq!(h.bucket_high(v as usize), v);
        }
    }

    #[test]
    fn octave_boundaries_are_tight() {
        let h = Histogram::new(3);
        // First log octave: [8, 16) in unit-width sub-buckets of width 1.
        assert_eq!(h.bucket_index(8), 8);
        assert_eq!(h.bucket_index(15), 15);
        // Second octave: [16, 32) in sub-buckets of width 2.
        assert_eq!(h.bucket_index(16), 16);
        assert_eq!(h.bucket_index(17), 16);
        assert_eq!(h.bucket_index(18), 17);
        assert_eq!(h.bucket_low(16), 16);
        assert_eq!(h.bucket_high(16), 17);
        // Every value maps into a bucket whose [low, high] contains it,
        // and indices are monotone in the value.
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let idx = h.bucket_index(v);
            assert!(h.bucket_low(idx) <= v && v <= h.bucket_high(idx), "v={v} idx={idx}");
            assert!(idx >= prev, "bucket index must be monotone at v={v}");
            prev = idx;
        }
    }

    #[test]
    fn relative_error_bounded() {
        let h = Histogram::new(5);
        for v in [100u64, 1_000, 12_345, 1_000_000, u64::from(u32::MAX)] {
            let idx = h.bucket_index(v);
            let width = h.bucket_high(idx) - h.bucket_low(idx);
            assert!(
                (width as f64) <= v as f64 / 32.0 + 1.0,
                "bucket width {width} too wide at {v}"
            );
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max_mean() {
        let mut h = Histogram::new(4);
        for v in [3u64, 50, 700] {
            h.record(v);
        }
        h.record_n(50, 2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 50 + 700 + 100);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 700);
        assert!((h.mean() - 853.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_counts_exactly() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        let mut reference = Histogram::new(5);
        for v in 0..500u64 {
            let x = (v * 7919) % 10_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            reference.record(x);
        }
        a.merge(&b);
        assert_eq!(a, reference, "merge must equal recording everything into one histogram");
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mismatched_precision() {
        let mut a = Histogram::new(3);
        a.merge(&Histogram::new(4));
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::latency();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.value_at_quantile(0.5);
        let p99 = h.value_at_quantile(0.99);
        assert!((480..=540).contains(&p50), "p50 {p50}");
        assert!((960..=1_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.value_at_quantile(1.0), 1_000);
        assert_eq!(Histogram::latency().value_at_quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        r.inc("pkts", 2);
        r.inc("pkts", 3);
        r.set_gauge("load", 0.1);
        r.set_gauge("load", 0.2);
        r.observe("lat", 10);
        assert_eq!(r.counter("pkts"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("load"), Some(0.2));
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.inc("n", 1);
        b.inc("n", 2);
        b.inc("only_b", 7);
        a.observe("lat", 5);
        b.observe("lat", 500);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("only_b"), 7);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 500);
    }

    #[test]
    fn registry_json_shape() {
        let mut r = Registry::new();
        r.inc("a", 1);
        r.observe("lat", 42);
        let j = r.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("a")).and_then(Json::as_u64),
            Some(1)
        );
        let lat = j.get("histograms").and_then(|h| h.get("lat")).expect("lat histogram");
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
        // Reparse round-trip through the pretty writer.
        let parsed = Json::parse(&j.to_pretty_string()).expect("registry JSON must reparse");
        assert_eq!(parsed.to_pretty_string(), j.to_pretty_string());
    }
}
