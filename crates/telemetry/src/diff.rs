//! Trace comparison: find where two runs stopped agreeing.
//!
//! The fast-forward engine (`catnap::MultiNoc::step_until`), the
//! parallel subnet stepping and the determinism goldens all make the
//! same promise: *bit-identical results*. When that promise breaks, an
//! end-of-run aggregate only says "different"; what a debugging session
//! needs is the **first divergent cycle** and a summary of what kind of
//! activity went missing or appeared. This module provides that for both
//! representations a run produces: the in-memory [`Trace`]
//! ([`diff_traces`]) and the exported per-epoch CSV timeline
//! ([`diff_csv_timelines`]).

use crate::event::{Event, Trace};
use std::fmt;

/// Location of the first disagreement between two event streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Which stream diverged: `"policy"` or `"subnet N"`.
    pub stream: String,
    /// Index of the first differing event within that stream.
    pub index: usize,
    /// Cycle stamp at the divergence point (the earlier of the two
    /// events' cycles; the present event's cycle if one stream ended).
    pub cycle: u64,
}

/// Outcome of comparing two [`Trace`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDiff {
    /// Earliest divergence across all streams (`None` = identical
    /// streams), picked by cycle stamp.
    pub first_divergence: Option<Divergence>,
    /// Per-kind event-count differences, `b - a`, indexed like
    /// [`Event::kind_index`] and named by [`Event::KIND_NAMES`].
    pub kind_count_deltas: [i64; 6],
    /// Whether the two meta blocks agreed (cycles, shape, policies).
    pub meta_equal: bool,
}

impl TraceDiff {
    /// Whether the traces were identical (streams *and* meta).
    pub fn is_identical(&self) -> bool {
        self.first_divergence.is_none() && self.meta_equal
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identical() {
            return write!(f, "traces identical");
        }
        if !self.meta_equal {
            writeln!(f, "meta blocks differ")?;
        }
        match &self.first_divergence {
            Some(d) => writeln!(
                f,
                "first divergence: cycle {} ({} stream, event #{})",
                d.cycle, d.stream, d.index
            )?,
            None => writeln!(f, "event streams identical")?,
        }
        for (name, delta) in Event::KIND_NAMES.iter().zip(self.kind_count_deltas) {
            if delta != 0 {
                writeln!(f, "  {name}: {delta:+}")?;
            }
        }
        Ok(())
    }
}

/// Where two event streams first disagree, if anywhere.
fn diverge_at(a: &[Event], b: &[Event]) -> Option<(usize, u64)> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Some((i, a[i].cycle().min(b[i].cycle())));
        }
    }
    if a.len() != b.len() {
        let longer = if a.len() > b.len() { a } else { b };
        return Some((common, longer[common].cycle()));
    }
    None
}

/// Compares two traces event-for-event.
///
/// Every stream (policy, then each subnet) is walked in order; the
/// reported divergence is the one with the smallest cycle stamp, so it
/// names the first simulated moment at which the runs disagreed
/// regardless of which stream carried the evidence.
pub fn diff_traces(a: &Trace, b: &Trace) -> TraceDiff {
    let mut first: Option<Divergence> = None;
    let mut consider = |stream: String, hit: Option<(usize, u64)>| {
        if let Some((index, cycle)) = hit {
            if first.as_ref().is_none_or(|d| cycle < d.cycle) {
                first = Some(Divergence { stream, index, cycle });
            }
        }
    };
    consider("policy".to_string(), diverge_at(&a.policy, &b.policy));
    let subnets = a.subnets.len().max(b.subnets.len());
    for s in 0..subnets {
        let sa = a.subnets.get(s).map_or(&[][..], Vec::as_slice);
        let sb = b.subnets.get(s).map_or(&[][..], Vec::as_slice);
        consider(format!("subnet {s}"), diverge_at(sa, sb));
    }
    let ca = a.kind_counts();
    let cb = b.kind_counts();
    let mut kind_count_deltas = [0i64; 6];
    for i in 0..6 {
        kind_count_deltas[i] = cb[i] as i64 - ca[i] as i64;
    }
    TraceDiff {
        first_divergence: first,
        kind_count_deltas,
        meta_equal: a.meta == b.meta,
    }
}

/// Outcome of comparing two exported CSV timelines line-by-line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvDiff {
    /// First differing line: (1-based line number, line from `a`, line
    /// from `b`); a missing line is reported as `""`.
    pub first_divergent_line: Option<(usize, String, String)>,
    /// Per-column sum differences `b - a` over the numeric count
    /// columns, as `(column name, delta)`; only non-zero deltas are
    /// listed.
    pub column_deltas: Vec<(String, i64)>,
}

impl CsvDiff {
    /// Whether the two timelines were byte-identical line-by-line.
    pub fn is_identical(&self) -> bool {
        self.first_divergent_line.is_none()
    }
}

impl fmt::Display for CsvDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.first_divergent_line {
            None => write!(f, "timelines identical"),
            Some((line, a, b)) => {
                writeln!(f, "first divergence at line {line}:")?;
                writeln!(f, "  a: {a}")?;
                writeln!(f, "  b: {b}")?;
                for (name, delta) in &self.column_deltas {
                    writeln!(f, "  sum({name}): {delta:+}")?;
                }
                Ok(())
            }
        }
    }
}

/// Compares two CSV timelines (as produced by
/// [`power_timeline_csv`](crate::csv::power_timeline_csv), but any CSV
/// with a header row and numeric cells works).
///
/// Reports the first line where the files differ and, per numeric
/// column (skipping the first two key columns, `epoch_start,subnet`),
/// the difference of the column sums — a quick read on *what kind* of
/// activity diverged, not just where.
pub fn diff_csv_timelines(a: &str, b: &str) -> CsvDiff {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut first = None;
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        match (la.next(), lb.next()) {
            (None, None) => break,
            (ra, rb) => {
                let ra = ra.unwrap_or("");
                let rb = rb.unwrap_or("");
                if ra != rb {
                    first = Some((line_no, ra.to_string(), rb.to_string()));
                    break;
                }
            }
        }
    }

    let mut column_deltas = Vec::new();
    if first.is_some() {
        let header: Vec<&str> = a.lines().next().unwrap_or("").split(',').collect();
        let sums = |text: &str| -> Vec<i64> {
            let mut sums = vec![0i64; header.len()];
            for line in text.lines().skip(1) {
                for (i, cell) in line.split(',').enumerate().take(header.len()) {
                    if let Ok(v) = cell.parse::<i64>() {
                        sums[i] += v;
                    }
                }
            }
            sums
        };
        let sa = sums(a);
        let sb = sums(b);
        for (i, name) in header.iter().enumerate().skip(2) {
            let delta = sb[i] - sa[i];
            if delta != 0 {
                column_deltas.push((name.to_string(), delta));
            }
        }
    }
    CsvDiff {
        first_divergent_line: first,
        column_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PowerPhase, TraceMeta};

    fn meta() -> TraceMeta {
        TraceMeta {
            name: "t".into(),
            cols: 2,
            rows: 2,
            subnets: 2,
            cycles: 100,
            selector: "catnap-priority".into(),
            gating: "catnap-rcs".into(),
        }
    }

    fn base_trace() -> Trace {
        Trace {
            meta: meta(),
            policy: vec![
                Event::Select {
                    cycle: 5,
                    node: 0,
                    subnet: 0,
                    congested_mask: 0,
                },
                Event::PacketInject {
                    cycle: 5,
                    id: 1,
                    subnet: 0,
                    src: 0,
                    dst: 3,
                },
                Event::PacketEject {
                    cycle: 40,
                    id: 1,
                    subnet: 0,
                    dst: 3,
                    latency: 35,
                },
            ],
            subnets: vec![
                vec![Event::Power {
                    cycle: 20,
                    node: 1,
                    from: PowerPhase::Active,
                    to: PowerPhase::Sleep,
                }],
                vec![],
            ],
        }
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = base_trace();
        let d = diff_traces(&a, &a.clone());
        assert!(d.is_identical());
        assert_eq!(d.kind_count_deltas, [0; 6]);
        assert_eq!(format!("{d}"), "traces identical");
    }

    #[test]
    fn earliest_cycle_wins_across_streams() {
        let a = base_trace();
        let mut b = base_trace();
        // Policy diverges at cycle 40, subnet 0 at cycle 20: the report
        // must name the subnet stream.
        b.policy[2] = Event::PacketEject {
            cycle: 40,
            id: 1,
            subnet: 0,
            dst: 3,
            latency: 36,
        };
        b.subnets[0][0] = Event::Power {
            cycle: 20,
            node: 2,
            from: PowerPhase::Active,
            to: PowerPhase::Sleep,
        };
        let d = diff_traces(&a, &b);
        let div = d.first_divergence.expect("must diverge");
        assert_eq!(div.stream, "subnet 0");
        assert_eq!(div.cycle, 20);
        assert_eq!(div.index, 0);
        assert!(d.meta_equal);
    }

    #[test]
    fn missing_events_count_as_divergence_with_deltas() {
        let a = base_trace();
        let mut b = base_trace();
        b.subnets[0].push(Event::Power {
            cycle: 90,
            node: 1,
            from: PowerPhase::Sleep,
            to: PowerPhase::Wake,
        });
        b.policy.pop();
        let d = diff_traces(&a, &b);
        let div = d.first_divergence.clone().expect("must diverge");
        assert_eq!(div.stream, "policy");
        assert_eq!(
            (div.index, div.cycle),
            (2, 40),
            "prefix-end divergence stamps the extra event"
        );
        assert_eq!(d.kind_count_deltas[0], 1, "one extra power event");
        assert_eq!(d.kind_count_deltas[5], -1, "one missing eject");
        let report = format!("{d}");
        assert!(
            report.contains("power: +1") && report.contains("packet_eject: -1"),
            "{report}"
        );
    }

    #[test]
    fn meta_mismatch_reported_even_with_equal_streams() {
        let a = base_trace();
        let mut b = base_trace();
        b.meta.cycles = 200;
        let d = diff_traces(&a, &b);
        assert!(!d.is_identical());
        assert!(d.first_divergence.is_none());
        assert!(!d.meta_equal);
    }

    #[test]
    fn csv_diff_reports_line_and_column_deltas() {
        let a = "epoch_start,subnet,active,ejected\n0,0,4,2\n100,0,4,0\n";
        let b = "epoch_start,subnet,active,ejected\n0,0,4,2\n100,0,3,1\n";
        let d = diff_csv_timelines(a, b);
        let (line, la, lb) = d.first_divergent_line.clone().expect("must diverge");
        assert_eq!(line, 3);
        assert_eq!(la, "100,0,4,0");
        assert_eq!(lb, "100,0,3,1");
        assert_eq!(
            d.column_deltas,
            vec![("active".to_string(), -1), ("ejected".to_string(), 1)]
        );
        assert!(format!("{d}").contains("line 3"));
    }

    #[test]
    fn csv_diff_handles_truncated_files() {
        let a = "h,x\n1,2\n3,4\n";
        let b = "h,x\n1,2\n";
        let d = diff_csv_timelines(a, b);
        assert_eq!(d.first_divergent_line.as_ref().unwrap().0, 3);
        assert_eq!(d.first_divergent_line.unwrap().2, "", "missing line reads as empty");
        assert!(diff_csv_timelines(a, a).is_identical());
    }
}
