//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of metadata ("M"), complete ("X") and
//! instant ("i") events. Layout:
//!
//! * one *process* per subnet (`pid` = subnet index) named
//!   `subnet <s> (<config>)`;
//! * one *thread* per router (`tid` = node index) named `router (c,r)`,
//!   carrying the router's power phases as back-to-back "X" duration
//!   events (`active` / `sleep` / `wake`) plus its Lcs flips as instants;
//! * one extra *process* (`pid` = subnet count) named `policy`, whose
//!   threads are the injecting nodes (selection decisions and packet
//!   inject/eject instants) and the OR-network regions
//!   (`tid = 1000 + region`, Rcs flips).
//!
//! Timestamps are in cycles, written to the `ts`/`dur` microsecond
//! fields verbatim — absolute time units don't matter for inspection,
//! and integer cycle stamps keep the export byte-stable.

use crate::event::{Event, PowerPhase, Trace};
use catnap_util::json::Json;

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn i(v: u64) -> Json {
    Json::Int(v as i64)
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut fields = vec![
        ("name".to_string(), s(name)),
        ("ph".to_string(), s("M")),
        ("pid".to_string(), i(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), i(tid)));
    }
    fields.push(("args".to_string(), Json::obj([("name".to_string(), s(value))])));
    Json::Obj(fields)
}

fn complete_event(name: &str, pid: u64, tid: u64, ts: u64, dur: u64) -> Json {
    Json::obj([
        ("name".to_string(), s(name)),
        ("ph".to_string(), s("X")),
        ("pid".to_string(), i(pid)),
        ("tid".to_string(), i(tid)),
        ("ts".to_string(), i(ts)),
        ("dur".to_string(), i(dur)),
    ])
}

fn instant_event(name: &str, pid: u64, tid: u64, ts: u64, args: Vec<(String, Json)>) -> Json {
    Json::obj([
        ("name".to_string(), s(name)),
        ("ph".to_string(), s("i")),
        ("s".to_string(), s("t")),
        ("pid".to_string(), i(pid)),
        ("tid".to_string(), i(tid)),
        ("ts".to_string(), i(ts)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

/// Thread id used for region tracks in the policy process, offset so
/// they sort after any realistic node id.
const REGION_TID_BASE: u64 = 1000;

/// Converts a [`Trace`] into a Chrome `trace_event` JSON object.
///
/// The result is self-contained: serialize it with
/// `to_pretty_string()` (or `to_compact_string()`) and the file loads
/// directly in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let num_nodes = trace.meta.num_nodes();
    let policy_pid = trace.meta.subnets as u64;

    // Process / thread naming metadata first, so viewers label tracks
    // even when a track's first real event comes late.
    for subnet in 0..trace.meta.subnets {
        let pid = subnet as u64;
        events.push(meta_event(
            "process_name",
            pid,
            None,
            &format!("subnet {subnet} ({})", trace.meta.name),
        ));
        for node in 0..num_nodes {
            let (c, r) = (node as u16 % trace.meta.cols, node as u16 / trace.meta.cols);
            events.push(meta_event(
                "thread_name",
                pid,
                Some(node as u64),
                &format!("router ({c},{r})"),
            ));
        }
    }
    events.push(meta_event(
        "process_name",
        policy_pid,
        None,
        &format!("policy ({} / {})", trace.meta.selector, trace.meta.gating),
    ));

    // Per-subnet streams: power phases as duration events. Each router's
    // phase intervals are reconstructed from its transition events; every
    // router starts Active at cycle 0 and the final interval is closed at
    // meta.cycles.
    for (subnet, stream) in trace.subnets.iter().enumerate() {
        let pid = subnet as u64;
        let mut phase: Vec<(PowerPhase, u64)> = vec![(PowerPhase::Active, 0); num_nodes];
        for ev in stream {
            match *ev {
                Event::Power { cycle, node, from, to } => {
                    let (cur, since) = phase[node as usize];
                    debug_assert_eq!(cur, from, "power stream out of order");
                    let _ = from;
                    if cycle > since {
                        events.push(complete_event(cur.label(), pid, u64::from(node), since, cycle - since));
                    }
                    phase[node as usize] = (to, cycle);
                }
                Event::Lcs { cycle, node, on, .. } => {
                    events.push(instant_event(
                        if on { "congested" } else { "uncongested" },
                        pid,
                        u64::from(node),
                        cycle,
                        vec![("on".to_string(), Json::Bool(on))],
                    ));
                }
                _ => {}
            }
        }
        for (node, &(cur, since)) in phase.iter().enumerate() {
            if trace.meta.cycles > since {
                events.push(complete_event(
                    cur.label(),
                    pid,
                    node as u64,
                    since,
                    trace.meta.cycles - since,
                ));
            }
        }
    }

    // Policy stream: selection decisions, packet lifecycle, Rcs flips.
    for ev in &trace.policy {
        match *ev {
            Event::Select {
                cycle,
                node,
                subnet,
                congested_mask,
            } => {
                events.push(instant_event(
                    &format!("select s{subnet}"),
                    policy_pid,
                    u64::from(node),
                    cycle,
                    vec![
                        ("subnet".to_string(), i(u64::from(subnet))),
                        ("congested_mask".to_string(), i(u64::from(congested_mask))),
                    ],
                ));
            }
            Event::PacketInject {
                cycle,
                id,
                subnet,
                src,
                dst,
            } => {
                events.push(instant_event(
                    &format!("inject s{subnet}"),
                    policy_pid,
                    u64::from(src),
                    cycle,
                    vec![("id".to_string(), i(id)), ("dst".to_string(), i(u64::from(dst)))],
                ));
            }
            Event::PacketEject {
                cycle,
                id,
                subnet,
                dst,
                latency,
            } => {
                events.push(instant_event(
                    &format!("eject s{subnet}"),
                    policy_pid,
                    u64::from(dst),
                    cycle,
                    vec![
                        ("id".to_string(), i(id)),
                        ("latency".to_string(), i(u64::from(latency))),
                    ],
                ));
            }
            Event::Rcs {
                cycle,
                subnet,
                region,
                on,
            } => {
                events.push(instant_event(
                    &format!("rcs s{subnet} {}", if on { "on" } else { "off" }),
                    policy_pid,
                    REGION_TID_BASE + u64::from(region),
                    cycle,
                    vec![
                        ("subnet".to_string(), i(u64::from(subnet))),
                        ("on".to_string(), Json::Bool(on)),
                    ],
                ));
            }
            Event::Lcs {
                cycle,
                subnet,
                node,
                on,
            } => {
                // Policy-side Lcs flips (detector layer) land on the
                // owning subnet's router track.
                events.push(instant_event(
                    if on { "congested" } else { "uncongested" },
                    u64::from(subnet),
                    u64::from(node),
                    cycle,
                    vec![("on".to_string(), Json::Bool(on))],
                ));
            }
            Event::Power { .. } => {}
        }
    }

    Json::obj([
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), s("ms")),
        (
            "otherData".to_string(),
            Json::obj([
                ("config".to_string(), s(&trace.meta.name)),
                ("selector".to_string(), s(&trace.meta.selector)),
                ("gating".to_string(), s(&trace.meta.gating)),
                ("cycles".to_string(), i(trace.meta.cycles)),
                (
                    "mesh".to_string(),
                    s(&format!("{}x{}", trace.meta.cols, trace.meta.rows)),
                ),
                ("time_unit".to_string(), s("cycles")),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceMeta;

    fn small_trace() -> Trace {
        Trace {
            meta: TraceMeta {
                name: "2NT-test".into(),
                cols: 2,
                rows: 2,
                subnets: 2,
                cycles: 100,
                selector: "round-robin".into(),
                gating: "catnap-rcs".into(),
            },
            policy: vec![
                Event::Select {
                    cycle: 5,
                    node: 0,
                    subnet: 1,
                    congested_mask: 0b01,
                },
                Event::PacketInject {
                    cycle: 5,
                    id: 1,
                    subnet: 1,
                    src: 0,
                    dst: 3,
                },
                Event::Rcs {
                    cycle: 6,
                    subnet: 1,
                    region: 0,
                    on: true,
                },
                Event::Lcs {
                    cycle: 6,
                    subnet: 1,
                    node: 0,
                    on: true,
                },
                Event::PacketEject {
                    cycle: 20,
                    id: 1,
                    subnet: 1,
                    dst: 3,
                    latency: 15,
                },
            ],
            subnets: vec![
                vec![
                    Event::Power {
                        cycle: 10,
                        node: 2,
                        from: PowerPhase::Active,
                        to: PowerPhase::Sleep,
                    },
                    Event::Power {
                        cycle: 40,
                        node: 2,
                        from: PowerPhase::Sleep,
                        to: PowerPhase::Wake,
                    },
                    Event::Power {
                        cycle: 44,
                        node: 2,
                        from: PowerPhase::Wake,
                        to: PowerPhase::Active,
                    },
                ],
                vec![],
            ],
        }
    }

    #[test]
    fn export_reparses_and_has_expected_shape() {
        let j = chrome_trace(&small_trace());
        let text = j.to_pretty_string();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let evs = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        assert!(!evs.is_empty());
        // Every event carries ph + pid; X events carry ts + dur.
        for ev in evs {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            assert!(ev.get("pid").is_some());
            if ph == "X" {
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
            }
        }
        assert_eq!(
            parsed.get("otherData").and_then(|o| o.get("cycles")).and_then(Json::as_u64),
            Some(100)
        );
    }

    #[test]
    fn power_intervals_tile_the_run() {
        let j = chrome_trace(&small_trace());
        // Node 2 on subnet 0: active [0,10), sleep [10,40), wake [40,44),
        // active [44,100). Durations must sum to the run length.
        let evs = j.get("traceEvents").and_then(Json::as_array).unwrap();
        let durs: u64 = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").and_then(Json::as_u64) == Some(0)
                    && e.get("tid").and_then(Json::as_u64) == Some(2)
            })
            .map(|e| e.get("dur").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(durs, 100);
    }

    #[test]
    fn idle_routers_get_one_full_active_interval() {
        let j = chrome_trace(&small_trace());
        let evs = j.get("traceEvents").and_then(Json::as_array).unwrap();
        let node0 = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").and_then(Json::as_u64) == Some(1)
                    && e.get("tid").and_then(Json::as_u64) == Some(0)
            })
            .collect::<Vec<_>>();
        assert_eq!(node0.len(), 1);
        assert_eq!(node0[0].get("name").and_then(Json::as_str), Some("active"));
        assert_eq!(node0[0].get("dur").and_then(Json::as_u64), Some(100));
    }
}
