//! Event sinks: where instrumentation points send their events.
//!
//! Dispatch is static. The simulator structures are generic over
//! `S: Sink` (defaulting to [`NopSink`]), and every instrumentation point
//! is written as
//!
//! ```ignore
//! if S::ENABLED {
//!     self.sink.record(Event::...);
//! }
//! ```
//!
//! `ENABLED` is an associated `const`, so for the `NopSink`
//! monomorphization the branch — including the argument construction —
//! is dead code the compiler removes entirely. Disabled telemetry is not
//! "cheap"; it is *absent* (the overhead contract in DESIGN.md §10).

use crate::event::Event;

/// A consumer of telemetry events.
///
/// `Send` is a supertrait because per-subnet sinks ride their `Network`
/// onto the stepping thread pool. Implementations must not observe
/// simulation state or feed anything back — determinism goldens are
/// asserted bit-identical with and without a recording sink attached.
pub trait Sink: Send {
    /// Statically known on/off switch; `false` compiles every
    /// instrumentation point out of the monomorphized hot loop.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: Event);

    /// Hands back everything recorded so far, leaving the sink empty.
    /// Sinks that do not retain events return nothing.
    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// The default sink: keeps nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NopSink;

impl Sink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// Buffers every event in memory, optionally bounded.
///
/// With a bound, events beyond it are counted in
/// [`RecordingSink::dropped`] rather than stored, so a runaway run
/// degrades to a truncated trace instead of unbounded memory growth.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    events: Vec<Event>,
    limit: Option<usize>,
    dropped: u64,
}

impl RecordingSink {
    /// An unbounded recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// A recording sink that stores at most `limit` events.
    pub fn with_limit(limit: usize) -> Self {
        RecordingSink {
            events: Vec::new(),
            limit: Some(limit),
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the buffer limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Read access to the buffered events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl Sink for RecordingSink {
    fn record(&mut self, event: Event) {
        if self.limit.is_some_and(|l| self.events.len() >= l) {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

/// Counts events per kind without storing them — constant memory, useful
/// for overhead measurements and smoke assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    counts: [u64; 6],
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Count of one event kind (index as in [`Event::kind_index`]).
    pub fn count_of(&self, kind_index: usize) -> u64 {
        self.counts[kind_index]
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// All per-kind counts, indexed like [`Event::kind_index`].
    pub fn counts(&self) -> [u64; 6] {
        self.counts
    }
}

impl Sink for CountingSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.counts[event.kind_index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PowerPhase;

    fn ev(cycle: u64) -> Event {
        Event::Power {
            cycle,
            node: 0,
            from: PowerPhase::Active,
            to: PowerPhase::Sleep,
        }
    }

    #[test]
    fn nop_sink_is_statically_disabled() {
        const { assert!(!NopSink::ENABLED) };
        let mut s = NopSink;
        s.record(ev(1));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn recording_sink_buffers_and_drains() {
        let mut s = RecordingSink::new();
        const { assert!(RecordingSink::ENABLED) };
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.len(), 2);
        let evs = s.drain();
        assert_eq!(evs.len(), 2);
        assert!(s.is_empty());
        assert_eq!(evs[1].cycle(), 2);
    }

    #[test]
    fn recording_sink_limit_drops_and_counts() {
        let mut s = RecordingSink::with_limit(2);
        for c in 0..5 {
            s.record(ev(c));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::new();
        s.record(ev(1));
        s.record(Event::Select {
            cycle: 2,
            node: 0,
            subnet: 1,
            congested_mask: 1,
        });
        s.record(ev(3));
        assert_eq!(s.count_of(0), 2);
        assert_eq!(s.count_of(3), 1);
        assert_eq!(s.total(), 3);
        assert!(s.drain().is_empty(), "counting sink retains no events");
    }
}
