//! Cycle-stamped typed events and the trace container they accumulate in.
//!
//! Events are small `Copy` structs so recording one is a bounds check and
//! a 24-byte store; the hot loop never formats, allocates or boxes. The
//! exporters ([`crate::chrome`], [`crate::csv`]) and the metrics builder
//! ([`crate::metrics::Registry::from_trace`]) interpret them after the
//! run.

/// Coarse power phase of a router, as seen by telemetry.
///
/// This is the telemetry-side mirror of `catnap_noc::PowerState` with the
/// wake-up countdown erased: a trace cares *when* the phase changed, not
/// how many countdown cycles remain. `catnap-noc` provides the
/// `From<PowerState>` conversion (telemetry sits below the simulator in
/// the dependency graph and cannot name its types).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerPhase {
    /// Powered and operational.
    Active,
    /// Power gated.
    Sleep,
    /// Charging back up to Vdd.
    Wake,
}

impl PowerPhase {
    /// Short lower-case label used in trace names and CSV cells.
    pub fn label(self) -> &'static str {
        match self {
            PowerPhase::Active => "active",
            PowerPhase::Sleep => "sleep",
            PowerPhase::Wake => "wake",
        }
    }
}

/// One cycle-stamped simulation event.
///
/// Node, subnet and region identifiers are kept at their natural widths
/// so the whole enum stays 24 bytes; a recording run at light load emits
/// a few events per cycle, not per router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A router changed power phase (emitted by the subnet `Network`).
    Power {
        /// Cycle of the transition.
        cycle: u64,
        /// Router / node index.
        node: u16,
        /// Phase before the transition.
        from: PowerPhase,
        /// Phase after the transition.
        to: PowerPhase,
    },
    /// A node's local congestion status (BFM/IQOcc bit) flipped.
    Lcs {
        /// Cycle of the flip.
        cycle: u64,
        /// Subnet whose detector flipped.
        subnet: u8,
        /// Node index.
        node: u16,
        /// New value of the bit.
        on: bool,
    },
    /// A region's latched regional congestion status flipped.
    Rcs {
        /// Cycle of the OR-network latch.
        cycle: u64,
        /// Subnet whose OR network latched.
        subnet: u8,
        /// Region index.
        region: u8,
        /// New latched value.
        on: bool,
    },
    /// The subnet selector assigned a head-of-queue packet to a subnet.
    Select {
        /// Cycle of the decision.
        cycle: u64,
        /// Injecting node.
        node: u16,
        /// Chosen subnet.
        subnet: u8,
        /// Congestion view the selector saw, bit `s` = subnet `s`
        /// congested (see `catnap::select::congestion_mask`).
        congested_mask: u8,
    },
    /// A packet started streaming into a subnet's local router.
    PacketInject {
        /// Cycle injection started.
        cycle: u64,
        /// Packet id.
        id: u64,
        /// Carrying subnet.
        subnet: u8,
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
    },
    /// A packet's tail flit was ejected at its destination.
    PacketEject {
        /// Cycle of tail ejection.
        cycle: u64,
        /// Packet id.
        id: u64,
        /// Carrying subnet.
        subnet: u8,
        /// Destination node.
        dst: u16,
        /// End-to-end latency in cycles (creation to tail ejection).
        latency: u32,
    },
}

impl Event {
    /// Human-readable names of the event kinds, indexed by
    /// [`Event::kind_index`].
    pub const KIND_NAMES: [&'static str; 6] = ["power", "lcs", "rcs", "select", "packet_inject", "packet_eject"];

    /// The cycle this event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Power { cycle, .. }
            | Event::Lcs { cycle, .. }
            | Event::Rcs { cycle, .. }
            | Event::Select { cycle, .. }
            | Event::PacketInject { cycle, .. }
            | Event::PacketEject { cycle, .. } => cycle,
        }
    }

    /// Dense index of the event kind (for counting sinks and summaries).
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Power { .. } => 0,
            Event::Lcs { .. } => 1,
            Event::Rcs { .. } => 2,
            Event::Select { .. } => 3,
            Event::PacketInject { .. } => 4,
            Event::PacketEject { .. } => 5,
        }
    }
}

/// Which component of a `MultiNoc` a sink instance is attached to.
///
/// The simulator asks a factory for one sink per scope so per-subnet
/// event streams stay thread-local while the subnets step in parallel;
/// the streams are only merged (serially) when the trace is collected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkScope {
    /// The serial policy layer: selection, congestion bits, packet
    /// inject/eject.
    Policy,
    /// One subnet network: router power transitions.
    Subnet(usize),
}

/// Run parameters a trace carries so exporters can label tracks and
/// close open intervals without access to the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Configuration name (e.g. `4NT-128b-PG`).
    pub name: String,
    /// Mesh columns.
    pub cols: u16,
    /// Mesh rows.
    pub rows: u16,
    /// Number of subnets.
    pub subnets: usize,
    /// Cycles simulated when the trace was collected (closes the last
    /// power interval of every router).
    pub cycles: u64,
    /// Subnet-selection policy name.
    pub selector: String,
    /// Power-gating policy name.
    pub gating: String,
}

impl TraceMeta {
    /// Nodes in the mesh.
    pub fn num_nodes(&self) -> usize {
        self.cols as usize * self.rows as usize
    }
}

/// A collected run trace: the policy-level event stream plus one power
/// event stream per subnet, each in non-decreasing cycle order.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Run parameters.
    pub meta: TraceMeta,
    /// Events emitted by the serial policy layer.
    pub policy: Vec<Event>,
    /// Power events per subnet (index = subnet).
    pub subnets: Vec<Vec<Event>>,
}

impl Trace {
    /// Total number of events across all streams.
    pub fn num_events(&self) -> usize {
        self.policy.len() + self.subnets.iter().map(Vec::len).sum::<usize>()
    }

    /// Counts of each event kind, indexed like [`Event::kind_index`].
    pub fn kind_counts(&self) -> [u64; 6] {
        let mut counts = [0u64; 6];
        for ev in self.policy.iter().chain(self.subnets.iter().flatten()) {
            counts[ev.kind_index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_small() {
        // The hot-loop cost of recording is one store of this size.
        assert!(std::mem::size_of::<Event>() <= 24, "{}", std::mem::size_of::<Event>());
    }

    #[test]
    fn cycle_and_kind_cover_all_variants() {
        let evs = [
            Event::Power {
                cycle: 1,
                node: 0,
                from: PowerPhase::Active,
                to: PowerPhase::Sleep,
            },
            Event::Lcs {
                cycle: 2,
                subnet: 0,
                node: 3,
                on: true,
            },
            Event::Rcs {
                cycle: 3,
                subnet: 1,
                region: 2,
                on: false,
            },
            Event::Select {
                cycle: 4,
                node: 5,
                subnet: 2,
                congested_mask: 0b0011,
            },
            Event::PacketInject {
                cycle: 5,
                id: 9,
                subnet: 0,
                src: 1,
                dst: 2,
            },
            Event::PacketEject {
                cycle: 6,
                id: 9,
                subnet: 0,
                dst: 2,
                latency: 40,
            },
        ];
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.cycle(), i as u64 + 1);
            assert_eq!(ev.kind_index(), i);
        }
        assert_eq!(Event::KIND_NAMES.len(), 6);
    }

    #[test]
    fn trace_counts_all_streams() {
        let meta = TraceMeta {
            name: "t".into(),
            cols: 2,
            rows: 2,
            subnets: 2,
            cycles: 10,
            selector: "round-robin".into(),
            gating: "no-gating".into(),
        };
        let t = Trace {
            meta,
            policy: vec![Event::Select {
                cycle: 1,
                node: 0,
                subnet: 0,
                congested_mask: 0,
            }],
            subnets: vec![
                vec![Event::Power {
                    cycle: 2,
                    node: 1,
                    from: PowerPhase::Active,
                    to: PowerPhase::Sleep,
                }],
                vec![],
            ],
        };
        assert_eq!(t.num_events(), 2);
        assert_eq!(t.kind_counts()[0], 1);
        assert_eq!(t.kind_counts()[3], 1);
        assert_eq!(t.meta.num_nodes(), 4);
    }
}
