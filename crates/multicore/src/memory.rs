//! Bandwidth-limited memory controllers.
//!
//! Each controller accepts block requests, starts them at a bounded rate
//! (modelling DDR channel bandwidth: 16 GB/s per controller at 2 GHz is
//! one 64-byte block every 8 cycles), holds each for the DRAM access
//! latency, and then releases the response. Requests beyond the queue
//! depth are refused back-pressure-style by the system (held at the home
//! node).

use std::collections::VecDeque;

/// Opaque token identifying a queued memory request (the system maps it
/// back to a transaction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemToken(pub u64);

/// One memory controller.
#[derive(Clone, Debug)]
pub struct MemoryController {
    latency: u32,
    requests_per_cycle: f64,
    queue_depth: usize,
    credits: f64,
    waiting: VecDeque<MemToken>,
    in_service: Vec<(u64, MemToken)>,
    /// Total requests accepted.
    pub accepted: u64,
    /// Total responses released.
    pub completed: u64,
}

impl MemoryController {
    /// Creates a controller with the given DRAM latency (cycles), issue
    /// bandwidth (requests per cycle, may be fractional) and queue depth.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth or zero queue depth.
    pub fn new(latency: u32, requests_per_cycle: f64, queue_depth: usize) -> Self {
        assert!(requests_per_cycle > 0.0, "bandwidth must be positive");
        assert!(queue_depth > 0, "queue depth must be non-zero");
        MemoryController {
            latency,
            requests_per_cycle,
            queue_depth,
            credits: 0.0,
            waiting: VecDeque::new(),
            in_service: Vec::new(),
            accepted: 0,
            completed: 0,
        }
    }

    /// Outstanding requests (waiting plus in service).
    pub fn occupancy(&self) -> usize {
        self.waiting.len() + self.in_service.len()
    }

    /// Whether another request can be accepted.
    pub fn can_accept(&self) -> bool {
        self.occupancy() < self.queue_depth
    }

    /// Enqueues a request. Returns `false` (rejecting it) when full.
    pub fn accept(&mut self, token: MemToken) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.waiting.push_back(token);
        self.accepted += 1;
        true
    }

    /// Advances one cycle; pushes tokens whose responses are ready into
    /// `ready`.
    pub fn tick(&mut self, cycle: u64, ready: &mut Vec<MemToken>) {
        // Issue new accesses at the bandwidth limit.
        self.credits = (self.credits + self.requests_per_cycle).min(4.0);
        while self.credits >= 1.0 {
            let Some(tok) = self.waiting.pop_front() else { break };
            self.credits -= 1.0;
            self.in_service.push((cycle + u64::from(self.latency), tok));
        }
        // Release completed accesses.
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= cycle {
                let (_, tok) = self.in_service.swap_remove(i);
                ready.push(tok);
                self.completed += 1;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_single_request() {
        let mut mc = MemoryController::new(80, 1.0, 16);
        assert!(mc.accept(MemToken(1)));
        let mut ready = Vec::new();
        for cycle in 0..=81 {
            mc.tick(cycle, &mut ready);
        }
        assert_eq!(ready, vec![MemToken(1)]);
        assert_eq!(mc.completed, 1);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        // One block per 8 cycles: 100 requests need ~800 cycles to issue.
        let mut mc = MemoryController::new(10, 0.125, 1000);
        for i in 0..100 {
            assert!(mc.accept(MemToken(i)));
        }
        let mut ready = Vec::new();
        let mut done_at = 0;
        for cycle in 0..2_000 {
            mc.tick(cycle, &mut ready);
            if ready.len() == 100 && done_at == 0 {
                done_at = cycle;
            }
        }
        assert_eq!(ready.len(), 100);
        assert!(
            (790..=830).contains(&done_at),
            "bandwidth-bound completion at {done_at}, expected ~800"
        );
    }

    #[test]
    fn queue_depth_backpressure() {
        let mut mc = MemoryController::new(80, 0.125, 4);
        for i in 0..4 {
            assert!(mc.accept(MemToken(i)));
        }
        assert!(!mc.can_accept());
        assert!(!mc.accept(MemToken(99)));
        let mut ready = Vec::new();
        for cycle in 0..100 {
            mc.tick(cycle, &mut ready);
        }
        assert!(mc.can_accept(), "space frees as responses drain");
    }

    #[test]
    fn responses_preserve_order_under_fifo_issue() {
        let mut mc = MemoryController::new(20, 1.0, 16);
        for i in 0..5 {
            mc.accept(MemToken(i));
        }
        let mut ready = Vec::new();
        for cycle in 0..60 {
            mc.tick(cycle, &mut ready);
        }
        let ids: Vec<u64> = ready.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        MemoryController::new(80, 0.0, 4);
    }
}
