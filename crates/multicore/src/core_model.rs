//! Interval-style core model.
//!
//! Each core commits up to `commit_width` instructions per cycle. With a
//! per-instruction probability derived from the benchmark's MPKI, an
//! instruction is a long-latency miss: the core allocates an MSHR, issues
//! the miss (the system turns it into a coherence transaction over the
//! network) and keeps committing — modelling out-of-order memory-level
//! parallelism — until either all MSHRs are busy or the oldest
//! outstanding miss exceeds the instruction window (ROB fill), at which
//! point the core stalls until that miss's data returns.
//!
//! Phase behaviour: the benchmark's `burst_fraction` / `burst_boost`
//! parameters alternate the core between memory-intensive bursts and
//! compute phases whose rates average back to the nominal MPKI,
//! reproducing the bursty traffic the paper highlights (Section 2.4).

use catnap_traffic::Benchmark;
use catnap_util::SimRng;

/// Identifier of an outstanding miss (unique per core).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MissId(pub u64);

/// A miss the core wants to issue this cycle.
#[derive(Clone, Copy, Debug)]
pub struct MissRequest {
    /// Per-core miss identifier.
    pub id: MissId,
    /// Whether the miss is a write (may trigger invalidations and a
    /// dirty-block writeback).
    pub is_write: bool,
}

struct Outstanding {
    id: MissId,
    /// The miss blocks retirement once this many instructions have
    /// committed (ROB full).
    deadline_insts: u64,
}

/// One core executing a synthetic benchmark.
pub struct Core {
    bench: &'static Benchmark,
    commit_width: u32,
    window: u64,
    mshrs: usize,
    rng: SimRng,
    outstanding: Vec<Outstanding>,
    next_miss: u64,
    /// Remaining misses of the current miss cluster.
    cluster_left: u32,
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles the core was fully stalled.
    pub stall_cycles: u64,
    // Phase state.
    in_burst: bool,
    phase_left: u32,
    burst_len: u32,
    calm_len: u32,
    p_burst: f64,
    p_calm: f64,
}

impl Core {
    /// Creates a core running `bench`.
    pub fn new(bench: &'static Benchmark, commit_width: u32, window: u32, mshrs: usize, seed: u64) -> Self {
        // Solve per-phase miss probabilities so the long-run average is
        // mpki/1000: bf·boost·p + (1-bf)·p_calm_scale·p = p_avg.
        let p_avg = bench.mpki / 1000.0;
        let bf = bench.burst_fraction;
        let boost = bench.burst_boost;
        let (p_burst, p_calm) = if bf <= 0.0 || bf >= 1.0 || boost <= 1.0 {
            (p_avg, p_avg)
        } else {
            let pb = (p_avg * boost / (bf * boost + (1.0 - bf))).min(0.9);
            let pc = (p_avg - bf * pb).max(0.0) / (1.0 - bf);
            (pb, pc)
        };
        // Phase lengths: bursts of ~2000 cycles, calm phases sized to give
        // the configured burst fraction.
        let burst_len = 2000u32;
        let calm_len = if bf > 0.0 {
            ((burst_len as f64) * (1.0 - bf) / bf).max(1.0) as u32
        } else {
            u32::MAX
        };
        let mut rng = SimRng::seed_from_u64(seed);
        // Desynchronize phases across cores.
        let phase_left = rng.gen_range(1..=calm_len.max(2));
        Core {
            bench,
            commit_width,
            window: u64::from(window),
            mshrs,
            rng,
            outstanding: Vec::new(),
            next_miss: 0,
            cluster_left: 0,
            instructions: 0,
            stall_cycles: 0,
            in_burst: false,
            phase_left,
            burst_len,
            calm_len,
            p_burst,
            p_calm,
        }
    }

    /// The benchmark this core runs.
    pub fn benchmark(&self) -> &'static Benchmark {
        self.bench
    }

    /// Outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether the core is currently in a memory-intensive burst phase.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Completes an outstanding miss (response arrived).
    pub fn complete(&mut self, id: MissId) {
        if let Some(pos) = self.outstanding.iter().position(|o| o.id == id) {
            self.outstanding.swap_remove(pos);
        }
    }

    /// Advances one cycle; pushes newly issued misses into `issued`.
    pub fn tick(&mut self, issued: &mut Vec<MissRequest>) {
        // Phase machine.
        self.phase_left = self.phase_left.saturating_sub(1);
        if self.phase_left == 0 {
            self.in_burst = !self.in_burst;
            self.phase_left = if self.in_burst { self.burst_len } else { self.calm_len };
        }
        let p_miss = if self.in_burst { self.p_burst } else { self.p_calm };

        // Stall conditions: ROB head blocked by an old miss, or committing
        // would require an MSHR none is free for.
        let mut committed = 0;
        while committed < self.commit_width {
            if let Some(oldest) = self.outstanding.iter().map(|o| o.deadline_insts).min() {
                if self.instructions >= oldest {
                    break; // ROB full behind the oldest miss.
                }
            }
            // Clustered misses: a miss either continues the current
            // cluster (dense follow-up misses, probability 1/3 per
            // instruction) or starts a new cluster with the initiation
            // probability scaled so the long-run rate stays `p_miss`.
            let cluster = self.bench.cluster.max(1.0);
            let is_miss = if self.cluster_left > 0 {
                self.rng.gen::<f64>() < 1.0 / 3.0
            } else {
                self.rng.gen::<f64>() < p_miss / cluster
            };
            if is_miss {
                if self.outstanding.len() >= self.mshrs {
                    break; // No MSHR free.
                }
                if self.cluster_left > 0 {
                    self.cluster_left -= 1;
                } else {
                    // Geometric cluster length with the benchmark's mean:
                    // this miss plus cluster_left follow-ups.
                    let extra = (cluster - 1.0).max(0.0);
                    let p_stop = 1.0 / (extra + 1.0);
                    let mut follow = 0u32;
                    while follow < 64 && self.rng.gen::<f64>() > p_stop {
                        follow += 1;
                    }
                    self.cluster_left = follow;
                }
                let id = MissId(self.next_miss);
                self.next_miss += 1;
                self.outstanding.push(Outstanding {
                    id,
                    deadline_insts: self.instructions + self.window,
                });
                issued.push(MissRequest {
                    id,
                    is_write: self.rng.gen::<f64>() < self.bench.write_fraction,
                });
            }
            self.instructions += 1;
            committed += 1;
        }
        if committed == 0 {
            self.stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catnap_traffic::workload::benchmark;

    fn core(name: &str, seed: u64) -> Core {
        Core::new(benchmark(name).unwrap(), 2, 64, 32, seed)
    }

    /// Runs a core with an "ideal memory" that answers after `latency`.
    fn run_ideal(mut c: Core, cycles: u64, latency: u64) -> (u64, u64) {
        let mut pending: Vec<(u64, MissId)> = Vec::new();
        let mut issued = Vec::new();
        let mut misses = 0u64;
        for cycle in 0..cycles {
            pending.retain(|&(ready, id)| {
                if ready <= cycle {
                    c.complete(id);
                    false
                } else {
                    true
                }
            });
            issued.clear();
            c.tick(&mut issued);
            misses += issued.len() as u64;
            for m in &issued {
                pending.push((cycle + latency, m.id));
            }
        }
        (c.instructions, misses)
    }

    #[test]
    fn miss_rate_matches_mpki() {
        let (insts, misses) = run_ideal(core("gcc", 1), 300_000, 20);
        let mpki = misses as f64 * 1000.0 / insts as f64;
        assert!((mpki - 8.0).abs() < 1.2, "gcc MPKI {mpki:.1}, expected ~8.0");
    }

    #[test]
    fn ipc_decreases_with_memory_latency() {
        let (fast, _) = run_ideal(core("mcf", 2), 100_000, 20);
        let (slow, _) = run_ideal(core("mcf", 2), 100_000, 400);
        assert!(
            (slow as f64) < 0.7 * fast as f64,
            "mcf must be latency-sensitive: {slow} vs {fast}"
        );
    }

    #[test]
    fn compute_bound_app_insensitive_to_latency() {
        // Realistic on-chip latency range (L2 hit ~20 vs congested ~60):
        // a compute-bound core barely notices, a memory-bound one does.
        let (fast, _) = run_ideal(core("sjeng", 3), 100_000, 20);
        let (slow, _) = run_ideal(core("sjeng", 3), 100_000, 60);
        assert!(
            (slow as f64) > 0.85 * fast as f64,
            "sjeng should tolerate latency: {slow} vs {fast}"
        );
        let (mfast, _) = run_ideal(core("mcf", 3), 100_000, 20);
        let (mslow, _) = run_ideal(core("mcf", 3), 100_000, 60);
        let sjeng_loss = 1.0 - slow as f64 / fast as f64;
        let mcf_loss = 1.0 - mslow as f64 / mfast as f64;
        assert!(
            mcf_loss > 2.0 * sjeng_loss,
            "mcf loss {mcf_loss:.2} vs sjeng {sjeng_loss:.2}"
        );
    }

    #[test]
    fn mshr_limit_bounds_outstanding() {
        let mut c = Core::new(benchmark("mcf").unwrap(), 2, 64, 4, 1);
        let mut issued = Vec::new();
        // Never complete anything: outstanding must saturate at 4.
        for _ in 0..10_000 {
            c.tick(&mut issued);
            assert!(c.outstanding() <= 4);
        }
        assert_eq!(c.outstanding(), 4);
        assert!(c.stall_cycles > 5_000, "core must stall once MSHRs and window fill");
    }

    #[test]
    fn window_limits_run_ahead() {
        let mut c = Core::new(benchmark("mcf").unwrap(), 2, 64, 32, 9);
        let mut issued = Vec::new();
        let mut first_miss_at_insts = None;
        for _ in 0..10_000 {
            c.tick(&mut issued);
            if first_miss_at_insts.is_none() && !issued.is_empty() {
                first_miss_at_insts = Some(c.instructions);
            }
        }
        let first = first_miss_at_insts.expect("mcf must miss");
        // Without completions the core cannot run more than `window`
        // instructions past the first miss.
        assert!(c.instructions <= first + 64);
    }

    #[test]
    fn bursty_core_alternates_phases() {
        let mut c = core("tpcw", 4);
        let mut issued = Vec::new();
        let mut saw_burst = false;
        let mut saw_calm = false;
        for _ in 0..20_000 {
            c.tick(&mut issued);
            issued.drain(..).for_each(|m| c.complete(m.id));
            if c.in_burst() {
                saw_burst = true;
            } else {
                saw_calm = true;
            }
        }
        assert!(saw_burst && saw_calm);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, am) = run_ideal(core("deal", 11), 20_000, 30);
        let (b, bm) = run_ideal(core("deal", 11), 20_000, 30);
        assert_eq!((a, am), (b, bm));
    }
}
