//! MESI directory-protocol transaction scripts.
//!
//! Every L1 miss becomes a *transaction*: a sequence of protocol message
//! legs between the requesting core's node, the block's home L2
//! slice/directory, possibly a remote owner/sharer, and possibly a memory
//! controller. Control messages (requests, forwards, invalidations,
//! acknowledgements) are single-flit 72-bit-header packets; data messages
//! carry a 64-byte cache block (paper Section 4.1).
//!
//! The scripts below model the paper's 4-hop MESI directory protocol
//! transaction shapes; which shape a given miss takes is drawn from the
//! benchmark's `l2_miss_ratio` and `sharing_fraction` parameters in the
//! probabilistic mode, or decided by the real cache/directory simulator
//! in [`crate::cache`] mode.

use crate::config::SystemConfig;
use catnap_noc::{MessageClass, NodeId};

/// One message leg of a transaction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Leg {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Packet size in bits.
    pub bits: u32,
    /// Message class (controls VC mapping for deadlock freedom).
    pub class: MessageClass,
    /// Fixed service latency (cache bank access etc.) before this leg's
    /// packet is injected, counted from delivery of the previous leg.
    pub delay_before: u32,
    /// Whether this leg is a memory response: it is released by the
    /// memory controller's bandwidth/latency model instead of
    /// `delay_before`.
    pub via_mc: bool,
}

/// A transaction: its legs and the leg whose delivery unblocks the core.
#[derive(Clone, Debug, PartialEq)]
pub struct TransactionScript {
    /// Message legs in order.
    pub legs: Vec<Leg>,
    /// Index of the leg whose delivery completes the miss for the core.
    /// Legs after it (e.g. directory acknowledgements) still execute as
    /// background traffic.
    pub completes_at: usize,
}

impl TransactionScript {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty or `completes_at` is out of range.
    pub fn check(&self) -> &Self {
        assert!(!self.legs.is_empty(), "empty transaction");
        assert!(self.completes_at < self.legs.len(), "completes_at out of range");
        self
    }

    /// Total bits moved over the network (self-legs excluded).
    pub fn network_bits(&self) -> u64 {
        self.legs.iter().filter(|l| l.from != l.to).map(|l| u64::from(l.bits)).sum()
    }
}

fn ctrl(from: NodeId, to: NodeId, class: MessageClass, delay: u32, cfg: &SystemConfig) -> Leg {
    Leg {
        from,
        to,
        bits: cfg.control_bits,
        class,
        delay_before: delay,
        via_mc: false,
    }
}

fn data(from: NodeId, to: NodeId, delay: u32, cfg: &SystemConfig) -> Leg {
    Leg {
        from,
        to,
        bits: cfg.data_bits,
        class: MessageClass::Response,
        delay_before: delay,
        via_mc: false,
    }
}

/// Read miss that hits in the home L2 slice: request + data response
/// (2-hop).
pub fn read_l2_hit(core: NodeId, home: NodeId, cfg: &SystemConfig) -> TransactionScript {
    TransactionScript {
        legs: vec![
            ctrl(core, home, MessageClass::Request, 0, cfg),
            data(home, core, cfg.l2_latency, cfg),
        ],
        completes_at: 1,
    }
}

/// Read miss to a block owned by another core: request, directory
/// forward, cache-to-cache data, plus a background ack to the directory
/// (the 4-hop path of the MESI protocol).
pub fn read_forward(core: NodeId, home: NodeId, owner: NodeId, cfg: &SystemConfig) -> TransactionScript {
    TransactionScript {
        legs: vec![
            ctrl(core, home, MessageClass::Request, 0, cfg),
            ctrl(home, owner, MessageClass::Forward, cfg.l2_latency, cfg),
            data(owner, core, 2, cfg),
            ctrl(owner, home, MessageClass::Response, 0, cfg),
        ],
        completes_at: 2,
    }
}

/// Read miss that also misses in L2: request, memory fetch through a
/// controller (bandwidth/latency modelled by [`crate::memory`]), fill to
/// the home slice, data to the core.
pub fn read_memory(core: NodeId, home: NodeId, mc: NodeId, cfg: &SystemConfig) -> TransactionScript {
    TransactionScript {
        legs: vec![
            ctrl(core, home, MessageClass::Request, 0, cfg),
            ctrl(home, mc, MessageClass::Forward, cfg.l2_latency, cfg),
            Leg {
                from: mc,
                to: home,
                bits: cfg.data_bits,
                class: MessageClass::Response,
                delay_before: 0,
                via_mc: true,
            },
            data(home, core, cfg.l2_latency, cfg),
        ],
        completes_at: 3,
    }
}

/// Write miss to a shared block: request, invalidation to a sharer,
/// invalidation ack to the requester, data from home (4-hop write path).
pub fn write_invalidate(core: NodeId, home: NodeId, sharer: NodeId, cfg: &SystemConfig) -> TransactionScript {
    TransactionScript {
        legs: vec![
            ctrl(core, home, MessageClass::Request, 0, cfg),
            ctrl(home, sharer, MessageClass::Forward, cfg.l2_latency, cfg),
            ctrl(sharer, core, MessageClass::Response, 1, cfg),
            data(home, core, 0, cfg),
        ],
        completes_at: 3,
    }
}

/// Dirty-block writeback: fire-and-forget data packet to the home slice.
pub fn writeback(core: NodeId, home: NodeId, cfg: &SystemConfig) -> TransactionScript {
    TransactionScript {
        legs: vec![data(core, home, 0, cfg)],
        completes_at: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn scripts_are_well_formed() {
        let c = cfg();
        let (a, b, o, m) = (NodeId(0), NodeId(9), NodeId(17), NodeId(5));
        for s in [
            read_l2_hit(a, b, &c),
            read_forward(a, b, o, &c),
            read_memory(a, b, m, &c),
            write_invalidate(a, b, o, &c),
            writeback(a, b, &c),
        ] {
            s.check();
            assert!(s.legs[0].from == a, "transactions start at the requester");
        }
    }

    #[test]
    fn control_packets_are_single_flit_everywhere() {
        let c = cfg();
        let s = read_forward(NodeId(0), NodeId(9), NodeId(17), &c);
        // 72-bit control packets fit one flit even on 64-bit subnets? No:
        // they take 2 flits at 64 bits, 1 flit at 128+ bits — matching the
        // paper's designs (narrowest studied subnet for apps is 128 bits).
        assert_eq!(catnap_noc::Flit::flits_for_bits(s.legs[0].bits, 128), 1);
        assert_eq!(catnap_noc::Flit::flits_for_bits(s.legs[0].bits, 512), 1);
    }

    #[test]
    fn data_packet_flit_counts_match_paper() {
        let c = cfg();
        // 64B + 72b header = 584 bits: 2 flits at 512b? No — 584 > 512, so
        // 2 flits at 512 bits and 5 at 128 bits.
        assert_eq!(catnap_noc::Flit::flits_for_bits(c.data_bits, 512), 2);
        assert_eq!(catnap_noc::Flit::flits_for_bits(c.data_bits, 128), 5);
    }

    #[test]
    fn memory_script_routes_through_mc() {
        let c = cfg();
        let s = read_memory(NodeId(0), NodeId(9), NodeId(5), &c);
        assert!(s.legs[2].via_mc);
        assert_eq!(s.legs[2].from, NodeId(5));
        assert_eq!(s.completes_at, 3, "core waits for the final data leg");
    }

    #[test]
    fn forward_completes_before_background_ack() {
        let c = cfg();
        let s = read_forward(NodeId(0), NodeId(9), NodeId(17), &c);
        assert_eq!(s.completes_at, 2);
        assert_eq!(s.legs.len(), 4, "ack continues after completion");
    }

    #[test]
    fn network_bits_skips_self_legs() {
        let c = cfg();
        let s = read_l2_hit(NodeId(3), NodeId(3), &c);
        assert_eq!(s.network_bits(), 0);
        let s2 = read_l2_hit(NodeId(3), NodeId(4), &c);
        assert_eq!(s2.network_bits(), u64::from(c.control_bits + c.data_bits));
    }
}
