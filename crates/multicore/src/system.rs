//! The full closed-loop system: cores, coherence protocol, memory
//! controllers and the Catnap Multi-NoC.

use crate::config::SystemConfig;
use crate::core_model::{Core, MissId, MissRequest};
use crate::memory::{MemToken, MemoryController};
use crate::protocol::{self, TransactionScript};
use catnap::{MultiNoc, MultiNocConfig, RunReport};
use catnap_noc::{MessageClass, NodeId, PacketDescriptor, PacketId};
use catnap_traffic::generator::PacketSink;
use catnap_traffic::WorkloadMix;
use catnap_util::SimRng;
use std::collections::{BTreeMap, HashMap};

struct Tx {
    core: usize,
    miss: Option<MissId>,
    script: TransactionScript,
    issued_cycle: u64,
}

/// The simulated many-core system.
pub struct System {
    cfg: SystemConfig,
    /// The network under evaluation (public for power/stat queries).
    pub net: MultiNoc,
    cores: Vec<Core>,
    txs: HashMap<u64, Tx>,
    pkt_to_tx: HashMap<PacketId, (u64, usize)>,
    /// Legs waiting out a fixed service delay: cycle -> (tx, leg).
    events: BTreeMap<u64, Vec<(u64, usize)>>,
    mcs: Vec<MemoryController>,
    mc_index_of_node: HashMap<NodeId, usize>,
    mc_tokens: HashMap<u64, (u64, usize)>,
    mc_retry: Vec<(usize, u64, usize)>,
    rng: SimRng,
    next_tx: u64,
    next_packet: u64,
    next_token: u64,
    misses_issued: u64,
    misses_completed: u64,
    miss_latency_sum: u64,
    ready_buf: Vec<MemToken>,
    issued_buf: Vec<MissRequest>,
}

impl System {
    /// Builds a system running `mix` on the given network design.
    pub fn new(cfg: SystemConfig, net_cfg: MultiNocConfig, mix: WorkloadMix, seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid system config: {e}"));
        let mut net = MultiNoc::new(net_cfg);
        net.set_track_deliveries(true);
        let num_cores = cfg.num_cores(net.dims());
        let assignment = mix.assign(num_cores);
        let cores = assignment
            .iter()
            .enumerate()
            .map(|(i, b)| Core::new(b, cfg.commit_width, cfg.window, cfg.mshrs, seed ^ (i as u64) << 20))
            .collect();
        let mc_nodes = cfg.mc_nodes(net.dims());
        let mcs = mc_nodes
            .iter()
            .map(|_| MemoryController::new(cfg.memory_latency, cfg.mc_requests_per_cycle, cfg.mc_queue_depth))
            .collect();
        let mc_index_of_node = mc_nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        System {
            cfg,
            net,
            cores,
            txs: HashMap::new(),
            pkt_to_tx: HashMap::new(),
            events: BTreeMap::new(),
            mcs,
            mc_index_of_node,
            mc_tokens: HashMap::new(),
            mc_retry: Vec::new(),
            rng: SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            next_tx: 0,
            next_packet: 0,
            next_token: 0,
            misses_issued: 0,
            misses_completed: 0,
            miss_latency_sum: 0,
            ready_buf: Vec::new(),
            issued_buf: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Total instructions committed so far.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    fn random_node(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.net.dims().num_nodes() as u16))
    }

    fn random_mc_node(&mut self) -> NodeId {
        let i = self.rng.gen_range(0..self.mcs.len());
        *self
            .mc_index_of_node
            .iter()
            .find(|(_, &idx)| idx == i)
            .map(|(n, _)| n)
            .expect("mc index maps to a node")
    }

    fn build_script(&mut self, core_idx: usize, req: &MissRequest) -> TransactionScript {
        let bench = self.cores[core_idx].benchmark();
        let (share, l2_miss) = (bench.sharing_fraction, bench.l2_miss_ratio);
        let node = self.cfg.node_of_core(core_idx);
        let home = self.random_node();
        let r: f64 = self.rng.gen();
        if req.is_write && r < share {
            let sharer = self.random_node();
            return protocol::write_invalidate(node, home, sharer, &self.cfg);
        }
        if r < l2_miss {
            let mc = self.random_mc_node();
            return protocol::read_memory(node, home, mc, &self.cfg);
        }
        if r < l2_miss + share {
            let owner = self.random_node();
            return protocol::read_forward(node, home, owner, &self.cfg);
        }
        protocol::read_l2_hit(node, home, &self.cfg)
    }

    fn submit_leg_packet(&mut self, tx_id: u64, leg_idx: usize, now: u64) {
        let leg = self.txs[&tx_id].script.legs[leg_idx];
        debug_assert_ne!(leg.from, leg.to);
        let pid = PacketId(self.next_packet);
        self.next_packet += 1;
        self.pkt_to_tx.insert(pid, (tx_id, leg_idx));
        self.net.submit(PacketDescriptor {
            id: pid,
            src: leg.from,
            dst: leg.to,
            bits: leg.bits,
            class: leg.class,
            created_cycle: now,
        });
    }

    /// Starts leg `leg_idx`, chaining through zero-delay self-legs.
    fn start_leg(&mut self, tx_id: u64, mut leg_idx: usize, now: u64) {
        loop {
            let (from, to) = {
                let leg = &self.txs[&tx_id].script.legs[leg_idx];
                (leg.from, leg.to)
            };
            if from != to {
                self.submit_leg_packet(tx_id, leg_idx, now);
                return;
            }
            // Self-leg: delivered instantly.
            match self.after_delivery(tx_id, leg_idx, now) {
                Some(next) => leg_idx = next,
                None => return,
            }
        }
    }

    /// Handles delivery of leg `leg_idx`; returns `Some(next_leg)` when the
    /// next leg should start immediately (zero delay, not via MC).
    fn after_delivery(&mut self, tx_id: u64, leg_idx: usize, now: u64) -> Option<usize> {
        let (completes_at, legs_len, core, miss, issued_cycle) = {
            let tx = &self.txs[&tx_id];
            (
                tx.script.completes_at,
                tx.script.legs.len(),
                tx.core,
                tx.miss,
                tx.issued_cycle,
            )
        };
        if leg_idx == completes_at {
            if let Some(miss) = miss {
                self.cores[core].complete(miss);
                self.misses_completed += 1;
                self.miss_latency_sum += now.saturating_sub(issued_cycle);
            }
        }
        let next = leg_idx + 1;
        if next >= legs_len {
            self.txs.remove(&tx_id);
            return None;
        }
        let (via_mc, delay, mc_node) = {
            let leg = &self.txs[&tx_id].script.legs[next];
            (leg.via_mc, leg.delay_before, leg.from)
        };
        if via_mc {
            let mc_idx = *self
                .mc_index_of_node
                .get(&mc_node)
                .expect("via_mc leg must originate at a memory controller node");
            self.enqueue_mc(mc_idx, tx_id, next);
            return None;
        }
        if delay > 0 {
            self.events.entry(now + u64::from(delay)).or_default().push((tx_id, next));
            return None;
        }
        Some(next)
    }

    fn enqueue_mc(&mut self, mc_idx: usize, tx_id: u64, leg_idx: usize) {
        let token = MemToken(self.next_token);
        self.next_token += 1;
        if self.mcs[mc_idx].accept(token) {
            self.mc_tokens.insert(token.0, (tx_id, leg_idx));
        } else {
            self.mc_retry.push((mc_idx, tx_id, leg_idx));
        }
    }

    /// Advances the whole system by one cycle.
    pub fn step(&mut self) {
        let now = self.net.cycle();

        // Cores issue new misses.
        for ci in 0..self.cores.len() {
            let mut issued = std::mem::take(&mut self.issued_buf);
            issued.clear();
            self.cores[ci].tick(&mut issued);
            for req in &issued {
                self.misses_issued += 1;
                let script = self.build_script(ci, req);
                let tx_id = self.next_tx;
                self.next_tx += 1;
                self.txs.insert(
                    tx_id,
                    Tx {
                        core: ci,
                        miss: Some(req.id),
                        script,
                        issued_cycle: now,
                    },
                );
                self.start_leg(tx_id, 0, now);
                // Dirty eviction accompanying the fill.
                let bench = self.cores[ci].benchmark();
                if self.rng.gen::<f64>() < bench.write_fraction {
                    let node = self.cfg.node_of_core(ci);
                    let home = self.random_node();
                    if home != node {
                        let wb_id = self.next_tx;
                        self.next_tx += 1;
                        self.txs.insert(
                            wb_id,
                            Tx {
                                core: ci,
                                miss: None,
                                script: protocol::writeback(node, home, &self.cfg),
                                issued_cycle: now,
                            },
                        );
                        self.start_leg(wb_id, 0, now);
                    }
                }
            }
            self.issued_buf = issued;
        }

        // Delayed legs whose service time elapsed.
        let due: Vec<(u64, usize)> = {
            let keys: Vec<u64> = self.events.range(..=now).map(|(&k, _)| k).collect();
            keys.into_iter()
                .flat_map(|k| self.events.remove(&k).expect("key exists"))
                .collect()
        };
        for (tx_id, leg_idx) in due {
            self.start_leg(tx_id, leg_idx, now);
        }

        // Memory controllers.
        let mut retry = std::mem::take(&mut self.mc_retry);
        for (mc_idx, tx_id, leg_idx) in retry.drain(..) {
            self.enqueue_mc(mc_idx, tx_id, leg_idx);
        }
        self.mc_retry = retry;
        let mut ready = std::mem::take(&mut self.ready_buf);
        for i in 0..self.mcs.len() {
            ready.clear();
            self.mcs[i].tick(now, &mut ready);
            for token in &ready {
                let (tx_id, leg_idx) = self.mc_tokens.remove(&token.0).expect("unknown memory token");
                self.start_leg(tx_id, leg_idx, now);
            }
        }
        self.ready_buf = ready;

        // The network.
        self.net.step();
        let now = self.net.cycle();

        // Deliveries advance transactions.
        for tail in self.net.drain_delivered() {
            debug_assert!(tail.class != MessageClass::Synthetic);
            if let Some((tx_id, leg_idx)) = self.pkt_to_tx.remove(&tail.packet) {
                if let Some(next) = self.after_delivery(tx_id, leg_idx, now) {
                    self.start_leg(tx_id, next, now);
                }
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Produces the final report (finalizes network gating accounting).
    pub fn report(&mut self) -> SystemReport {
        let network = self.net.finish();
        let cycles = network.cycles.max(1);
        let insts = self.total_instructions();
        SystemReport {
            cycles: network.cycles,
            total_instructions: insts,
            ipc: insts as f64 / cycles as f64,
            misses_issued: self.misses_issued,
            misses_completed: self.misses_completed,
            avg_miss_latency: if self.misses_completed == 0 {
                0.0
            } else {
                self.miss_latency_sum as f64 / self.misses_completed as f64
            },
            network,
        }
    }
}

/// Result of a closed-loop system run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed across all cores.
    pub total_instructions: u64,
    /// Aggregate instructions per cycle (sum over cores).
    pub ipc: f64,
    /// L1 misses issued.
    pub misses_issued: u64,
    /// Misses whose critical-path response arrived.
    pub misses_completed: u64,
    /// Mean cycles from miss issue to critical response.
    pub avg_miss_latency: f64,
    /// Network-side report.
    pub network: RunReport,
}

catnap_util::impl_to_json_struct!(SystemReport {
    cycles,
    total_instructions,
    ipc,
    misses_issued,
    misses_completed,
    avg_miss_latency,
    network,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(mix: WorkloadMix, net_cfg: MultiNocConfig) -> System {
        System::new(SystemConfig::paper(), net_cfg, mix, 42)
    }

    #[test]
    fn light_mix_runs_and_completes_misses() {
        let mut sys = small_system(WorkloadMix::Light, MultiNocConfig::catnap_4x128());
        sys.run(3_000);
        let rep = sys.report();
        assert!(rep.total_instructions > 500_000, "insts {}", rep.total_instructions);
        assert!(rep.misses_completed > 100);
        assert!(rep.avg_miss_latency > 10.0, "miss latency {}", rep.avg_miss_latency);
        // Most issued misses eventually complete (some still in flight).
        assert!(rep.misses_completed as f64 > 0.8 * rep.misses_issued as f64);
    }

    #[test]
    fn heavy_mix_loads_network_more_than_light() {
        let mut light = small_system(WorkloadMix::Light, MultiNocConfig::single_noc_512b());
        light.run(2_000);
        let l = light.report();
        let mut heavy = small_system(WorkloadMix::Heavy, MultiNocConfig::single_noc_512b());
        heavy.run(2_000);
        let h = heavy.report();
        // Heavy demands far more bandwidth per instruction; the closed
        // loop throttles it, so the accepted-traffic gap narrows but must
        // stay clearly above Light's.
        assert!(
            h.network.accepted_flits_per_node_cycle > 1.5 * l.network.accepted_flits_per_node_cycle,
            "heavy {} vs light {}",
            h.network.accepted_flits_per_node_cycle,
            l.network.accepted_flits_per_node_cycle
        );
        assert!(h.ipc < l.ipc, "heavy mix must commit fewer instructions");
    }

    #[test]
    fn heavy_mix_suffers_on_narrow_network() {
        let mut wide = small_system(WorkloadMix::Heavy, MultiNocConfig::single_noc_512b());
        wide.run(3_000);
        let w = wide.report();
        let mut narrow = small_system(WorkloadMix::Heavy, MultiNocConfig::single_noc_128b());
        narrow.run(3_000);
        let n = narrow.report();
        assert!(
            n.ipc < 0.85 * w.ipc,
            "Fig 2: heavy workload must lose clearly on 128b ({} vs {})",
            n.ipc,
            w.ipc
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sys = System::new(
                SystemConfig::paper(),
                MultiNocConfig::catnap_4x128(),
                WorkloadMix::MediumLight,
                seed,
            );
            sys.run(1_000);
            let r = sys.report();
            (r.total_instructions, r.misses_issued, r.network.packets_generated)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
