#![warn(missing_docs)]

//! # catnap-multicore
//!
//! A closed-loop many-core substrate for evaluating on-chip networks,
//! modelling the paper's 256-core target system (Table 1): 2-wide cores
//! with 64-entry instruction windows and 32 MSHRs, private L1 caches, a
//! shared distributed L2 with a 4-hop MESI directory protocol, and eight
//! on-chip memory controllers with 80-cycle DRAM latency.
//!
//! **Substitution note** (DESIGN.md §3): the paper replays Pin-collected
//! instruction traces; we generate each core's memory behaviour
//! synthetically from the per-benchmark parameters in
//! [`catnap_traffic::workload`]. What the network observes — message
//! rates, burstiness, destination spread, control/data packet mix, and
//! the closed-loop throttling of cores by network latency and bandwidth —
//! is modelled faithfully; absolute IPC values are not meaningful, only
//! ratios between network configurations.
//!
//! ## Structure
//!
//! * [`core_model`] — interval-style core model: commits up to 2
//!   instructions/cycle, generates misses per benchmark MPKI (with phase
//!   bursts), tolerates misses up to the instruction window and MSHR
//!   limits, then stalls until responses return.
//! * [`protocol`] — MESI directory transaction scripts: 2-hop L2 hits,
//!   3/4-hop directory forwards, memory fetches, invalidations and
//!   writebacks, each leg a control (1-flit) or data (cache block)
//!   packet.
//! * [`cache`] — a real set-associative cache simulator (tags, LRU,
//!   inclusive directory state) usable as an alternative to the
//!   probabilistic hit/miss model, and validated by tests.
//! * [`memory`] — bandwidth-limited memory controllers.
//! * [`system`] — ties cores, protocol and memory to a
//!   [`catnap::MultiNoc`] and reports system performance.

pub mod cache;
pub mod config;
pub mod core_model;
pub mod memory;
pub mod protocol;
pub mod system;
pub mod system_cache;

pub use config::SystemConfig;
pub use system::{System, SystemReport};
pub use system_cache::{CacheSystem, CacheSystemReport, CacheWorkload};
