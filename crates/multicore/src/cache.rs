//! Set-associative cache and MESI directory simulator.
//!
//! The probabilistic miss model in [`crate::core_model`] is the default
//! driver for the paper's experiments (its rates are directly anchored to
//! Table 3's MPKIs). This module provides the real structures as an
//! alternative access model: tagged LRU caches and a directory with
//! owner/sharer tracking, driven by a synthetic address-stream generator.
//! The integration tests cross-validate the two models.

use catnap_util::SimRng;
use std::collections::HashMap;

/// MESI line state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MesiState {
    /// Modified: dirty, exclusive.
    Modified,
    /// Exclusive: clean, exclusive.
    Exclusive,
    /// Shared: clean, possibly replicated.
    Shared,
}

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
}

impl CacheConfig {
    /// The paper's L1: 32 KB, 4-way, 64-byte blocks.
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            block_bytes: 64,
        }
    }

    /// One slice of the paper's shared L2: 256 KB, 16-way, 64-byte blocks.
    pub fn l2_slice() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 16,
            block_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * self.block_bytes)
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    state: MesiState,
    lru: u64,
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Block present (state possibly upgraded on write).
    Hit,
    /// Block absent; `victim` is an evicted dirty block's address, if any.
    Miss {
        /// Dirty victim block address needing writeback.
        victim_writeback: Option<u64>,
    },
}

/// A set-associative, write-back, LRU cache.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or
    /// non-power-of-two block size).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.block_bytes.is_power_of_two() && cfg.num_sets() > 0);
        SetAssocCache {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets()],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    fn index_of(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.cfg.block_bytes as u64;
        let set = (block % self.sets.len() as u64) as usize;
        let tag = block / self.sets.len() as u64;
        (set, tag)
    }

    /// Block-aligned address for `addr`.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.block_bytes as u64 - 1)
    }

    /// Accesses `addr`; on a miss the caller must later call
    /// [`SetAssocCache::fill`].
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        self.accesses += 1;
        let (set, tag) = self.index_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.lru = self.tick;
            if is_write {
                line.state = MesiState::Modified;
            }
            return AccessOutcome::Hit;
        }
        self.misses += 1;
        AccessOutcome::Miss {
            victim_writeback: self.peek_victim(set),
        }
    }

    fn peek_victim(&self, set: usize) -> Option<u64> {
        if self.sets[set].len() < self.cfg.ways {
            return None;
        }
        let victim = self.sets[set].iter().min_by_key(|l| l.lru).expect("full set");
        (victim.state == MesiState::Modified).then(|| {
            let block = victim.tag * self.sets.len() as u64 + set as u64;
            block * self.cfg.block_bytes as u64
        })
    }

    /// Installs `addr` in the given state, evicting LRU if needed.
    pub fn fill(&mut self, addr: u64, state: MesiState) {
        self.tick += 1;
        let (set, tag) = self.index_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.state = state;
            line.lru = self.tick;
            return;
        }
        if self.sets[set].len() >= self.cfg.ways {
            let victim = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("full set");
            self.sets[set].swap_remove(victim);
        }
        let lru = self.tick;
        self.sets[set].push(Line { tag, state, lru });
    }

    /// Invalidates `addr` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index_of(addr);
        if let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) {
            let line = self.sets[set].swap_remove(pos);
            line.state == MesiState::Modified
        } else {
            false
        }
    }

    /// Clears the access/miss counters (e.g. after functional warmup).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Directory entry: who caches a block.
#[derive(Clone, Debug, Default)]
pub struct DirEntry {
    /// Exclusive owner (core id), if any.
    pub owner: Option<u32>,
    /// Sharer core ids (disjoint from `owner`).
    pub sharers: Vec<u32>,
}

/// What the home directory must do to satisfy a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectoryAction {
    /// Data is in the home L2 (or memory); send it directly.
    SendData {
        /// Whether the L2 itself missed (fetch from memory first).
        from_memory: bool,
    },
    /// Forward the request to the exclusive owner for cache-to-cache
    /// transfer.
    ForwardToOwner(u32),
    /// Invalidate these sharers before granting exclusivity.
    Invalidate(Vec<u32>),
}

/// The directory for one home L2 slice.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Handles a read (GetS) from `core`. Updates sharer state.
    pub fn get_s(&mut self, block: u64, core: u32, l2_hit: bool) -> DirectoryAction {
        let e = self.entries.entry(block).or_default();
        if let Some(owner) = e.owner.take() {
            // Owner downgrades to sharer; requester becomes sharer too.
            e.sharers.push(owner);
            e.sharers.push(core);
            return DirectoryAction::ForwardToOwner(owner);
        }
        if !e.sharers.contains(&core) {
            e.sharers.push(core);
        }
        DirectoryAction::SendData { from_memory: !l2_hit }
    }

    /// Handles a write (GetM) from `core`. Updates owner state.
    pub fn get_m(&mut self, block: u64, core: u32, l2_hit: bool) -> DirectoryAction {
        let e = self.entries.entry(block).or_default();
        if let Some(owner) = e.owner {
            if owner != core {
                e.owner = Some(core);
                e.sharers.clear();
                return DirectoryAction::ForwardToOwner(owner);
            }
            return DirectoryAction::SendData { from_memory: false };
        }
        let others: Vec<u32> = e.sharers.iter().copied().filter(|&s| s != core).collect();
        e.sharers.clear();
        e.owner = Some(core);
        if others.is_empty() {
            DirectoryAction::SendData { from_memory: !l2_hit }
        } else {
            DirectoryAction::Invalidate(others)
        }
    }

    /// Handles a writeback (PutM) from `core`.
    pub fn put_m(&mut self, block: u64, core: u32) {
        if let Some(e) = self.entries.get_mut(&block) {
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    /// Current entry for a block.
    pub fn entry(&self, block: u64) -> Option<&DirEntry> {
        self.entries.get(&block)
    }

    /// Invariant check: at most one owner, owner not also a sharer.
    pub fn check_invariants(&self) -> bool {
        self.entries.values().all(|e| e.owner.is_none_or(|o| !e.sharers.contains(&o)))
    }
}

/// Synthetic address-stream generator: a mix of sequential, strided and
/// random accesses within a per-core working set, plus a fraction of
/// accesses to a globally shared region.
#[derive(Clone, Debug)]
pub struct AddressStream {
    rng: SimRng,
    base: u64,
    working_set: u64,
    shared_base: u64,
    shared_set: u64,
    shared_fraction: f64,
    cursor: u64,
}

impl AddressStream {
    /// Creates a stream for one core: `working_set` bytes private, with
    /// `shared_fraction` of accesses landing in a `shared_set`-byte region
    /// common to all cores.
    pub fn new(core: usize, working_set: u64, shared_set: u64, shared_fraction: f64, seed: u64) -> Self {
        AddressStream {
            rng: SimRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            base: 0x1_0000_0000 + (core as u64) * 0x100_0000,
            working_set,
            shared_base: 0x8_0000_0000,
            shared_set,
            shared_fraction,
            cursor: 0,
        }
    }

    /// Next access address.
    pub fn next_addr(&mut self) -> u64 {
        if self.rng.gen::<f64>() < self.shared_fraction {
            return self.shared_base + self.rng.gen_range(0..self.shared_set / 64) * 64;
        }
        match self.rng.gen_range(0..3u8) {
            0 => {
                // Sequential walk.
                self.cursor = (self.cursor + 64) % self.working_set;
                self.base + self.cursor
            }
            1 => {
                // Strided.
                self.cursor = (self.cursor + 8 * 64) % self.working_set;
                self.base + self.cursor
            }
            _ => self.base + self.rng.gen_range(0..self.working_set / 64) * 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1().num_sets(), 128);
        assert_eq!(CacheConfig::l2_slice().num_sets(), 256);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(CacheConfig::l1());
        assert!(matches!(c.access(0x1000, false), AccessOutcome::Miss { .. }));
        c.fill(0x1000, MesiState::Exclusive);
        assert_eq!(c.access(0x1000, false), AccessOutcome::Hit);
        assert_eq!(c.access(0x1040, false), AccessOutcome::Miss { victim_writeback: None });
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let cfg = CacheConfig {
            size_bytes: 4 * 64,
            ways: 4,
            block_bytes: 64,
        }; // one set, 4 ways
        let mut c = SetAssocCache::new(cfg);
        for i in 0..4u64 {
            c.fill(i * 64, MesiState::Exclusive);
        }
        // Touch block 0 (write: dirty) so block 1 becomes LRU.
        assert_eq!(c.access(0, true), AccessOutcome::Hit);
        match c.access(4 * 64, false) {
            AccessOutcome::Miss { victim_writeback } => {
                assert_eq!(victim_writeback, None, "LRU victim (block 1) is clean");
            }
            AccessOutcome::Hit => panic!("must miss"),
        }
        c.fill(4 * 64, MesiState::Exclusive); // evicts block 1
        assert!(
            matches!(c.access(64, false), AccessOutcome::Miss { .. }),
            "block 1 evicted"
        );
        // Now make everything dirty and check a dirty victim is reported.
        let mut d = SetAssocCache::new(cfg);
        for i in 0..4u64 {
            d.fill(i * 64, MesiState::Modified);
        }
        match d.access(5 * 64, false) {
            AccessOutcome::Miss { victim_writeback } => assert!(victim_writeback.is_some()),
            AccessOutcome::Hit => panic!("must miss"),
        }
    }

    #[test]
    fn write_upgrades_to_modified_and_invalidate_reports_dirty() {
        let mut c = SetAssocCache::new(CacheConfig::l1());
        c.fill(0x2000, MesiState::Shared);
        c.access(0x2000, true);
        assert!(c.invalidate(0x2000), "written line must be dirty");
        assert!(!c.invalidate(0x2000), "already gone");
    }

    #[test]
    fn miss_rate_reflects_working_set_vs_capacity() {
        // Working set half the cache: near-zero steady-state miss rate.
        let mut small = SetAssocCache::new(CacheConfig::l1());
        let mut stream = AddressStream::new(0, 16 * 1024, 1024, 0.0, 42);
        for _ in 0..60_000 {
            let a = stream.next_addr();
            if matches!(small.access(a, false), AccessOutcome::Miss { .. }) {
                small.fill(a, MesiState::Exclusive);
            }
        }
        // Working set 16x the cache: high miss rate.
        let mut big = SetAssocCache::new(CacheConfig::l1());
        let mut stream2 = AddressStream::new(0, 512 * 1024, 1024, 0.0, 42);
        for _ in 0..60_000 {
            let a = stream2.next_addr();
            if matches!(big.access(a, false), AccessOutcome::Miss { .. }) {
                big.fill(a, MesiState::Exclusive);
            }
        }
        assert!(small.miss_rate() < 0.05, "small WS miss rate {}", small.miss_rate());
        assert!(
            big.miss_rate() > 5.0 * small.miss_rate(),
            "big {} vs small {}",
            big.miss_rate(),
            small.miss_rate()
        );
    }

    #[test]
    fn directory_read_sharing() {
        let mut dir = Directory::default();
        assert_eq!(
            dir.get_s(0x40, 1, true),
            DirectoryAction::SendData { from_memory: false }
        );
        assert_eq!(
            dir.get_s(0x40, 2, true),
            DirectoryAction::SendData { from_memory: false }
        );
        let e = dir.entry(0x40).unwrap();
        assert!(e.sharers.contains(&1) && e.sharers.contains(&2));
        assert!(dir.check_invariants());
    }

    #[test]
    fn directory_write_invalidates_sharers() {
        let mut dir = Directory::default();
        dir.get_s(0x40, 1, true);
        dir.get_s(0x40, 2, true);
        match dir.get_m(0x40, 3, true) {
            DirectoryAction::Invalidate(mut v) => {
                v.sort_unstable();
                assert_eq!(v, vec![1, 2]);
            }
            other => panic!("expected invalidations, got {other:?}"),
        }
        assert_eq!(dir.entry(0x40).unwrap().owner, Some(3));
        assert!(dir.check_invariants());
    }

    #[test]
    fn directory_forwards_to_owner() {
        let mut dir = Directory::default();
        dir.get_m(0x80, 5, true);
        assert_eq!(dir.get_s(0x80, 6, true), DirectoryAction::ForwardToOwner(5));
        let e = dir.entry(0x80).unwrap();
        assert_eq!(e.owner, None, "owner downgraded on read forward");
        assert!(e.sharers.contains(&5) && e.sharers.contains(&6));
        // Write from a third core forwards to... nobody owns now; sharers
        // get invalidated.
        match dir.get_m(0x80, 7, true) {
            DirectoryAction::Invalidate(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(dir.check_invariants());
    }

    #[test]
    fn writeback_clears_owner() {
        let mut dir = Directory::default();
        dir.get_m(0xC0, 9, true);
        dir.put_m(0xC0, 9);
        assert_eq!(dir.entry(0xC0).unwrap().owner, None);
    }

    #[test]
    fn shared_region_attracts_fraction() {
        let mut s = AddressStream::new(3, 1 << 20, 1 << 16, 0.3, 7);
        let shared = (0..10_000).filter(|_| s.next_addr() >= 0x8_0000_0000).count();
        let frac = shared as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "shared fraction {frac}");
    }
}
