//! System configuration (the paper's Table 1).

use catnap_noc::{MeshDims, NodeId};

/// Configuration of the many-core system around the network.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Cores per network node (concentration; paper: 4 tiles/router).
    pub cores_per_node: usize,
    /// Instruction-window (ROB) entries per core (paper: 64).
    pub window: u32,
    /// Commit width, instructions per cycle (paper: 2-wide).
    pub commit_width: u32,
    /// Miss-status holding registers per core (paper: 32).
    pub mshrs: usize,
    /// Shared-L2 bank access latency in cycles (paper: 6).
    pub l2_latency: u32,
    /// DRAM access latency in cycles (paper: 80).
    pub memory_latency: u32,
    /// Peak requests each memory controller can start per cycle
    /// (bandwidth limit; 16 GB/s per MC at 2 GHz and 64-byte blocks is
    /// one block every 8 cycles, i.e. 0.125).
    pub mc_requests_per_cycle: f64,
    /// Maximum in-flight requests per memory controller.
    pub mc_queue_depth: usize,
    /// Control packet size in bits (64-bit address/command + 8-bit meta;
    /// paper: 72-bit header, single flit everywhere).
    pub control_bits: u32,
    /// Data packet size in bits (64-byte block + 72-bit header).
    pub data_bits: u32,
}

impl SystemConfig {
    /// The paper's Table-1 configuration.
    pub fn paper() -> Self {
        SystemConfig {
            cores_per_node: 4,
            window: 64,
            commit_width: 2,
            mshrs: 32,
            l2_latency: 6,
            memory_latency: 80,
            mc_requests_per_cycle: 0.125,
            mc_queue_depth: 64,
            control_bits: 72,
            data_bits: 512 + 72,
        }
    }

    /// Total cores for a mesh.
    pub fn num_cores(&self, dims: MeshDims) -> usize {
        self.cores_per_node * dims.num_nodes()
    }

    /// The network node hosting a core.
    pub fn node_of_core(&self, core: usize) -> NodeId {
        NodeId((core / self.cores_per_node) as u16)
    }

    /// Memory-controller nodes for a mesh: spread along the top and bottom
    /// rows (eight for an 8x8 mesh, following the paper's 8 MCs; scales
    /// with mesh width for other sizes).
    pub fn mc_nodes(&self, dims: MeshDims) -> Vec<NodeId> {
        let cols = dims.cols;
        let rows = dims.rows;
        let picks = [cols / 8, cols * 3 / 8, cols * 5 / 8, cols * 7 / 8];
        let mut nodes = Vec::new();
        for &x in &picks {
            nodes.push(dims.node_at(x, 0));
        }
        for &x in &picks {
            nodes.push(dims.node_at(x, rows - 1));
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores_per_node == 0 {
            return Err("cores_per_node must be non-zero".into());
        }
        if self.commit_width == 0 || self.window == 0 {
            return Err("core must commit and have a window".into());
        }
        if self.mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        if self.mc_requests_per_cycle <= 0.0 {
            return Err("memory bandwidth must be positive".into());
        }
        if self.control_bits == 0 || self.data_bits < self.control_bits {
            return Err("packet sizes implausible".into());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_values() {
        let c = SystemConfig::paper();
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.window, 64);
        assert_eq!(c.commit_width, 2);
        assert_eq!(c.mshrs, 32);
        assert_eq!(c.memory_latency, 80);
        assert_eq!(c.num_cores(MeshDims::new(8, 8)), 256);
        assert_eq!(c.num_cores(MeshDims::new(4, 4)), 64);
        c.validate().unwrap();
    }

    #[test]
    fn core_to_node_mapping() {
        let c = SystemConfig::paper();
        assert_eq!(c.node_of_core(0), NodeId(0));
        assert_eq!(c.node_of_core(3), NodeId(0));
        assert_eq!(c.node_of_core(4), NodeId(1));
        assert_eq!(c.node_of_core(255), NodeId(63));
    }

    #[test]
    fn eight_mcs_on_8x8() {
        let c = SystemConfig::paper();
        let mcs = c.mc_nodes(MeshDims::new(8, 8));
        assert_eq!(mcs.len(), 8);
        let dims = MeshDims::new(8, 8);
        for n in &mcs {
            let (_, y) = dims.coords(*n);
            assert!(y == 0 || y == 7, "MCs sit on the top/bottom rows");
        }
    }

    #[test]
    fn mcs_scale_down_for_4x4() {
        let c = SystemConfig::paper();
        let mcs = c.mc_nodes(MeshDims::new(4, 4));
        assert!(!mcs.is_empty() && mcs.len() <= 8);
    }

    #[test]
    fn validation() {
        let mut c = SystemConfig::paper();
        c.mshrs = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::paper();
        c.data_bits = 8;
        assert!(c.validate().is_err());
    }
}
