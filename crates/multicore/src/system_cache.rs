//! Cache-accurate system mode: the alternative to the probabilistic miss
//! model of [`crate::system`].
//!
//! Here every core runs a synthetic *address stream* against a real
//! tagged L1 ([`crate::cache::SetAssocCache`]); misses consult a real
//! per-home-slice MESI [`crate::cache::Directory`] and a real shared-L2
//! slice, and the resulting transaction (2-hop hit, cache-to-cache
//! forward, memory fetch, invalidation) is decided by actual coherence
//! state rather than drawn from per-benchmark probabilities. Miss rates
//! and sharing *emerge* from working-set sizes and the shared-region
//! fraction.
//!
//! Timing simplification (documented in DESIGN.md): directory and L2
//! lookups are performed when the miss is issued rather than when the
//! request message arrives at the home node; message latencies are still
//! paid in full by the transaction legs. This keeps the coherence state
//! machine sequential and race-free while preserving the network-visible
//! behaviour.

use crate::cache::{AccessOutcome, AddressStream, CacheConfig, Directory, DirectoryAction, MesiState, SetAssocCache};
use crate::config::SystemConfig;
use crate::memory::{MemToken, MemoryController};
use crate::protocol::{self, TransactionScript};
use catnap::{MultiNoc, MultiNocConfig, RunReport};
use catnap_noc::{NodeId, PacketDescriptor, PacketId};
use catnap_traffic::generator::PacketSink;
use catnap_util::SimRng;
use std::collections::{BTreeMap, HashMap};

/// Per-core parameters of the cache-accurate mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheWorkload {
    /// Fraction of instructions that access memory.
    pub mem_ratio: f64,
    /// Private working-set bytes per core.
    pub working_set: u64,
    /// Shared-region bytes (one region for all cores).
    pub shared_set: u64,
    /// Fraction of accesses hitting the shared region.
    pub shared_fraction: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
}

impl CacheWorkload {
    /// A light, cache-resident workload.
    pub fn light() -> Self {
        CacheWorkload {
            mem_ratio: 0.3,
            working_set: 16 * 1024,
            shared_set: 64 * 1024,
            shared_fraction: 0.005,
            write_fraction: 0.3,
        }
    }

    /// A heavy, cache-thrashing workload with real sharing.
    pub fn heavy() -> Self {
        CacheWorkload {
            mem_ratio: 0.35,
            working_set: 1024 * 1024,
            shared_set: 256 * 1024,
            shared_fraction: 0.10,
            write_fraction: 0.35,
        }
    }
}

struct CacheCore {
    stream: AddressStream,
    l1: SetAssocCache,
    workload: CacheWorkload,
    outstanding: Vec<(u64, u64)>, // (miss id, deadline insts)
    next_miss: u64,
    instructions: u64,
    stall_cycles: u64,
}

struct Tx {
    core: usize,
    miss: Option<u64>,
    fill: Option<(u64, MesiState)>, // L1 fill on completion
    script: TransactionScript,
}

/// The cache-accurate closed-loop system.
pub struct CacheSystem {
    cfg: SystemConfig,
    /// The network under evaluation.
    pub net: MultiNoc,
    cores: Vec<CacheCore>,
    l2: Vec<SetAssocCache>,
    dirs: Vec<Directory>,
    txs: HashMap<u64, Tx>,
    pkt_to_tx: HashMap<PacketId, (u64, usize)>,
    events: BTreeMap<u64, Vec<(u64, usize)>>,
    mcs: Vec<MemoryController>,
    mc_nodes: Vec<NodeId>,
    mc_tokens: HashMap<u64, (u64, usize)>,
    mc_retry: Vec<(usize, u64, usize)>,
    rng: SimRng,
    next_tx: u64,
    next_packet: u64,
    next_token: u64,
    misses_issued: u64,
    misses_completed: u64,
    /// Count of transactions by kind, for validation:
    /// `[l2_hit, forward, memory, invalidate, writeback]`.
    pub tx_kinds: [u64; 5],
}

impl CacheSystem {
    /// Builds a system where every core runs `workload`.
    pub fn new(cfg: SystemConfig, net_cfg: MultiNocConfig, workload: CacheWorkload, seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid system config: {e}"));
        let mut net = MultiNoc::new(net_cfg);
        net.set_track_deliveries(true);
        let num_cores = cfg.num_cores(net.dims());
        let cores = (0..num_cores)
            .map(|i| CacheCore {
                stream: AddressStream::new(
                    i,
                    workload.working_set,
                    workload.shared_set,
                    workload.shared_fraction,
                    seed,
                ),
                l1: SetAssocCache::new(CacheConfig::l1()),
                workload,
                outstanding: Vec::new(),
                next_miss: 0,
                instructions: 0,
                stall_cycles: 0,
            })
            .collect();
        let nodes = net.dims().num_nodes();
        let mc_nodes = cfg.mc_nodes(net.dims());
        let mcs = mc_nodes
            .iter()
            .map(|_| MemoryController::new(cfg.memory_latency, cfg.mc_requests_per_cycle, cfg.mc_queue_depth))
            .collect();
        CacheSystem {
            cfg,
            net,
            cores,
            l2: (0..nodes).map(|_| SetAssocCache::new(CacheConfig::l2_slice())).collect(),
            dirs: (0..nodes).map(|_| Directory::default()).collect(),
            txs: HashMap::new(),
            pkt_to_tx: HashMap::new(),
            events: BTreeMap::new(),
            mcs,
            mc_nodes,
            mc_tokens: HashMap::new(),
            mc_retry: Vec::new(),
            rng: SimRng::seed_from_u64(seed | 1),
            next_tx: 0,
            next_packet: 0,
            next_token: 0,
            misses_issued: 0,
            misses_completed: 0,
            tx_kinds: [0; 5],
        }
    }

    /// Functional cache warmup: replays `accesses_per_core` accesses per
    /// core through the L1s, L2 slices and directories with zero latency
    /// and no network traffic, then clears the cache statistics. This is
    /// the standard trace-driven-simulation practice for skipping the
    /// cold-start transient (every first touch would otherwise be a
    /// memory fetch, and the memory controllers' bandwidth makes warming
    /// through the timing model take hundreds of thousands of cycles).
    pub fn warm(&mut self, accesses_per_core: usize) {
        for ci in 0..self.cores.len() {
            for _ in 0..accesses_per_core {
                let addr = self.cores[ci].stream.next_addr();
                let is_write = self.rng.gen::<f64>() < self.cores[ci].workload.write_fraction;
                let outcome = self.cores[ci].l1.access(addr, is_write);
                if let AccessOutcome::Miss { victim_writeback } = outcome {
                    let block = addr / 64;
                    let home = self.home_of(block);
                    if !matches!(self.l2[home.index()].access(addr, false), AccessOutcome::Hit) {
                        self.l2[home.index()].fill(addr, MesiState::Exclusive);
                    }
                    let action = if is_write {
                        self.dirs[home.index()].get_m(block, ci as u32, true)
                    } else {
                        self.dirs[home.index()].get_s(block, ci as u32, true)
                    };
                    match action {
                        DirectoryAction::ForwardToOwner(owner) => {
                            self.cores[owner as usize].l1.invalidate(addr);
                        }
                        DirectoryAction::Invalidate(sharers) => {
                            for s in sharers {
                                self.cores[s as usize].l1.invalidate(addr);
                            }
                        }
                        DirectoryAction::SendData { .. } => {}
                    }
                    let state = if is_write {
                        MesiState::Modified
                    } else {
                        MesiState::Shared
                    };
                    self.cores[ci].l1.fill(addr, state);
                    if let Some(victim) = victim_writeback {
                        let victim_home = self.home_of(victim / 64);
                        self.dirs[victim_home.index()].put_m(victim / 64, ci as u32);
                    }
                }
            }
        }
        for c in &mut self.cores {
            c.l1.reset_stats();
        }
        for l2 in &mut self.l2 {
            l2.reset_stats();
        }
    }

    /// Home L2 slice of a block (address-interleaved).
    fn home_of(&self, block: u64) -> NodeId {
        let nodes = self.net.dims().num_nodes() as u64;
        NodeId(((block ^ (block >> 17)) % nodes) as u16)
    }

    fn mc_for(&mut self, block: u64) -> NodeId {
        self.mc_nodes[(block % self.mc_nodes.len() as u64) as usize]
    }

    /// Total instructions committed.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate L1 miss rate so far.
    pub fn l1_miss_rate(&self) -> f64 {
        let acc: u64 = self.cores.iter().map(|c| c.l1.accesses).sum();
        let miss: u64 = self.cores.iter().map(|c| c.l1.misses).sum();
        if acc == 0 {
            0.0
        } else {
            miss as f64 / acc as f64
        }
    }

    /// Directory invariants hold everywhere (test hook).
    pub fn directories_consistent(&self) -> bool {
        self.dirs.iter().all(Directory::check_invariants)
    }

    fn start_tx(&mut self, tx: Tx, now: u64) {
        let tx_id = self.next_tx;
        self.next_tx += 1;
        self.txs.insert(tx_id, tx);
        self.start_leg(tx_id, 0, now);
    }

    fn start_leg(&mut self, tx_id: u64, mut leg_idx: usize, now: u64) {
        loop {
            let (from, to) = {
                let leg = &self.txs[&tx_id].script.legs[leg_idx];
                (leg.from, leg.to)
            };
            if from != to {
                let leg = self.txs[&tx_id].script.legs[leg_idx];
                let pid = PacketId(self.next_packet);
                self.next_packet += 1;
                self.pkt_to_tx.insert(pid, (tx_id, leg_idx));
                self.net.submit(PacketDescriptor {
                    id: pid,
                    src: leg.from,
                    dst: leg.to,
                    bits: leg.bits,
                    class: leg.class,
                    created_cycle: now,
                });
                return;
            }
            match self.after_delivery(tx_id, leg_idx, now) {
                Some(next) => leg_idx = next,
                None => return,
            }
        }
    }

    fn after_delivery(&mut self, tx_id: u64, leg_idx: usize, now: u64) -> Option<usize> {
        let (completes_at, legs_len, core, miss) = {
            let tx = &self.txs[&tx_id];
            (tx.script.completes_at, tx.script.legs.len(), tx.core, tx.miss)
        };
        if leg_idx == completes_at {
            if let Some(miss) = miss {
                let fill = self.txs[&tx_id].fill;
                let c = &mut self.cores[core];
                if let Some(pos) = c.outstanding.iter().position(|&(id, _)| id == miss) {
                    c.outstanding.swap_remove(pos);
                }
                if let Some((addr, state)) = fill {
                    c.l1.fill(addr, state);
                }
                self.misses_completed += 1;
            }
        }
        let next = leg_idx + 1;
        if next >= legs_len {
            self.txs.remove(&tx_id);
            return None;
        }
        let (via_mc, delay, mc_node) = {
            let leg = &self.txs[&tx_id].script.legs[next];
            (leg.via_mc, leg.delay_before, leg.from)
        };
        if via_mc {
            let mc_idx = self
                .mc_nodes
                .iter()
                .position(|&n| n == mc_node)
                .expect("via_mc leg from an MC node");
            let token = MemToken(self.next_token);
            self.next_token += 1;
            if self.mcs[mc_idx].accept(token) {
                self.mc_tokens.insert(token.0, (tx_id, next));
            } else {
                self.mc_retry.push((mc_idx, tx_id, next));
            }
            return None;
        }
        if delay > 0 {
            self.events.entry(now + u64::from(delay)).or_default().push((tx_id, next));
            return None;
        }
        Some(next)
    }

    /// Issues the coherence transaction for one L1 miss, consulting the
    /// real directory.
    fn issue_miss(&mut self, core_idx: usize, addr: u64, is_write: bool, miss_id: u64, now: u64) {
        self.misses_issued += 1;
        let node = self.cfg.node_of_core(core_idx);
        let block = addr / 64;
        let home = self.home_of(block);
        // L2 slice lookup at the home node.
        let l2_hit = matches!(self.l2[home.index()].access(addr, false), AccessOutcome::Hit);
        if !l2_hit {
            self.l2[home.index()].fill(addr, MesiState::Exclusive);
        }
        let action = if is_write {
            self.dirs[home.index()].get_m(block, core_idx as u32, l2_hit)
        } else {
            self.dirs[home.index()].get_s(block, core_idx as u32, l2_hit)
        };
        let fill_state = if is_write {
            MesiState::Modified
        } else {
            MesiState::Shared
        };
        let (script, kind) = match action {
            DirectoryAction::SendData { from_memory: false } => (protocol::read_l2_hit(node, home, &self.cfg), 0),
            DirectoryAction::SendData { from_memory: true } => {
                let mc = self.mc_for(block);
                (protocol::read_memory(node, home, mc, &self.cfg), 2)
            }
            DirectoryAction::ForwardToOwner(owner_core) => {
                let owner_node = self.cfg.node_of_core(owner_core as usize);
                // The owner's L1 loses exclusivity (read) or the line
                // (write).
                self.cores[owner_core as usize].l1.invalidate(addr);
                if owner_node == node {
                    // Owner shares the node: behave like a local hit.
                    (protocol::read_l2_hit(node, home, &self.cfg), 1)
                } else {
                    (protocol::read_forward(node, home, owner_node, &self.cfg), 1)
                }
            }
            DirectoryAction::Invalidate(sharers) => {
                // Invalidate every sharer's L1; the first sharer is on the
                // critical path, the rest are background pairs.
                for &s in &sharers {
                    self.cores[s as usize].l1.invalidate(addr);
                }
                let first = self.cfg.node_of_core(sharers[0] as usize);
                for &s in sharers.iter().skip(1) {
                    let sn = self.cfg.node_of_core(s as usize);
                    if sn != home {
                        let inv = Tx {
                            core: core_idx,
                            miss: None,
                            fill: None,
                            script: protocol::write_invalidate(node, home, sn, &self.cfg),
                        };
                        self.start_tx(inv, now);
                    }
                }
                if first == node || first == home {
                    (protocol::read_l2_hit(node, home, &self.cfg), 3)
                } else {
                    (protocol::write_invalidate(node, home, first, &self.cfg), 3)
                }
            }
        };
        self.tx_kinds[kind] += 1;
        self.start_tx(
            Tx {
                core: core_idx,
                miss: Some(miss_id),
                fill: Some((addr, fill_state)),
                script,
            },
            now,
        );
    }

    fn issue_writeback(&mut self, core_idx: usize, victim_addr: u64, now: u64) {
        let node = self.cfg.node_of_core(core_idx);
        let block = victim_addr / 64;
        let home = self.home_of(block);
        self.dirs[home.index()].put_m(block, core_idx as u32);
        if home != node {
            self.tx_kinds[4] += 1;
            self.start_tx(
                Tx {
                    core: core_idx,
                    miss: None,
                    fill: None,
                    script: protocol::writeback(node, home, &self.cfg),
                },
                now,
            );
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        let now = self.net.cycle();

        // Cores: commit instructions against real L1s.
        for ci in 0..self.cores.len() {
            let mut committed = 0;
            let commit_width = self.cfg.commit_width;
            while committed < commit_width {
                // Window/MSHR stalls.
                let c = &self.cores[ci];
                if c.outstanding.len() >= self.cfg.mshrs {
                    break;
                }
                if let Some(&(_, deadline)) = c.outstanding.iter().min_by_key(|&&(_, d)| d) {
                    if c.instructions >= deadline {
                        break;
                    }
                }
                let is_mem = self.rng.gen::<f64>() < self.cores[ci].workload.mem_ratio;
                if is_mem {
                    let addr = self.cores[ci].stream.next_addr();
                    let is_write = self.rng.gen::<f64>() < self.cores[ci].workload.write_fraction;
                    match self.cores[ci].l1.access(addr, is_write) {
                        AccessOutcome::Hit => {}
                        AccessOutcome::Miss { victim_writeback } => {
                            let c = &mut self.cores[ci];
                            let miss_id = c.next_miss;
                            c.next_miss += 1;
                            let deadline = c.instructions + u64::from(self.cfg.window);
                            c.outstanding.push((miss_id, deadline));
                            self.issue_miss(ci, addr, is_write, miss_id, now);
                            if let Some(victim) = victim_writeback {
                                self.issue_writeback(ci, victim, now);
                            }
                        }
                    }
                }
                self.cores[ci].instructions += 1;
                committed += 1;
            }
            if committed == 0 {
                self.cores[ci].stall_cycles += 1;
            }
        }

        // Delayed legs.
        let keys: Vec<u64> = self.events.range(..=now).map(|(&k, _)| k).collect();
        for k in keys {
            for (tx_id, leg_idx) in self.events.remove(&k).expect("key exists") {
                self.start_leg(tx_id, leg_idx, now);
            }
        }

        // Memory controllers.
        let mut retry = std::mem::take(&mut self.mc_retry);
        for (mc_idx, tx_id, leg_idx) in retry.drain(..) {
            let token = MemToken(self.next_token);
            self.next_token += 1;
            if self.mcs[mc_idx].accept(token) {
                self.mc_tokens.insert(token.0, (tx_id, leg_idx));
            } else {
                self.mc_retry.push((mc_idx, tx_id, leg_idx));
            }
        }
        drop(retry);
        let mut ready = Vec::new();
        for i in 0..self.mcs.len() {
            ready.clear();
            self.mcs[i].tick(now, &mut ready);
            let tokens: Vec<MemToken> = ready.clone();
            for token in tokens {
                let (tx_id, leg_idx) = self.mc_tokens.remove(&token.0).expect("unknown token");
                self.start_leg(tx_id, leg_idx, now);
            }
        }

        self.net.step();
        let now = self.net.cycle();
        for tail in self.net.drain_delivered() {
            if let Some((tx_id, leg_idx)) = self.pkt_to_tx.remove(&tail.packet) {
                if let Some(next) = self.after_delivery(tx_id, leg_idx, now) {
                    self.start_leg(tx_id, next, now);
                }
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Final report.
    pub fn report(&mut self) -> CacheSystemReport {
        let network = self.net.finish();
        let cycles = network.cycles.max(1);
        let insts = self.total_instructions();
        CacheSystemReport {
            cycles: network.cycles,
            total_instructions: insts,
            ipc: insts as f64 / cycles as f64,
            l1_miss_rate: self.l1_miss_rate(),
            misses_issued: self.misses_issued,
            misses_completed: self.misses_completed,
            tx_kinds: self.tx_kinds,
            network,
        }
    }
}

/// Report of a cache-accurate run.
#[derive(Clone, Debug)]
pub struct CacheSystemReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub total_instructions: u64,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Emergent L1 miss rate.
    pub l1_miss_rate: f64,
    /// Misses issued.
    pub misses_issued: u64,
    /// Misses completed.
    pub misses_completed: u64,
    /// Transactions by kind: `[l2_hit, forward, memory, invalidate,
    /// writeback]`.
    pub tx_kinds: [u64; 5],
    /// Network report.
    pub network: RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(workload: CacheWorkload) -> CacheSystem {
        let mut s = CacheSystem::new(
            SystemConfig::paper(),
            MultiNocConfig::catnap_4x128().gating(true),
            workload,
            5,
        );
        s.warm(2_000);
        s
    }

    #[test]
    fn light_workload_mostly_hits() {
        let mut s = sys(CacheWorkload::light());
        s.run(3_000);
        let rep = s.report();
        assert!(
            rep.l1_miss_rate < 0.08,
            "cache-resident WS: miss rate {}",
            rep.l1_miss_rate
        );
        assert!(rep.total_instructions > 500_000);
        assert!(s.directories_consistent());
    }

    #[test]
    fn heavy_workload_misses_and_uses_memory() {
        let mut s = sys(CacheWorkload::heavy());
        s.run(3_000);
        let rep = s.report();
        assert!(rep.l1_miss_rate > 0.05, "thrashing WS: miss rate {}", rep.l1_miss_rate);
        assert!(rep.tx_kinds[2] > 0, "memory fetches must occur: {:?}", rep.tx_kinds);
        assert!(rep.network.packets_generated > 1_000);
        assert!(s.directories_consistent());
    }

    #[test]
    fn sharing_produces_forwards_and_invalidations() {
        let mut w = CacheWorkload::heavy();
        w.shared_fraction = 0.4;
        w.shared_set = 32 * 1024; // hot shared region
        let mut s = sys(w);
        s.run(3_000);
        let rep = s.report();
        assert!(
            rep.tx_kinds[1] + rep.tx_kinds[3] > 50,
            "hot sharing must trigger forwards/invalidations: {:?}",
            rep.tx_kinds
        );
        assert!(s.directories_consistent());
    }

    #[test]
    fn heavier_workload_loads_network_more() {
        let mut light = sys(CacheWorkload::light());
        light.run(2_000);
        let l = light.report();
        let mut heavy = sys(CacheWorkload::heavy());
        heavy.run(2_000);
        let h = heavy.report();
        assert!(
            h.network.accepted_flits_per_node_cycle > 2.0 * l.network.accepted_flits_per_node_cycle,
            "heavy {} vs light {}",
            h.network.accepted_flits_per_node_cycle,
            l.network.accepted_flits_per_node_cycle
        );
    }

    #[test]
    fn deterministic() {
        let fp = |seed| {
            let mut s = CacheSystem::new(
                SystemConfig::paper(),
                MultiNocConfig::catnap_4x128(),
                CacheWorkload::heavy(),
                seed,
            );
            s.warm(500);
            s.run(800);
            let r = s.report();
            (r.total_instructions, r.misses_issued, r.network.packets_generated)
        };
        assert_eq!(fp(9), fp(9));
        assert_ne!(fp(9), fp(10));
    }
}
