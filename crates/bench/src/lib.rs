#![warn(missing_docs)]

//! # catnap-bench
//!
//! Shared harness utilities for the per-figure benchmark targets. Each
//! `[[bench]]` target (with `harness = false`) regenerates one table or
//! figure of the Catnap paper: it runs the relevant simulations, prints
//! an aligned text table mirroring the paper's rows/series, and writes
//! the series as JSON under `bench_out/`.
//!
//! Run everything with `cargo bench --workspace`, or one figure with
//! e.g. `cargo bench -p catnap-bench --bench fig10_uniform_power_gating`.

pub mod cached;
pub mod harness;
pub mod runs;

pub use cached::{
    job_fingerprint, run_job_uncached, run_synthetic_cached, sweep_cached, sweep_requests, CacheOutcome, JobRequest,
    SimJob,
};
pub use harness::{emit_csv_timeline, emit_json, emit_trace, print_banner, Table};
pub use runs::{latency_sweep, latency_sweep_cached, run_mix, run_synthetic, trace_synthetic, MixResult, SweepPoint};
