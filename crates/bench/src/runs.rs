//! Common measurement procedures shared by the figure benches.

use crate::cached::{sweep_cached, SimJob};
use catnap::{MultiNoc, MultiNocConfig, MultiNocPowerReport, SimCache};
use catnap_multicore::{System, SystemConfig, SystemReport};
use catnap_power::TechParams;
use catnap_telemetry::{RecordingSink, Trace};
use catnap_traffic::{LoadSchedule, SyntheticPattern, SyntheticWorkload, WorkloadMix};
use catnap_util::pool::{effective_parallelism, ThreadPool};
use catnap_util::{impl_from_json_struct, impl_to_json_struct};
use std::sync::Arc;

/// One point of a synthetic-traffic measurement.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Configuration name.
    pub config: String,
    /// Offered load, packets per node per cycle.
    pub offered: f64,
    /// Accepted throughput, packets per node per cycle.
    pub accepted: f64,
    /// Mean end-to-end packet latency in cycles.
    pub latency: f64,
    /// Compensated-sleep-cycle fraction in the measurement window.
    pub csc: f64,
    /// Dynamic network power, watts.
    pub dynamic_w: f64,
    /// Static network power (after gating), watts.
    pub static_w: f64,
}

impl_to_json_struct!(SweepPoint {
    config,
    offered,
    accepted,
    latency,
    csc,
    dynamic_w,
    static_w
});
impl_from_json_struct!(SweepPoint {
    config,
    offered,
    accepted,
    latency,
    csc,
    dynamic_w,
    static_w
});

impl SweepPoint {
    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.static_w
    }
}

/// Runs synthetic traffic at a constant offered load: `warmup` cycles
/// excluded, `measure` cycles measured.
pub fn run_synthetic(
    cfg: MultiNocConfig,
    pattern: SyntheticPattern,
    offered: f64,
    packet_bits: u32,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SweepPoint {
    run_synthetic_on(cfg, pattern, offered, packet_bits, warmup, measure, seed, None)
}

/// [`run_synthetic`] on a caller-provided shared pool (`None` = let the
/// instance size its own parallelism). Sweeps pass the pool their own
/// points run on, so a point's subnet and shard steps become nested
/// jobs that idle sweep lanes steal. Bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_on(
    cfg: MultiNocConfig,
    pattern: SyntheticPattern,
    offered: f64,
    packet_bits: u32,
    warmup: u64,
    measure: u64,
    seed: u64,
    pool: Option<Arc<ThreadPool>>,
) -> SweepPoint {
    let name = cfg.name.clone();
    let tech = TechParams::catnap_32nm();
    let mut net = match pool {
        Some(p) => MultiNoc::with_shared_pool(cfg, p),
        None => MultiNoc::new(cfg),
    };
    let mut load = SyntheticWorkload::new(pattern, offered, packet_bits, net.dims(), seed);
    for _ in 0..warmup {
        load.drive(&mut net);
        net.step();
    }
    let start = net.snapshot();
    for _ in 0..measure {
        load.drive(&mut net);
        net.step();
    }
    let end = net.snapshot();
    let d = end.delta(&start);
    let power = net.power_between(&start, &end, tech);
    let nodes = net.dims().num_nodes();
    SweepPoint {
        config: name,
        offered,
        accepted: d.accepted_packets_per_node_cycle(nodes),
        latency: d.avg_latency(),
        csc: d.total_gating().csc_fraction(),
        dynamic_w: power.dynamic.total(),
        static_w: power.static_.total(),
    }
}

/// Runs synthetic traffic with recording sinks attached to every subnet
/// and the policy layer, returning the collected [`Trace`]. Feed the
/// result to [`crate::harness::emit_trace`] (Chrome `trace_event` JSON)
/// or [`crate::harness::emit_csv_timeline`] (per-epoch CSV).
///
/// The simulation itself is bit-identical to [`run_synthetic`] at the
/// same inputs — sinks only observe (see `tests/determinism.rs`).
pub fn trace_synthetic(
    cfg: MultiNocConfig,
    pattern: SyntheticPattern,
    offered: f64,
    packet_bits: u32,
    cycles: u64,
    seed: u64,
) -> Trace {
    let mut net = MultiNoc::with_sinks(cfg, |_| RecordingSink::new());
    let mut load = SyntheticWorkload::new(pattern, offered, packet_bits, net.dims(), seed);
    for _ in 0..cycles {
        load.drive(&mut net);
        net.step();
    }
    net.take_trace()
}

/// Latency/throughput sweep over offered loads.
///
/// Sweep points are independent simulations, so they fan out across a
/// thread pool (respecting the `CATNAP_THREADS` override); results come
/// back in load order, and each point is a deterministic function of its
/// inputs, so the output is identical to the serial sweep.
///
/// When `CATNAP_CACHE_DIR` is set, the sweep routes through the
/// fingerprint-keyed [`SimCache`] instead ([`latency_sweep_cached`]):
/// regenerating a figure whose points are already cached becomes O(1)
/// disk reads, and results are bit-identical either way.
pub fn latency_sweep(
    cfg: &MultiNocConfig,
    pattern: SyntheticPattern,
    loads: &[f64],
    packet_bits: u32,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    if std::env::var_os("CATNAP_CACHE_DIR").is_some() {
        let mut cache = SimCache::from_env_or("catnap-cache").expect("CATNAP_CACHE_DIR must be a writable directory");
        return latency_sweep_cached(&mut cache, cfg, pattern, loads, packet_bits, warmup, measure, seed);
    }
    // One work-stealing pool serves the whole sweep: each point is a
    // job, and a point's own subnet and shard steps are nested jobs on
    // the same pool — so lanes idled by the sweep's tail steal shard
    // work from the stragglers instead of going to sleep. No
    // oversubscription: the lane count is fixed regardless of nesting.
    let pool = Arc::new(ThreadPool::new(effective_parallelism(loads.len())));
    let point_cfg = cfg.clone();
    let jobs: Vec<_> = loads
        .iter()
        .map(|&l| {
            let cfg = point_cfg.clone();
            let pool = Arc::clone(&pool);
            move || run_synthetic_on(cfg, pattern, l, packet_bits, warmup, measure, seed, Some(pool))
        })
        .collect();
    pool.run(jobs)
}

/// [`latency_sweep`] through an explicit result cache: each point is an
/// O(1) read when previously computed, a checkpoint resume when another
/// job shares its warm-up prefix, and a full (stored) simulation
/// otherwise. Points run serially — the cache is the speedup here, and
/// misses at different constant rates do not share a warm-up prefix
/// anyway (a warm-up at rate 0.02 is a different warm-up than at 0.05;
/// use a piecewise [`LoadSchedule`] via [`crate::cached::SimJob`] to
/// share one).
#[allow(clippy::too_many_arguments)]
pub fn latency_sweep_cached(
    cache: &mut SimCache,
    cfg: &MultiNocConfig,
    pattern: SyntheticPattern,
    loads: &[f64],
    packet_bits: u32,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let point_cfg = cfg.clone().step_threads(1);
    let jobs: Vec<SimJob> = loads
        .iter()
        .map(|&l| SimJob {
            cfg: point_cfg.clone(),
            pattern,
            schedule: LoadSchedule::constant(l),
            packet_bits,
            warmup,
            measure,
            seed,
        })
        .collect();
    sweep_cached(cache, &jobs).into_iter().map(|(point, _)| point).collect()
}

/// Result of a closed-loop multiprogrammed run.
#[derive(Clone, Debug)]
pub struct MixResult {
    /// Network configuration name.
    pub config: String,
    /// Workload mix name.
    pub mix: String,
    /// System report (IPC etc.).
    pub system: SystemReport,
    /// Network power over the measured window.
    pub power: MultiNocPowerReport,
}

impl_to_json_struct!(MixResult {
    config,
    mix,
    system,
    power
});

/// Runs a workload mix on a network design: `warmup` + `measure` cycles;
/// power and CSC measured over the `measure` window only.
pub fn run_mix(net_cfg: MultiNocConfig, mix: WorkloadMix, warmup: u64, measure: u64, seed: u64) -> MixResult {
    let config = net_cfg.name.clone();
    let tech = TechParams::catnap_32nm();
    let mut sys = System::new(SystemConfig::paper(), net_cfg, mix, seed);
    sys.run(warmup);
    let start = sys.net.snapshot();
    sys.run(measure);
    let end = sys.net.snapshot();
    let power = sys.net.power_between(&start, &end, tech);
    let system = sys.report();
    MixResult {
        config,
        mix: mix.name().to_string(),
        system,
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_point_sane() {
        let p = run_synthetic(
            MultiNocConfig::catnap_4x128(),
            SyntheticPattern::UniformRandom,
            0.05,
            512,
            500,
            1_500,
            3,
        );
        assert!(p.accepted > 0.03 && p.accepted <= 0.06, "accepted {}", p.accepted);
        assert!(p.latency > 10.0 && p.latency < 200.0);
        assert!(p.total_w() > 1.0);
    }

    #[test]
    fn traced_run_collects_all_event_streams() {
        let t = trace_synthetic(
            MultiNocConfig::catnap_2x128_64core().gating(true),
            SyntheticPattern::UniformRandom,
            0.05,
            512,
            800,
            3,
        );
        assert_eq!(t.meta.cycles, 800);
        assert_eq!(t.subnets.len(), 2);
        assert!(
            !t.policy.is_empty(),
            "policy stream must carry select/inject/eject events"
        );
        let kinds = t.kind_counts();
        assert!(kinds[3] > 0, "no select events");
        assert!(kinds[4] > 0, "no inject events");
        assert!(kinds[5] > 0, "no eject events");
        assert!(kinds[0] > 0, "gating enabled but no power transitions");
    }

    #[test]
    fn mix_result_sane() {
        let r = run_mix(MultiNocConfig::single_noc_512b(), WorkloadMix::Light, 500, 1_000, 5);
        assert!(r.system.ipc > 10.0);
        assert!(r.power.total() > 10.0);
        assert_eq!(r.mix, "Light");
    }

    /// A serialized [`SweepPoint`] must keep the exact key set and order
    /// of the committed `bench_out/fig06.json` series, so regenerated
    /// figures stay diffable against the checked-in outputs.
    #[test]
    fn sweep_point_matches_fig06_fixture_shape() {
        use catnap_util::{Json, ToJson};
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_out/fig06.json");
        let text = std::fs::read_to_string(path).expect("read fig06 fixture");
        let fixture = Json::parse(&text).expect("parse fig06 fixture");
        let Json::Arr(rows) = &fixture else {
            panic!("fig06 must be a JSON array")
        };
        assert!(!rows.is_empty());
        let Json::Obj(first) = &rows[0] else {
            panic!("fig06 rows must be objects")
        };
        let fixture_keys: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();

        let p = SweepPoint {
            config: "4NT-128b".to_string(),
            offered: 0.6,
            accepted: 0.394771484375,
            latency: 2170.1624406920537,
            csc: 0.0,
            dynamic_w: 19.643057834498343,
            static_w: 22.0,
        };
        let Json::Obj(ours) = p.to_json() else {
            panic!("SweepPoint must serialize to an object")
        };
        let our_keys: Vec<&str> = ours.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            our_keys, fixture_keys,
            "SweepPoint keys drifted from the fig06 series shape"
        );
    }

    /// The cached sweep path must be a pure wall-clock optimization:
    /// byte-identical points to the plain pooled sweep, and a repeated
    /// sweep served entirely from the result cache.
    #[test]
    fn cached_sweep_is_bit_identical_to_plain_sweep() {
        use catnap_util::ToJson;
        let dir = std::env::temp_dir().join(format!("catnap-runs-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = SimCache::new(&dir, 64).unwrap();
        let cfg = MultiNocConfig::catnap_2x128_64core().gating(true);
        let loads = [0.02, 0.05];
        let canon = |pts: &[SweepPoint]| pts.iter().map(|p| p.to_json().to_compact_string()).collect::<Vec<_>>();

        let plain = latency_sweep(&cfg, SyntheticPattern::UniformRandom, &loads, 512, 200, 200, 7);
        let first = latency_sweep_cached(
            &mut cache,
            &cfg,
            SyntheticPattern::UniformRandom,
            &loads,
            512,
            200,
            200,
            7,
        );
        let second = latency_sweep_cached(
            &mut cache,
            &cfg,
            SyntheticPattern::UniformRandom,
            &loads,
            512,
            200,
            200,
            7,
        );
        assert_eq!(canon(&plain), canon(&first), "cached sweep altered results");
        assert_eq!(canon(&plain), canon(&second), "cache replay altered results");
        assert_eq!(cache.stats().result_hits, 2, "second sweep must be all hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// serialize ∘ parse is a string-level fixed point on the committed
    /// fig06 series (the in-tree writer reproduces the fixture verbatim).
    #[test]
    fn fig06_fixture_roundtrips_verbatim() {
        use catnap_util::Json;
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_out/fig06.json");
        let text = std::fs::read_to_string(path).expect("read fig06 fixture");
        let parsed = Json::parse(&text).expect("parse fig06 fixture");
        assert_eq!(parsed.to_pretty_string(), text.trim_end());
    }
}
