//! Memoized simulation runs: fingerprint-keyed result reuse and
//! warm-up-checkpoint sharing.
//!
//! A [`SimJob`] is the full recipe for one synthetic measurement —
//! resolved network configuration, traffic pattern, load schedule,
//! warm-up and measurement horizons, seed. Two fingerprints are derived
//! from it:
//!
//! * [`job_fingerprint`] — over everything; keys the *result* cache.
//!   Re-submitting an identical job is an O(1) disk read.
//! * [`warmup_fingerprint`] — over everything that shapes cycles
//!   `[0, warmup)` only (the schedule is clipped to that prefix; the
//!   measurement horizon and post-warm-up rates are excluded). Keys the
//!   *checkpoint* cache: a sweep of N points that agree on the warm-up
//!   prefix simulates it once and resumes N times.
//!
//! Resumed runs are bit-identical to straight-through runs — asserted
//! by the tests here and by `tests/checkpoint.rs` across the
//! determinism goldens — so memoization is a pure wall-clock
//! optimization, never a semantic one. Any unreadable or stale cache
//! entry silently degrades to a full simulation.

use crate::runs::SweepPoint;
use catnap::{config_fingerprint, MultiNoc, MultiNocConfig, SimCache};
use catnap_power::TechParams;
use catnap_traffic::{LoadSchedule, SyntheticPattern, SyntheticWorkload};
use catnap_util::codec::Fnv64;
use catnap_util::json::{FromJson, ToJson};
use catnap_util::Json;

/// A fully-resolved simulation job: the unit of caching and of
/// `catnap-serve` batch requests.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// Network configuration (fingerprinted via
    /// [`catnap::config_fingerprint`]).
    pub cfg: MultiNocConfig,
    /// Destination pattern.
    pub pattern: SyntheticPattern,
    /// Offered-load schedule over the whole run (warm-up + measurement).
    pub schedule: LoadSchedule,
    /// Packet size in bits.
    pub packet_bits: u32,
    /// Warm-up cycles (excluded from measurement; checkpointed).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
}

/// A sweep point addressed by *preset name* — the client-side
/// counterpart of `catnap-serve`'s `parse_job`. Where [`SimJob`] holds a
/// fully-resolved [`MultiNocConfig`], a `JobRequest` holds the wire
/// form: the preset string plus every knob the protocol carries, so a
/// coordinator (`catnap-hive`) can encode it into a request line and any
/// worker rebuilds the identical resolved job. `to_job_json` ∘
/// `parse_job` is fingerprint-preserving (pinned by a `catnap-serve`
/// test).
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Config preset name (`catnap-4x128`, `single-noc-128b`, …).
    pub config: String,
    /// Power gating on/off.
    pub gating: bool,
    /// Worker lanes for stepping subnets/shards (scheduling only; never
    /// part of any fingerprint).
    pub threads: usize,
    /// Destination pattern.
    pub pattern: SyntheticPattern,
    /// Offered-load schedule over warm-up + measurement.
    pub schedule: LoadSchedule,
    /// Packet size in bits.
    pub packet_bits: u32,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
}

impl JobRequest {
    /// Encodes the request as the protocol's `"job"` object.
    pub fn to_job_json(&self) -> Json {
        let mut fields = vec![
            ("config".to_string(), Json::Str(self.config.clone())),
            ("gating".to_string(), Json::Bool(self.gating)),
            ("threads".to_string(), Json::Int(self.threads as i64)),
            ("pattern".to_string(), Json::Str(self.pattern.name().to_string())),
        ];
        if let SyntheticPattern::HotSpot { hotspot, per_mille } = self.pattern {
            fields.push(("hotspot".to_string(), Json::Int(i64::from(hotspot.0))));
            fields.push(("hotspot_per_mille".to_string(), Json::Int(i64::from(per_mille))));
        }
        let segments = self.schedule.segments();
        if segments.len() == 1 && segments[0].0 == 0 {
            fields.push(("rate".to_string(), Json::Num(segments[0].1)));
        } else {
            let rows = segments
                .iter()
                .map(|&(from, rate)| Json::Arr(vec![Json::Int(from as i64), Json::Num(rate)]))
                .collect();
            fields.push(("schedule".to_string(), Json::Arr(rows)));
        }
        fields.push(("packet_bits".to_string(), Json::Int(i64::from(self.packet_bits))));
        fields.push(("warmup".to_string(), Json::Int(self.warmup as i64)));
        fields.push(("measure".to_string(), Json::Int(self.measure as i64)));
        fields.push(("seed".to_string(), Json::Int(self.seed as i64)));
        Json::Obj(fields)
    }
}

/// The [`JobRequest`]s of a constant-load latency sweep: one request per
/// offered load, single-threaded workers (a fleet parallelizes across
/// points, not within them). The exact counterpart of
/// [`crate::runs::latency_sweep`]'s point list, so a distributed sweep
/// can be checked byte-for-byte against the serial one.
#[allow(clippy::too_many_arguments)]
pub fn sweep_requests(
    preset: &str,
    gating: bool,
    pattern: SyntheticPattern,
    loads: &[f64],
    packet_bits: u32,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<JobRequest> {
    loads
        .iter()
        .map(|&l| JobRequest {
            config: preset.to_string(),
            gating,
            threads: 1,
            pattern,
            schedule: LoadSchedule::constant(l),
            packet_bits,
            warmup,
            measure,
            seed,
        })
        .collect()
}

/// How a cached run was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Result served from the result cache; nothing simulated.
    Hit,
    /// Warm-up restored from a shared checkpoint; only the measurement
    /// window simulated.
    Resume,
    /// Full simulation; result and warm-up checkpoint stored for later.
    Miss,
}

impl CacheOutcome {
    /// Stable name for JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Resume => "resume",
            CacheOutcome::Miss => "miss",
        }
    }
}

fn write_pattern(h: &mut Fnv64, p: SyntheticPattern) {
    h.write_str(p.name());
    if let SyntheticPattern::HotSpot { hotspot, per_mille } = p {
        h.write_u64(u64::from(hotspot.0));
        h.write_u64(u64::from(per_mille));
    }
}

/// Fingerprint of the complete job — the result-cache key.
pub fn job_fingerprint(job: &SimJob) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("catnap-job");
    h.write_u64(config_fingerprint(&job.cfg));
    write_pattern(&mut h, job.pattern);
    h.write_u32(job.packet_bits);
    h.write_u64(job.seed);
    h.write_u64(job.warmup);
    h.write_u64(job.measure);
    for &(from, rate) in job.schedule.segments() {
        h.write_u64(from);
        h.write_f64(rate);
    }
    h.finish()
}

/// Fingerprint of the warm-up prefix — the checkpoint-cache key. Only
/// inputs that shape cycles `[0, warmup)` enter: the schedule is
/// clipped to segments starting before `warmup`, and the measurement
/// horizon is excluded, so sweep points differing only after warm-up
/// share one checkpoint.
pub fn warmup_fingerprint(job: &SimJob) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("catnap-warmup");
    h.write_u64(config_fingerprint(&job.cfg));
    write_pattern(&mut h, job.pattern);
    h.write_u32(job.packet_bits);
    h.write_u64(job.seed);
    h.write_u64(job.warmup);
    for &(from, rate) in job.schedule.segments().iter().filter(|&&(from, _)| from < job.warmup) {
        h.write_u64(from);
        h.write_f64(rate);
    }
    h.finish()
}

/// Runs the measurement window on an already-warmed simulation and
/// reports the standard sweep-point metrics over it.
fn measure_window(net: &mut MultiNoc, load: &mut SyntheticWorkload, job: &SimJob) -> SweepPoint {
    let tech = TechParams::catnap_32nm();
    let start = net.snapshot();
    for _ in 0..job.measure {
        load.drive(net);
        net.step();
    }
    let end = net.snapshot();
    let d = end.delta(&start);
    let power = net.power_between(&start, &end, tech);
    let nodes = net.dims().num_nodes();
    SweepPoint {
        config: job.cfg.name.clone(),
        offered: job.schedule.rate_at(job.warmup),
        accepted: d.accepted_packets_per_node_cycle(nodes),
        latency: d.avg_latency(),
        csc: d.total_gating().csc_fraction(),
        dynamic_w: power.dynamic.total(),
        static_w: power.static_.total(),
    }
}

/// Runs a job straight through with no cache involved (the baseline the
/// cached paths are measured against).
pub fn run_job_uncached(job: &SimJob) -> SweepPoint {
    let mut net = MultiNoc::new(job.cfg.clone());
    let mut load =
        SyntheticWorkload::with_schedule(job.pattern, job.schedule.clone(), job.packet_bits, net.dims(), job.seed);
    for _ in 0..job.warmup {
        load.drive(&mut net);
        net.step();
    }
    measure_window(&mut net, &mut load, job)
}

fn try_resume(cache: &mut SimCache, job: &SimJob, wkey: u64) -> Option<(MultiNoc, SyntheticWorkload)> {
    let blob = cache.get_checkpoint(wkey)?;
    let (net, driver) = MultiNoc::resume_from(job.cfg.clone(), &blob).ok()?;
    if net.cycle() != job.warmup {
        return None;
    }
    let load =
        SyntheticWorkload::decode_position(job.pattern, job.schedule.clone(), job.packet_bits, net.dims(), &driver)
            .ok()?;
    Some((net, load))
}

/// Runs a job through the cache: result hit, warm-up resume, or full
/// simulation (in that order of preference). Misses populate both
/// caches for later submissions.
pub fn run_synthetic_cached(cache: &mut SimCache, job: &SimJob) -> (SweepPoint, CacheOutcome) {
    let key = job_fingerprint(job);
    if let Some(text) = cache.get_result(key) {
        if let Ok(point) = Json::parse(&text).and_then(|j| SweepPoint::from_json(&j)) {
            return (point, CacheOutcome::Hit);
        }
    }
    let wkey = warmup_fingerprint(job);
    let (point, outcome) = if let Some((mut net, mut load)) = try_resume(cache, job, wkey) {
        (measure_window(&mut net, &mut load, job), CacheOutcome::Resume)
    } else {
        let mut net = MultiNoc::new(job.cfg.clone());
        let mut load =
            SyntheticWorkload::with_schedule(job.pattern, job.schedule.clone(), job.packet_bits, net.dims(), job.seed);
        for _ in 0..job.warmup {
            load.drive(&mut net);
            net.step();
        }
        let blob = net.save_checkpoint(&load.encode_position());
        let _ = cache.put_checkpoint(wkey, &blob);
        (measure_window(&mut net, &mut load, job), CacheOutcome::Miss)
    };
    let _ = cache.put_result(key, &point.to_json().to_compact_string());
    (point, outcome)
}

/// Runs a batch of jobs through the cache in order, returning each
/// point with how it was satisfied. Points sharing a warm-up prefix
/// simulate it once (the first miss stores the checkpoint; the rest
/// resume).
pub fn sweep_cached(cache: &mut SimCache, jobs: &[SimJob]) -> Vec<(SweepPoint, CacheOutcome)> {
    jobs.iter().map(|job| run_synthetic_cached(cache, job)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> (SimCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("catnap-cached-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (SimCache::new(&dir, 64).unwrap(), dir)
    }

    fn job_at(measure_rate: f64) -> SimJob {
        SimJob {
            cfg: MultiNocConfig::catnap_2x128_64core().gating(true).step_threads(1),
            pattern: SyntheticPattern::UniformRandom,
            schedule: LoadSchedule::piecewise(vec![(0, 0.15), (300, measure_rate)]),
            packet_bits: 512,
            warmup: 300,
            measure: 300,
            seed: 7,
        }
    }

    fn canon(p: &SweepPoint) -> String {
        p.to_json().to_compact_string()
    }

    #[test]
    fn cached_paths_are_bit_identical_to_straight_through() {
        let (mut cache, dir) = temp_cache("identical");
        let a = job_at(0.02);
        let b = job_at(0.05); // same warm-up prefix, different measure rate

        let (p_miss, o_miss) = run_synthetic_cached(&mut cache, &a);
        assert_eq!(o_miss, CacheOutcome::Miss);
        assert_eq!(canon(&p_miss), canon(&run_job_uncached(&a)), "miss path == plain run");

        let (p_resume, o_resume) = run_synthetic_cached(&mut cache, &b);
        assert_eq!(o_resume, CacheOutcome::Resume, "shared warm-up must resume");
        assert_eq!(
            canon(&p_resume),
            canon(&run_job_uncached(&b)),
            "resumed run == plain run"
        );

        let (p_hit, o_hit) = run_synthetic_cached(&mut cache, &a);
        assert_eq!(o_hit, CacheOutcome::Hit);
        assert_eq!(canon(&p_hit), canon(&p_miss), "hit replays the stored result");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_what_they_should() {
        let a = job_at(0.02);
        let b = job_at(0.05);
        assert_ne!(
            job_fingerprint(&a),
            job_fingerprint(&b),
            "different jobs, different result keys"
        );
        assert_eq!(
            warmup_fingerprint(&a),
            warmup_fingerprint(&b),
            "same prefix, same checkpoint key"
        );
        let mut c = a.clone();
        c.seed = 8;
        assert_ne!(
            warmup_fingerprint(&a),
            warmup_fingerprint(&c),
            "seed is part of the prefix"
        );
        let mut d = a.clone();
        d.cfg = d.cfg.seed(99);
        assert_ne!(
            warmup_fingerprint(&a),
            warmup_fingerprint(&d),
            "config is part of the prefix"
        );
    }
}
