//! Output helpers: aligned text tables and JSON series files.

use catnap_util::json::ToJson;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Prints the figure banner.
pub fn print_banner(id: &str, caption: &str) {
    println!("\n=== {id} — {caption} ===\n");
}

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The `bench_out/` artifact directory (next to the workspace root when
/// run via cargo).
fn bench_out_dir() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../bench_out"))
        .unwrap_or_else(|_| PathBuf::from("bench_out"))
}

fn emit_text(filename: &str, text: &str, what: &str) {
    let dir = bench_out_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(filename);
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\n[{what} written to {}]", path.display());
    }
}

/// Writes a JSON result file under `bench_out/<id>.json`.
pub fn emit_json<T: ToJson>(id: &str, value: &T) {
    emit_text(&format!("{id}.json"), &value.to_json().to_pretty_string(), "series");
}

/// Writes a run trace as Chrome `trace_event` JSON under
/// `bench_out/<id>.trace.json` — load it in `chrome://tracing` or
/// <https://ui.perfetto.dev> to see power-state timelines per router.
pub fn emit_trace(id: &str, trace: &catnap_telemetry::Trace) {
    let json = catnap_telemetry::chrome_trace(trace);
    emit_text(&format!("{id}.trace.json"), &json.to_pretty_string(), "chrome trace");
}

/// Writes a run trace as a per-epoch CSV timeline under
/// `bench_out/<id>.timeline.csv` (see
/// [`catnap_telemetry::power_timeline_csv`] for the columns).
pub fn emit_csv_timeline(id: &str, trace: &catnap_telemetry::Trace, epoch: u64) {
    let csv = catnap_telemetry::power_timeline_csv(trace, epoch);
    emit_text(&format!("{id}.timeline.csv"), &csv, "csv timeline");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "123"]);
        let r = t.render();
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().filter(|&c| c == '-').count(), lines[1].len());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
