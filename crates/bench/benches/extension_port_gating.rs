//! Extension (Related Work, Matsutani et al. TCAD '11): fine-grained
//! per-port power gating as an alternative baseline for the Single-NoC.
//!
//! Individual input ports (buffers + link receivers) gate independently
//! while the crossbar, control and clock stay powered. Ports sleep far
//! more often than whole routers (a router is busy if *any* port is),
//! but each sleeping port saves only its buffer/link leakage — and the
//! wake-up penalty still sits on the critical path of every packet. The
//! bench quantifies how far this gets a Single-NoC compared to Catnap's
//! subnet-level gating.

use catnap::{GatingPolicy, MultiNocConfig};
use catnap_bench::{emit_json, latency_sweep, print_banner, SweepPoint, Table};
use catnap_traffic::SyntheticPattern;

fn main() {
    print_banner(
        "Extension",
        "per-port gating (1NT-512b-PPG) vs router gating vs Catnap, uniform random",
    );
    let loads = [0.01, 0.03, 0.05, 0.10, 0.16, 0.24];
    let configs = [
        MultiNocConfig::single_noc_512b(),
        MultiNocConfig::single_noc_512b().gating(true),
        MultiNocConfig::single_noc_512b()
            .gating_policy(GatingPolicy::LocalIdlePort)
            .named("1NT-512b-PPG"),
        MultiNocConfig::catnap_4x128().gating(true),
    ];
    let sweeps: Vec<Vec<SweepPoint>> = configs
        .iter()
        .map(|c| latency_sweep(c, SyntheticPattern::UniformRandom, &loads, 512, 3_000, 5_000, 23))
        .collect();
    let names: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();
    for (title, which) in [
        ("total power (W)", 0usize),
        ("latency (cycles)", 1),
        ("sleep fraction (%)", 2),
    ] {
        println!("\n{title}");
        let mut t = Table::new(
            std::iter::once("offered".to_string())
                .chain(names.iter().cloned())
                .collect::<Vec<_>>(),
        );
        for (i, &l) in loads.iter().enumerate() {
            let mut cells = vec![format!("{l:.2}")];
            for s in &sweeps {
                let p = &s[i];
                cells.push(match which {
                    0 => format!("{:.1}", p.total_w()),
                    1 => format!("{:.1}", p.latency),
                    _ => format!("{:.1}", p.csc * 100.0),
                });
            }
            t.row(cells);
        }
        t.print();
    }
    println!("\nport gating sleeps much more than router gating on the Single-NoC, but");
    println!("only gates buffer/link leakage — Catnap's subnet gating still dominates.");
    let mut all = Vec::new();
    for s in sweeps {
        all.extend(s);
    }
    emit_json("extension_port_gating", &all);
}
