//! Figure 7: per-component network power of 1NT-512b @ 0.750 V,
//! 4NT-128b @ 0.750 V and 4NT-128b @ 0.625 V, at a per-port load factor
//! of 0.5 (near saturation), computed analytically as in the paper.
//!
//! Paper result: the Multi-NoC's four narrow crossbars use ~4x less
//! crossbar power; with voltage scaling to 0.625 V the Multi-NoC's total
//! power is clearly below the Single-NoC's.

use catnap_bench::{emit_json, print_banner, Table};
use catnap_power::analytic::DesignPoint;
use catnap_power::TechParams;

struct Row {
    design: String,
    ni: f64,
    link: f64,
    clock: f64,
    control: f64,
    crossbar: f64,
    buffer: f64,
    dynamic: f64,
    static_: f64,
    total: f64,
}
catnap_util::impl_to_json_struct!(Row {
    design,
    ni,
    link,
    clock,
    control,
    crossbar,
    buffer,
    dynamic,
    static_,
    total
});

fn main() {
    print_banner("Figure 7", "network power by component at per-port load factor 0.5");
    let tech = TechParams::catnap_32nm();
    let designs = [
        DesignPoint::single_512b_0v750(),
        DesignPoint::multi_4x128b_0v750(),
        DesignPoint::multi_4x128b_0v625(),
    ];
    let mut table = Table::new([
        "design",
        "NI",
        "Link",
        "Clock",
        "Control",
        "Crossbar",
        "Buffer",
        "dyn(W)",
        "static(W)",
        "total(W)",
    ]);
    let mut rows = Vec::new();
    for d in designs {
        let (dy, st) = d.power_at_load(tech, 0.5);
        let sum = dy + st;
        table.row([
            d.name.to_string(),
            format!("{:.1}", sum.ni),
            format!("{:.1}", sum.link),
            format!("{:.1}", sum.clock),
            format!("{:.1}", sum.control),
            format!("{:.1}", sum.crossbar),
            format!("{:.1}", sum.buffer),
            format!("{:.1}", dy.total()),
            format!("{:.1}", st.total()),
            format!("{:.1}", sum.total()),
        ]);
        rows.push(Row {
            design: d.name.to_string(),
            ni: sum.ni,
            link: sum.link,
            clock: sum.clock,
            control: sum.control,
            crossbar: sum.crossbar,
            buffer: sum.buffer,
            dynamic: dy.total(),
            static_: st.total(),
            total: sum.total(),
        });
    }
    table.print();
    println!("\npaper: ~25 W static either way; 4NT crossbar power ~4x lower;");
    println!("4NT @ 0.625V gives significant dynamic savings over 1NT @ 0.750V");
    emit_json("fig07", &rows);
}
