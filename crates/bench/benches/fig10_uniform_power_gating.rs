//! Figure 10: uniform random traffic sweep for Single-NoC and Multi-NoC
//! with and without power gating: (a) network power, (b) compensated
//! sleep cycles, (c) accepted throughput, and (d) average packet latency
//! vs offered load.
//!
//! Paper results at 0.03 packets/node/cycle: Single-NoC exposes ~10%
//! CSC vs ~74% for the Multi-NoC; gated Multi-NoC draws ~7.8 W vs
//! ~24.1 W for the gated Single-NoC. Throughput is unaffected by gating;
//! Single-NoC latency suffers badly at low load.

use catnap::{MultiNocConfig, SelectorKind};
use catnap_bench::{emit_json, latency_sweep, print_banner, SweepPoint, Table};
use catnap_traffic::SyntheticPattern;

fn main() {
    print_banner(
        "Figure 10",
        "uniform random: power / CSC / throughput / latency vs load",
    );
    let loads = [0.01, 0.03, 0.05, 0.08, 0.12, 0.16, 0.20, 0.28, 0.36, 0.44];
    let configs = vec![
        MultiNocConfig::single_noc_512b(),
        MultiNocConfig::single_noc_512b().gating(true),
        MultiNocConfig::catnap_4x128().selector(SelectorKind::RoundRobin),
        MultiNocConfig::catnap_4x128().gating(true),
    ];
    let mut all: Vec<SweepPoint> = Vec::new();
    let mut sweeps = Vec::new();
    for cfg in &configs {
        let s = latency_sweep(cfg, SyntheticPattern::UniformRandom, &loads, 512, 3_000, 6_000, 4);
        all.extend(s.iter().cloned());
        sweeps.push(s);
    }
    let names: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();

    for (title, f) in [
        ("(a) total network power (W)", 0usize),
        ("(b) compensated sleep cycles (%)", 1),
        ("(c) accepted throughput (pkts/node/cy)", 2),
        ("(d) avg packet latency (cycles)", 3),
    ] {
        println!("\n{title}");
        let mut t = Table::new(
            std::iter::once("offered".to_string())
                .chain(names.iter().cloned())
                .collect::<Vec<_>>(),
        );
        for (i, &l) in loads.iter().enumerate() {
            let mut cells = vec![format!("{l:.2}")];
            for s in &sweeps {
                let p = &s[i];
                cells.push(match f {
                    0 => format!("{:.1}", p.total_w()),
                    1 => format!("{:.1}", p.csc * 100.0),
                    2 => format!("{:.3}", p.accepted),
                    _ => format!("{:.1}", p.latency),
                });
            }
            t.row(cells);
        }
        t.print();
    }
    println!("\npaper anchors @0.03: CSC 10% (1NT) vs 74% (4NT); power 24.1 W vs 7.8 W");
    emit_json("fig10", &all);
}
