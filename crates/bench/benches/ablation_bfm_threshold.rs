//! Ablation: sensitivity to the BFM congestion threshold (the paper
//! fixes set = 9 flits of a 16-flit port). Lower thresholds open subnets
//! earlier (lower latency, less sleep); higher thresholds gate more
//! aggressively at a latency cost.

use catnap::{CongestionMetric, MultiNocConfig};
use catnap_bench::{emit_json, print_banner, run_synthetic, SweepPoint, Table};
use catnap_traffic::SyntheticPattern;

fn main() {
    print_banner("Ablation", "BFM set-threshold sweep, 4NT-128b-PG, uniform random");
    let thresholds = [3usize, 6, 9, 12, 15];
    let loads = [0.05, 0.15, 0.30];
    let mut all: Vec<SweepPoint> = Vec::new();
    let mut t = Table::new(["set-threshold", "load", "latency (cy)", "CSC %", "total W"]);
    for &set in &thresholds {
        for &load in &loads {
            let clear = (set * 2 / 3).max(1);
            let cfg = MultiNocConfig::catnap_4x128()
                .metric(CongestionMetric::Bfm { set, clear })
                .gating(true)
                .named(&format!("BFM-{set}"));
            let p = run_synthetic(cfg, SyntheticPattern::UniformRandom, load, 512, 3_000, 5_000, 14);
            t.row([
                set.to_string(),
                format!("{load:.2}"),
                format!("{:.1}", p.latency),
                format!("{:.1}", p.csc * 100.0),
                format!("{:.1}", p.total_w()),
            ]);
            all.push(p);
        }
    }
    t.print();
    println!("\npaper's choice: 9 flits — the latency/CSC knee across traffic patterns");
    emit_json("ablation_bfm_threshold", &all);
}
